#!/usr/bin/env python3
"""Lint that the normative docs mirror their source-of-truth constants.

Two spec documents are pinned here:

- PROTOCOL.md against crates/server/src/protocol.rs: every frame type
  and error code must appear in the prose tables with the same literal
  value and name. (The doc-tested Rust block at the end of PROTOCOL.md
  already guards the doc -> source direction.)
- QUERIES.md against crates/slice/src/spec.rs: every clause keyword in
  CLAUSE_KEYWORDS and every kind mnemonic in KIND_MNEMONICS must appear
  as a grammar-table row, so the query language a user reads cannot
  drift from what the parser accepts.

Exit 0 when everything matches; exit 1 with one line per mismatch.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "crates" / "server" / "src" / "protocol.rs"
DOC = ROOT / "PROTOCOL.md"
SPEC_SRC = ROOT / "crates" / "slice" / "src" / "spec.rs"
QUERIES_DOC = ROOT / "QUERIES.md"


def parse_consts(src: str):
    """Return {name: int} for every pub const u8/u16/u32/usize literal."""
    consts = {}
    pat = re.compile(
        r"pub const (?P<name>[A-Z_0-9]+): (?:u8|u16|u32|usize) = "
        r"(?P<val>0x[0-9a-fA-F]+|\d+(?: << \d+)?);"
    )
    for m in pat.finditer(src):
        val = m.group("val")
        if "<<" in val:
            lhs, rhs = val.split("<<")
            consts[m.group("name")] = int(lhs) << int(rhs)
        else:
            consts[m.group("name")] = int(val, 0)
    return consts


def parse_str_array(src: str, name: str):
    """Return the string literals of `const NAME: &[&str] = &[...]`."""
    m = re.search(
        r"pub const %s: &\[&str\] = &\[(?P<body>.*?)\];" % re.escape(name),
        src,
        re.DOTALL,
    )
    if not m:
        return None
    return re.findall(r'"([^"]+)"', m.group("body"))


def parse_mnemonics(src: str):
    """Return the mnemonic names of the KIND_MNEMONICS table."""
    m = re.search(
        r"const KIND_MNEMONICS: &\[\(&str, u32\)\] = &\[(?P<body>.*?)\];",
        src,
        re.DOTALL,
    )
    if not m:
        return None
    return re.findall(r'\("([^"]+)",', m.group("body"))


def check_queries_doc(require):
    """Pin QUERIES.md's grammar tables to the parser in spec.rs."""
    src = SPEC_SRC.read_text()
    doc = QUERIES_DOC.read_text()

    keywords = parse_str_array(src, "CLAUSE_KEYWORDS")
    require(
        keywords is not None and len(keywords) >= 8,
        f"could not parse CLAUSE_KEYWORDS out of {SPEC_SRC}",
    )
    for kw in keywords or []:
        row = re.compile(r"^\|\s*`%s`\s*\|" % re.escape(kw), re.MULTILINE)
        require(
            bool(row.search(doc)),
            f"QUERIES.md grammar table is missing a | `{kw}` | row "
            f"(source: CLAUSE_KEYWORDS in {SPEC_SRC.relative_to(ROOT)})",
        )

    mnemonics = parse_mnemonics(src)
    require(
        mnemonics is not None and len(mnemonics) == 18,
        f"expected 18 KIND_MNEMONICS in {SPEC_SRC}, "
        f"found {len(mnemonics or [])}",
    )
    for m in mnemonics or []:
        row = re.compile(r"^\|\s*`%s`\s*\|" % re.escape(m), re.MULTILINE)
        require(
            bool(row.search(doc)),
            f"QUERIES.md mnemonic table is missing a | `{m}` | row "
            f"(source: KIND_MNEMONICS in {SPEC_SRC.relative_to(ROOT)})",
        )

    # The kind groups the parser special-cases must be documented rows,
    # and `repeat` must never become a selectable mnemonic silently.
    for group in ("sync", "barrier", "marker", "lock", "sem", "task"):
        require(
            f'"{group}" =>' in src,
            f"spec.rs no longer special-cases the `{group}` group",
        )
        row = re.compile(r"^\|\s*`%s`\s*\|" % group, re.MULTILINE)
        require(
            bool(row.search(doc)),
            f"QUERIES.md group table is missing a | `{group}` | row",
        )
    require(
        "repeat" not in (mnemonics or []),
        "`repeat` became a selectable mnemonic; QUERIES.md promises it is not",
    )

    # Scalar facts the prose states outright.
    require(
        "half-open" in doc,
        "QUERIES.md never states the window is half-open",
    )
    require(
        "(emitted - records) + suppressed + filtered + skipped + lost == expected"
        in doc,
        "QUERIES.md no longer states the accounting identity verbatim",
    )
    trace_src = (ROOT / "crates" / "trace" / "src" / "event.rs").read_text()
    m = re.search(r"pub const REPEAT_MAX_PATTERN: usize = (\d+);", trace_src)
    require(
        m is not None and f"up to {m.group(1)} events long" in doc,
        "QUERIES.md's pattern-length bound disagrees with REPEAT_MAX_PATTERN",
    )


def main() -> int:
    src = SRC.read_text()
    doc = DOC.read_text()
    consts = parse_consts(src)
    errors = []

    def require(cond: bool, msg: str):
        if not cond:
            errors.append(msg)

    fts = {k: v for k, v in consts.items() if k.startswith("FT_")}
    ecs = {k: v for k, v in consts.items() if k.startswith("EC_")}
    require(len(fts) >= 6, f"expected >=6 FT_ consts in {SRC}, found {len(fts)}")
    require(len(ecs) >= 12, f"expected >=12 EC_ consts in {SRC}, found {len(ecs)}")

    # Every frame type must appear as a table row: | `0xNN` | `NAME` | ...
    for name, val in sorted(fts.items(), key=lambda kv: kv[1]):
        label = name[len("FT_"):]
        row = re.compile(
            r"\|\s*`0x%02x`\s*\|\s*`%s`\s*\|" % (val, re.escape(label))
        )
        require(
            bool(row.search(doc)),
            f"PROTOCOL.md frame-type table is missing | `0x{val:02x}` | `{label}` | "
            f"(source: {name} = 0x{val:02x})",
        )

    # Every error code must appear as a table row: | N | `kebab-name` | ...
    for name, val in sorted(ecs.items(), key=lambda kv: kv[1]):
        label = name[len("EC_"):].lower().replace("_", "-")
        row = re.compile(r"\|\s*%d\s*\|\s*`%s`\s*\|" % (val, re.escape(label)))
        require(
            bool(row.search(doc)),
            f"PROTOCOL.md error-code table is missing | {val} | `{label}` | "
            f"(source: {name} = {val})",
        )

    # Error codes must be dense 1..=N — the spec's tables promise that.
    expected = list(range(1, len(ecs) + 1))
    require(
        sorted(ecs.values()) == expected,
        f"EC_ codes are not dense 1..={len(ecs)}: {sorted(ecs.values())}",
    )

    # Scalar facts the prose states outright.
    require("PPASERV1" in doc, "PROTOCOL.md never names the magic PPASERV1")
    require(
        consts.get("FRAME_HEADER_LEN") == 8 and "8-byte header" in doc,
        "frame header is not documented as the 8-byte header the source declares",
    )
    require(
        consts.get("MAX_FRAME_LEN") == (1 << 24) and "`1 << 24`" in doc,
        "MAX_FRAME_LEN (1 << 24) is not stated in PROTOCOL.md",
    )
    require(
        consts.get("MAX_ID_LEN") == 128 and "1..=128 bytes" in doc,
        "MAX_ID_LEN (128) is not reflected in the id validation prose",
    )
    version = consts.get("SERVE_VERSION")
    require(
        version == 1 and "protocol version: 1" in doc,
        f"SERVE_VERSION ({version}) is not the version PROTOCOL.md documents",
    )

    # The doc-tested block must exercise every constant by name, so a
    # rename in the source breaks the doctest rather than orphaning it.
    for name in sorted(consts):
        require(
            f"p::{name}" in doc,
            f"doc-tested block in PROTOCOL.md never references p::{name}",
        )

    check_queries_doc(require)

    if errors:
        for e in errors:
            print(f"check_protocol_doc: {e}", file=sys.stderr)
        print(
            f"check_protocol_doc: {len(errors)} mismatch(es) between the "
            f"normative docs and their sources",
            file=sys.stderr,
        )
        return 1

    print(
        f"check_protocol_doc: ok — {len(fts)} frame types, {len(ecs)} error "
        f"codes, and all scalar constants match PROTOCOL.md; QUERIES.md "
        f"grammar tables match crates/slice/src/spec.rs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
