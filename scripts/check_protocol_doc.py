#!/usr/bin/env python3
"""Lint that PROTOCOL.md mirrors the wire constants in ppa-server.

The doc-tested Rust block at the end of PROTOCOL.md already fails the
build if its assertions disagree with the source; this lint covers the
other direction — the *prose tables* of the spec. Every frame type and
error code declared in crates/server/src/protocol.rs must appear in
PROTOCOL.md with the same literal value and the same name, so the spec
a client author reads cannot drift from what the daemon speaks.

Exit 0 when everything matches; exit 1 with one line per mismatch.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "crates" / "server" / "src" / "protocol.rs"
DOC = ROOT / "PROTOCOL.md"


def parse_consts(src: str):
    """Return {name: int} for every pub const u8/u16/u32/usize literal."""
    consts = {}
    pat = re.compile(
        r"pub const (?P<name>[A-Z_0-9]+): (?:u8|u16|u32|usize) = "
        r"(?P<val>0x[0-9a-fA-F]+|\d+(?: << \d+)?);"
    )
    for m in pat.finditer(src):
        val = m.group("val")
        if "<<" in val:
            lhs, rhs = val.split("<<")
            consts[m.group("name")] = int(lhs) << int(rhs)
        else:
            consts[m.group("name")] = int(val, 0)
    return consts


def main() -> int:
    src = SRC.read_text()
    doc = DOC.read_text()
    consts = parse_consts(src)
    errors = []

    def require(cond: bool, msg: str):
        if not cond:
            errors.append(msg)

    fts = {k: v for k, v in consts.items() if k.startswith("FT_")}
    ecs = {k: v for k, v in consts.items() if k.startswith("EC_")}
    require(len(fts) >= 6, f"expected >=6 FT_ consts in {SRC}, found {len(fts)}")
    require(len(ecs) >= 12, f"expected >=12 EC_ consts in {SRC}, found {len(ecs)}")

    # Every frame type must appear as a table row: | `0xNN` | `NAME` | ...
    for name, val in sorted(fts.items(), key=lambda kv: kv[1]):
        label = name[len("FT_"):]
        row = re.compile(
            r"\|\s*`0x%02x`\s*\|\s*`%s`\s*\|" % (val, re.escape(label))
        )
        require(
            bool(row.search(doc)),
            f"PROTOCOL.md frame-type table is missing | `0x{val:02x}` | `{label}` | "
            f"(source: {name} = 0x{val:02x})",
        )

    # Every error code must appear as a table row: | N | `kebab-name` | ...
    for name, val in sorted(ecs.items(), key=lambda kv: kv[1]):
        label = name[len("EC_"):].lower().replace("_", "-")
        row = re.compile(r"\|\s*%d\s*\|\s*`%s`\s*\|" % (val, re.escape(label)))
        require(
            bool(row.search(doc)),
            f"PROTOCOL.md error-code table is missing | {val} | `{label}` | "
            f"(source: {name} = {val})",
        )

    # Error codes must be dense 1..=N — the spec's tables promise that.
    expected = list(range(1, len(ecs) + 1))
    require(
        sorted(ecs.values()) == expected,
        f"EC_ codes are not dense 1..={len(ecs)}: {sorted(ecs.values())}",
    )

    # Scalar facts the prose states outright.
    require("PPASERV1" in doc, "PROTOCOL.md never names the magic PPASERV1")
    require(
        consts.get("FRAME_HEADER_LEN") == 8 and "8-byte header" in doc,
        "frame header is not documented as the 8-byte header the source declares",
    )
    require(
        consts.get("MAX_FRAME_LEN") == (1 << 24) and "`1 << 24`" in doc,
        "MAX_FRAME_LEN (1 << 24) is not stated in PROTOCOL.md",
    )
    require(
        consts.get("MAX_ID_LEN") == 128 and "1..=128 bytes" in doc,
        "MAX_ID_LEN (128) is not reflected in the id validation prose",
    )
    version = consts.get("SERVE_VERSION")
    require(
        version == 1 and "protocol version: 1" in doc,
        f"SERVE_VERSION ({version}) is not the version PROTOCOL.md documents",
    )

    # The doc-tested block must exercise every constant by name, so a
    # rename in the source breaks the doctest rather than orphaning it.
    for name in sorted(consts):
        require(
            f"p::{name}" in doc,
            f"doc-tested block in PROTOCOL.md never references p::{name}",
        )

    if errors:
        for e in errors:
            print(f"check_protocol_doc: {e}", file=sys.stderr)
        print(
            f"check_protocol_doc: {len(errors)} mismatch(es) between "
            f"{SRC.relative_to(ROOT)} and {DOC.relative_to(ROOT)}",
            file=sys.stderr,
        )
        return 1

    print(
        f"check_protocol_doc: ok — {len(fts)} frame types, {len(ecs)} error "
        f"codes, and all scalar constants match PROTOCOL.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
