#!/usr/bin/env bash
# Decode + checkpoint performance sweep: runs the decode-worker sweep
# bench (workers 1 2 4 8 vs serial) and the checkpoint-overhead bench
# (full snapshots vs the incremental delta chain), recording
# BENCH_decode_parallel.json and BENCH_checkpoint_delta.json (plus the
# pre-existing BENCH_checkpoint.json) at the repository root.
#
# Environment knobs (all optional):
#   PPA_DECODE_BENCH_EVENTS      fixture size for the decode sweep
#   PPA_DECODE_BENCH_WORKERS     sweep counts (default "1 2 4 8")
#   PPA_CHECKPOINT_BENCH_ITERS   fixture size for the checkpoint bench
#   PPA_CHECKPOINT_BENCH_EVERY   checkpoint cadence in events
#   PPA_BENCH_SMOKE=1            run in --test mode (no criterion
#                                sampling; fast enough for CI)
#   PPA_ASSERT_MIN_RATIO=R       after the sweep, fail unless every
#                                multi-worker count decodes at >= R x
#                                the serial rate (e.g. 0.95 to catch a
#                                pipelined-slower-than-serial regression)
set -euo pipefail
cd "$(dirname "$0")/.."

mode=()
if [ "${PPA_BENCH_SMOKE:-0}" = "1" ]; then
  mode=(--test)
fi

cargo bench -p ppa-bench --bench decode_sweep -- "${mode[@]}"
cargo bench -p ppa-bench --bench checkpoint_overhead -- "${mode[@]}"

if [ -n "${PPA_ASSERT_MIN_RATIO:-}" ]; then
  python3 - "$PPA_ASSERT_MIN_RATIO" <<'EOF'
import json, sys

min_ratio = float(sys.argv[1])
report = json.load(open("BENCH_decode_parallel.json"))
cores = report["cores"]
bad = [
    row for row in report["sweep"]
    # Oversubscribed counts cannot be expected to keep up.
    if row["workers"] > 1 and row["workers"] <= cores
    and row["speedup_vs_serial"] < min_ratio
]
for row in bad:
    print(
        f"FAIL: {row['workers']} workers decode at "
        f"{row['speedup_vs_serial']:.2f}x serial (< {min_ratio}x)",
        file=sys.stderr,
    )
if bad:
    sys.exit(1)
print(f"decode sweep: all multi-worker counts >= {min_ratio}x serial")
EOF
fi
