//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored Value-based `serde` traits, by hand-parsing the item's
//! token stream (no `syn`/`quote` available offline). Supports the shapes
//! this workspace uses: named-field structs, tuple structs (serialized as
//! newtypes when single-field), unit structs, and enums with unit, newtype
//! and struct variants under serde's external tagging. The only attribute
//! honoured is `#[serde(transparent)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    kind: ItemKind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let transparent = skip_attrs_collect_transparent(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    skip_generics(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_struct_fields(&tokens, &mut i)),
        "enum" => ItemKind::Enum(parse_variants(&tokens, &mut i)),
        other => panic!("cannot derive for `{other}` items"),
    };
    Item {
        name,
        transparent,
        kind,
    }
}

/// Skips leading attributes, returning whether `#[serde(transparent)]`
/// appeared among them.
fn skip_attrs_collect_transparent(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut transparent = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let body = g.stream().to_string();
            if body.starts_with("serde") && body.contains("transparent") {
                transparent = true;
            }
            *i += 1;
        }
    }
    transparent
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn skip_generics(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '<' {
            let mut depth = 0usize;
            while let Some(tok) = tokens.get(*i) {
                if let TokenTree::Punct(p) = tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                *i += 1;
                                return;
                            }
                        }
                        _ => {}
                    }
                }
                *i += 1;
            }
        }
    }
}

fn parse_struct_fields(tokens: &[TokenTree], i: &mut usize) -> Fields {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        _ => Fields::Unit,
    }
}

/// Field names from a brace-delimited field list: skip attributes and
/// visibility, take the ident before each top-level `:`, then skip the
/// type up to the next top-level `,` (angle brackets tracked by depth;
/// parens/brackets arrive as single groups).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_collect_transparent(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        let mut angle = 0usize;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree], i: &mut usize) -> Vec<Variant> {
    let body = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected enum body, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < tokens.len() {
        skip_attrs_collect_transparent(&tokens, &mut j);
        let name = match tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected variant name, found {other}"),
        };
        j += 1;
        let fields = match tokens.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(j) {
            if p.as_char() == ',' {
                j += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            if item.transparent && fields.len() == 1 {
                format!("::serde::Serialize::serialize(&self.{})", fields[0])
            } else {
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "__obj.push((\"{f}\".to_string(), \
                             ::serde::Serialize::serialize(&self.{f})));"
                        )
                    })
                    .collect();
                format!("{{ let mut __obj = Vec::new(); {pushes} ::serde::Value::Object(__obj) }}")
            }
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push((\"{f}\".to_string(), \
                                         ::serde::Serialize::serialize({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ \
                                 let mut __inner = Vec::new(); {pushes} \
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Object(__inner))]) }},"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_field_reads(fields: &[String], obj_expr: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {obj_expr}.iter().find(|(__k, _)| __k == \"{f}\") {{ \
                 Some((_, __v)) => ::serde::Deserialize::deserialize(__v)?, \
                 None => ::serde::Deserialize::deserialize_missing()? }},"
            )
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            if item.transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::deserialize(__value)? }})",
                    fields[0]
                )
            } else {
                let reads = named_field_reads(fields, "__obj");
                format!(
                    "{{ let __obj = __value.as_object_slice().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?; \
                     Ok({name} {{ {reads} }}) }}"
                )
            }
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(__value)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let reads: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::deserialize(__arr.get({k}).ok_or_else(|| \
                         ::serde::Error::custom(\"tuple too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "{{ let __arr = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?; \
                 Ok({name}({})) }}",
                reads.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => String::new(),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let reads: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::deserialize(__arr.get({k})\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                         \"tuple variant too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vn}\"))?; \
                                 Ok({name}::{vn}({})) }},",
                                reads.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let reads = named_field_reads(fields, "__obj");
                            format!(
                                "\"{vn}\" => {{ let __obj = __inner.as_object_slice()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected object for {name}::{vn}\"))?; \
                                 Ok({name}::{vn} {{ {reads} }}) }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{ \
                 ::serde::Value::String(__s) => match __s.as_str() {{ \
                 {unit_arms} \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant {{__other:?}}\"))) }}, \
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__tag, __inner) = &__pairs[0]; \
                 match __tag.as_str() {{ \
                 {data_arms} \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant {{__other:?}}\"))) }} }}, \
                 _ => Err(::serde::Error::custom(\"expected {name} variant\")) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
