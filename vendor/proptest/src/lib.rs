//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace uses, with
//! a deterministic splitmix64 generator and no shrinking: each property
//! runs a fixed number of cases; a failing case prints its generated
//! inputs before propagating the panic. The surface mirrors proptest's —
//! `Strategy`/`prop_map`, ranges, tuples, `Just`, `any`, `prop_oneof!`,
//! `collection::vec`, `sample::subsequence`, and the `proptest!` macro —
//! so tests are written exactly as against the real crate.

use std::rc::Rc;

/// Deterministic test RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator. The stand-in generates directly (no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            func: f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategies: `self` generates leaves, and `recurse`
    /// turns a strategy for depth-`d` values into one for depth
    /// `d + 1`. Mirrors proptest's signature; the stand-in ignores the
    /// size hints and bounds nesting by unioning a leaf arm in at each
    /// of the `depth` levels (so every draw terminates).
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }
}

/// A [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.func)(self.strategy.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// An order-preserving random subsequence strategy.
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        sizes: std::ops::Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.sizes.end.min(self.items.len() + 1);
            let min = self.sizes.start.min(max.saturating_sub(1));
            let count = (min..max).generate(rng);
            // Uniform distinct indices in order: include item i with
            // probability (still needed) / (still available).
            let mut out = Vec::with_capacity(count);
            let mut needed = count;
            let len = self.items.len();
            for (i, item) in self.items.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let available = len - i;
                if rng.below(available as u64) < needed as u64 {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }

    /// Generates order-preserving subsequences of `items` with a length
    /// in `sizes` (clamped to the available item count).
    pub fn subsequence<T: Clone>(items: Vec<T>, sizes: std::ops::Range<usize>) -> Subsequence<T> {
        Subsequence { items, sizes }
    }
}

/// Per-property configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runs `case` once per configured case with a per-case deterministic RNG.
pub fn run_cases(config: ProptestConfig, mut case: impl FnMut(u32, &mut TestRng)) {
    for i in 0..config.cases {
        let mut rng = TestRng::new(0x5eed ^ u64::from(i).wrapping_mul(0x2545_f491_4f6c_dd1d));
        case(i, &mut rng);
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniformly chooses one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($config, |__case, __rng| {
                $(let $arg = $crate::Strategy::generate(&$strategy, __rng);)+
                let mut __inputs = String::new();
                $(__inputs.push_str(&format!(
                    "  {} = {:?}\n", stringify!($arg), &$arg,
                ));)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {} of `{}` failed with inputs:\n{}",
                        __case,
                        stringify!($name),
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges generate within bounds; maps apply.
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in (-4i64..9).prop_map(|v| v * 2)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-8..=16).contains(&y));
            prop_assert_eq!(y % 2, 0);
        }

        /// Subsequences preserve order and respect the size range.
        #[test]
        fn subsequences_preserve_order(
            s in crate::sample::subsequence((0u8..50).collect::<Vec<_>>(), 2..20),
        ) {
            prop_assert!(s.len() >= 2 && s.len() < 20);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        /// Oneof unions pick from every arm eventually.
        #[test]
        fn oneof_generates_valid_values(v in prop_oneof![Just(1u8), Just(2u8), 5u8..9]) {
            prop_assert!(v == 1 || v == 2 || (5..9).contains(&v));
        }

        /// Vec strategies respect the size range.
        #[test]
        fn vec_sizes_in_range(v in crate::collection::vec(0u16..5, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
