//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns a guard directly; `Condvar::wait` takes the guard by
//! mutable reference). Poisoned std locks are recovered transparently —
//! parking_lot has no poisoning, so neither does this stand-in.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's panic-free API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable matching parking_lot's `wait(&mut guard)` shape.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's Condvar consumes the guard; move it out and back in.
        // SAFETY: `ptr::read` duplicates the inner guard, but the original
        // slot is overwritten before anything can observe or drop it —
        // `wait` only returns by value (no panic: poisoning is recovered).
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, inner);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_round_trips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_all();
            drop(started);
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        drop(started);
        handle.join().unwrap();
    }
}
