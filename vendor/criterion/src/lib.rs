//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API this
//! workspace uses: `Criterion::bench_function`, benchmark groups with
//! throughput annotations, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up briefly, then
//! timed over enough iterations to fill a fixed measurement window; the
//! mean time per iteration (and elements/second when a throughput is set)
//! is printed to stdout.
//!
//! When the binary is invoked by `cargo test` (criterion benches use
//! `harness = false`), the `--test` flag makes it run one iteration per
//! benchmark as a smoke test instead of timing.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is measured for (after warmup).
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Work-per-iteration annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (criterion's parameterized id).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    smoke_test: bool,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock time per call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.smoke_test {
            black_box(routine());
            self.mean_ns = 0.0;
            return;
        }
        // Warmup: find an iteration count that fills the warmup window.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP_WINDOW {
                let per_iter = elapsed.as_secs_f64() / batch as f64;
                let measured_iters =
                    ((MEASURE_WINDOW.as_secs_f64() / per_iter).ceil() as u64).max(1);
                let start = Instant::now();
                for _ in 0..measured_iters {
                    black_box(routine());
                }
                self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / measured_iters as f64;
                return;
            }
            batch = batch.saturating_mul(2);
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false benches with `--test`; `cargo
        // bench` passes `--bench`. Treat the former as a smoke test.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { smoke_test }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, self.smoke_test, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id` over `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.throughput, self.criterion.smoke_test, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.criterion.smoke_test, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    smoke_test: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        smoke_test,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    if smoke_test {
        println!("{label:<48} ok (smoke test)");
        return;
    }
    let mean = bencher.mean_ns;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({} elem/s)", human_rate(n as f64 * 1e9 / mean)),
        Throughput::Bytes(n) => format!(" ({}B/s)", human_rate(n as f64 * 1e9 / mean)),
    });
    println!(
        "{label:<48} time: {}{}",
        human_time(mean),
        rate.unwrap_or_default()
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
