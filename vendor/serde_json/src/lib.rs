//! Offline stand-in for the `serde_json` crate.
//!
//! Prints and parses JSON text against the vendored `serde` crate's
//! [`Value`] tree. Covers the API surface this workspace uses:
//! [`to_string`], [`to_writer`], [`to_writer_pretty`], [`from_str`], and
//! the [`Value`] accessors (`get`, indexing, `as_array`, ...).

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};
use std::io::Write;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.serialize(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.serialize(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(e.to_string()))
}

/// Serializes a value as pretty-printed JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(e.to_string()))
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

// ---------------------------------------------------------------- printing

fn print_value(
    value: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => print_number(n, out)?,
        Value::String(s) => print_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(item, out, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn print_number(n: &Number, out: &mut String) -> Result<(), Error> {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            let text = f.to_string();
            out.push_str(&text);
        }
    }
    Ok(())
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::custom(e.to_string()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(e.to_string()))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|e| Error::custom(e.to_string()))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|e| Error::custom(e.to_string()))?,
            )
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::PosInt(n),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|e| Error::custom(e.to_string()))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::Number(Number::PosInt(1))]),
            ),
            ("b".to_string(), Value::String("x\"y\\z".to_string())),
            ("c".to_string(), Value::Number(Number::Float(1.25))),
            ("d".to_string(), Value::Number(Number::NegInt(-3))),
            ("e".to_string(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);

        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_scientific_notation() {
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }
}
