//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal serde-compatible surface: `Serialize` /
//! `Deserialize` traits driven through an in-memory [`Value`] tree, plus
//! derive macros re-exported from `serde_derive`. Only the API this
//! workspace actually uses is provided; the JSON text layer lives in the
//! companion `serde_json` stand-in.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if representable exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) => {
                if f.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&f) {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The number as `i64`, if representable exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f) => {
                if f.fract() == 0.0 && f.abs() <= 9_007_199_254_740_992.0 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// An in-memory JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value's object entries, if it is an object.
    pub fn as_object_slice(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exactly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exactly-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field's key is absent.
    /// `Option` fields default to `None`; everything else errors.
    fn deserialize_missing() -> Result<Self, Error> {
        Err(Error::custom("missing field"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| {
                        Error::custom(concat!("expected ", stringify!($t)))
                    })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| {
                        Error::custom(concat!("expected ", stringify!($t)))
                    })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only used for `&'static str` metadata
    /// fields in round-trip tests; the leak is bounded and intentional.
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }

    fn deserialize_missing() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        Value::Number(Number::Float(f)) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        _ => String::new(),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        return K::deserialize(&Value::Number(Number::PosInt(n)));
    }
    if let Ok(n) = key.parse::<i64>() {
        return K::deserialize(&Value::Number(Number::NegInt(n)));
    }
    Err(Error::custom(format!("cannot interpret map key {key:?}")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object_slice()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::deserialize(
                    arr.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_keys_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u16, 7usize);
        let v = m.serialize();
        let back: BTreeMap<u16, usize> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn option_missing_defaults_to_none() {
        let got: Option<f64> = Deserialize::deserialize_missing().unwrap();
        assert_eq!(got, None);
    }
}
