//! End-to-end experiment assertions: every table and figure of the paper
//! must reproduce with the right *shape* — who wins, in which direction
//! the failures point, and roughly by what factor.

use ppa::experiments as exp;
use ppa::prelude::*;

/// Figure 1: sequential full instrumentation slows loops 3.9–16.9x, yet
/// time-based analysis recovers totals essentially exactly; the reproduced
/// slowdowns track the paper's bars.
#[test]
fn fig1_shape() {
    let rows = exp::fig1();
    assert_eq!(rows.len(), 10, "ten kernels carry Figure 1 bars");

    for r in &rows {
        let paper = r.paper_measured.expect("all fig1 rows have paper values");
        assert!(
            (r.measured_ratio - paper).abs() / paper < 0.15,
            "kernel {}: measured {:.2} drifted from paper {:.2}",
            r.kernel,
            r.measured_ratio,
            paper
        );
        assert!(
            (r.approx_ratio - 1.0).abs() < 0.01,
            "kernel {}: sequential time-based approximation should be exact, got {:.3}",
            r.kernel,
            r.approx_ratio
        );
    }

    // The paper's extreme case: loop 19 exceeds a 16x slowdown.
    let l19 = rows
        .iter()
        .find(|r| r.kernel == 19)
        .expect("loop 19 present");
    assert!(
        l19.measured_ratio > 15.0,
        "loop 19 slowdown {:.2}",
        l19.measured_ratio
    );

    // Relative ordering of intrusion matches the paper: 19 > 6 > 2 > 1 >
    // 8 > 7 > 13 > 16 > 20 > 22.
    let ratio = |k: u8| rows.iter().find(|r| r.kernel == k).unwrap().measured_ratio;
    let order = [19u8, 6, 2, 1, 8, 7, 13, 16, 20, 22];
    for pair in order.windows(2) {
        assert!(
            ratio(pair[0]) > ratio(pair[1]),
            "expected loop {} ({:.2}) more intrusive than loop {} ({:.2})",
            pair[0],
            ratio(pair[0]),
            pair[1],
            ratio(pair[1])
        );
    }
}

/// Table 1: time-based analysis under-approximates loops 3/4 and
/// over-approximates loop 17, near the paper's magnitudes.
#[test]
fn table1_shape() {
    let rows = exp::table1();
    assert_eq!(rows.len(), 3);
    let by_label = |l: &str| rows.iter().find(|r| r.label == l).unwrap();

    let l3 = by_label("lfk03");
    let l4 = by_label("lfk04");
    let l17 = by_label("lfk17");

    // Directions.
    assert!(
        l3.approx_over_actual < 0.7,
        "loop 3 approx {:.2}",
        l3.approx_over_actual
    );
    assert!(
        l4.approx_over_actual < 0.8,
        "loop 4 approx {:.2}",
        l4.approx_over_actual
    );
    assert!(
        l17.approx_over_actual > 3.0,
        "loop 17 approx {:.2}",
        l17.approx_over_actual
    );
    for r in &rows {
        assert!(
            r.same_direction_as_paper(),
            "{} errs in the wrong direction",
            r.label
        );
    }

    // Magnitudes within a factor-band of the paper.
    assert!(
        (l3.measured_over_actual - 2.48).abs() < 0.5,
        "{:.2}",
        l3.measured_over_actual
    );
    assert!(
        (l4.measured_over_actual - 2.64).abs() < 0.5,
        "{:.2}",
        l4.measured_over_actual
    );
    assert!(
        (l17.measured_over_actual - 9.97).abs() < 3.0,
        "{:.2}",
        l17.measured_over_actual
    );
}

/// Table 2: with synchronization instrumentation the intrusion grows but
/// event-based analysis lands within a few percent everywhere.
#[test]
fn table2_shape() {
    let t1 = exp::table1();
    let t2 = exp::table2();
    for (r1, r2) in t1.iter().zip(&t2) {
        assert!(
            r2.measured_over_actual > r1.measured_over_actual,
            "{}: sync instrumentation should slow the run further ({:.2} vs {:.2})",
            r2.label,
            r2.measured_over_actual,
            r1.measured_over_actual
        );
        assert!(
            r2.approx_error_pct().abs() < 8.0,
            "{}: event-based error {:.1}% exceeds the paper's band",
            r2.label,
            r2.approx_error_pct()
        );
        assert!(
            r2.approx_error_pct().abs() < (r1.approx_over_actual - 1.0).abs() * 100.0,
            "{}: event-based must beat time-based",
            r2.label
        );
    }
}

/// Table 3 and Figures 4–5: the approximated execution's waiting
/// percentages sit in the paper's few-percent band, match the simulator's
/// ground truth closely, and the loop runs at high average parallelism.
#[test]
fn loop17_products_shape() {
    let a = exp::loop17_analysis();

    // Table 3 band (paper: 2.70–8.09 %).
    for row in &a.waiting.rows {
        assert!(
            row.sync_pct < 15.0,
            "P{} waits {:.2}%, far outside the paper's regime",
            row.proc,
            row.sync_pct
        );
    }
    let mean = a.waiting.mean_pct();
    assert!(
        mean > 0.2 && mean < 10.0,
        "mean waiting {mean:.2}% out of band"
    );

    // Approximated waiting tracks ground truth per processor.
    for (row, truth) in a.waiting.rows.iter().zip(&a.ground_truth_pct) {
        assert!(
            (row.sync_pct - truth).abs() < 1.5,
            "P{}: approximated {:.2}% vs ground truth {:.2}%",
            row.proc,
            row.sync_pct,
            truth
        );
    }

    // Figure 5: average parallelism near the paper's 7.5 (of 8).
    assert!(
        a.avg_parallelism > 6.0 && a.avg_parallelism <= 8.0,
        "avg parallelism {:.2}",
        a.avg_parallelism
    );

    // Figure 4: the serial portions show as only processor 0 active.
    let pre_loop = a.loop_window.0;
    if pre_loop > Time::ZERO {
        let mid_serial = Time::from_nanos(pre_loop.as_nanos() / 2);
        assert_eq!(
            a.profile.at(mid_serial),
            1,
            "serial prologue should be one processor"
        );
    }
}

/// The ablations behave sensibly: accuracy degrades away from the true
/// overhead spec, and liberal analysis is competitive with conservative
/// under every dispatch policy.
#[test]
fn ablations_shape() {
    let sweep = exp::ablation_overhead_sweep(17, &[0.5, 1.0, 2.0]);
    let err = |f: f64| {
        sweep
            .iter()
            .find(|p| (p.factor - f).abs() < 1e-9)
            .map(|p| (p.approx_ratio - 1.0).abs())
            .unwrap()
    };
    assert!(err(1.0) < err(0.5), "true spec must beat half-scale");
    assert!(err(1.0) < err(2.0), "true spec must beat double-scale");

    for row in exp::ablation_schedule(3) {
        assert!(
            (row.conservative_ratio - 1.0).abs() < 0.1,
            "{:?}: conservative {:.3}",
            row.policy,
            row.conservative_ratio
        );
        assert!(
            (row.liberal_ratio - 1.0).abs() < 0.15,
            "{:?}: liberal {:.3}",
            row.policy,
            row.liberal_ratio
        );
    }
}

/// Determinism: the whole experiment suite produces identical numbers on
/// repeated runs.
#[test]
fn experiments_are_deterministic() {
    assert_eq!(exp::table1(), exp::table1());
    assert_eq!(exp::table2(), exp::table2());
    let a = exp::loop17_analysis();
    let b = exp::loop17_analysis();
    assert_eq!(a.waiting, b.waiting);
    assert_eq!(a.result.trace, b.result.trace);
}
