//! Seed-sweep fuzzing of the whole pipeline on synthesized workloads:
//! hundreds of structurally random programs through simulate → validate →
//! analyze → compare, asserting the substrate's invariants on each.

use ppa::analysis::{compare_traces, event_based, time_based};
use ppa::prelude::*;
use ppa::program::synth::{synthesize, SynthConfig};

fn config(seed: u64, schedule: SchedulePolicy) -> SimConfig {
    SimConfig {
        processors: 1 + (seed % 8) as usize,
        clock: ClockRate::GHZ_1,
        overheads: OverheadSpec::alliant_default(),
        schedule,
        dispatch_cycles: 50,
        jitter: None,
    }
    .with_jitter(seed.wrapping_mul(0x9E37), 300)
}

/// 300 seeds through the full pipeline under static dispatch: traces
/// validate, analysis is exact, serialization round-trips.
#[test]
fn static_dispatch_seed_sweep() {
    let synth_cfg = SynthConfig::default();
    for seed in 0..300u64 {
        let program = synthesize(seed, &synth_cfg);
        let cfg = config(seed, SchedulePolicy::StaticCyclic);

        let actual = run_actual(&program, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: actual sim failed: {e}"));
        let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: measured sim failed: {e}"));

        assert!(actual.trace.is_totally_ordered(), "seed {seed}");
        pair_sync_events(&measured.trace).unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let approx = event_based(&measured.trace, &cfg.overheads)
            .unwrap_or_else(|e| panic!("seed {seed}: analysis failed: {e}"));
        assert_eq!(
            approx.total_time(),
            actual.trace.total_time(),
            "seed {seed}: event-based total not exact"
        );

        let report = compare_traces(&actual.trace, &approx.trace, Span::ZERO);
        assert_eq!(
            report.max_abs_error,
            Span::ZERO,
            "seed {seed}: per-event error (matched {})",
            report.matched
        );
    }
}

/// Self-scheduled dispatch with heavy jitter: analysis stays feasible and
/// close even when assignments shift.
#[test]
fn self_scheduled_seed_sweep() {
    let synth_cfg = SynthConfig::default();
    for seed in 0..120u64 {
        let program = synthesize(seed, &synth_cfg);
        let cfg = config(seed, SchedulePolicy::SelfScheduled);

        let actual = run_actual(&program, &cfg).expect("valid");
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
        let approx = event_based(&measured.trace, &cfg.overheads)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let ratio = approx.total_time().ratio(actual.trace.total_time());
        assert!(
            (ratio - 1.0).abs() < 0.25,
            "seed {seed}: conservative approx ratio {ratio} too far off under reassignment"
        );
        // The approximated trace is itself a feasible execution.
        assert!(
            ppa::trace::pair_sync_events_strict(&approx.trace).is_ok(),
            "seed {seed}: approximated trace infeasible"
        );
    }
}

/// Time-based analysis on the same sweep: never better than event-based,
/// never longer than the measurement.
#[test]
fn time_based_bounds_hold_on_sweep() {
    let synth_cfg = SynthConfig::default();
    for seed in 0..150u64 {
        let program = synthesize(seed, &synth_cfg);
        let cfg = config(seed, SchedulePolicy::StaticCyclic);
        let actual = run_actual(&program, &cfg)
            .expect("valid")
            .trace
            .total_time();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");

        let tb = time_based(&measured.trace, &cfg.overheads).total_time();
        assert!(tb <= measured.trace.total_time(), "seed {seed}");

        let eb = event_based(&measured.trace, &cfg.overheads)
            .expect("feasible")
            .total_time();
        let tb_err = (tb.ratio(actual) - 1.0).abs();
        let eb_err = (eb.ratio(actual) - 1.0).abs();
        assert!(
            eb_err <= tb_err + 1e-12,
            "seed {seed}: event-based ({eb_err}) worse than time-based ({tb_err})"
        );
    }
}

/// Serialization round-trips on synthesized traces of every shape.
#[test]
fn serialization_seed_sweep() {
    let synth_cfg = SynthConfig::default();
    for seed in 200..260u64 {
        let program = synthesize(seed, &synth_cfg);
        let cfg = config(seed, SchedulePolicy::StaticBlock);
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
        let mut buf = Vec::new();
        ppa::trace::write_jsonl(&measured.trace, &mut buf).expect("write");
        let back = ppa::trace::read_jsonl(buf.as_slice()).expect("read");
        assert_eq!(measured.trace, back, "seed {seed}");
    }
}
