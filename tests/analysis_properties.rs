//! Cross-cutting analysis properties on the experiment workloads —
//! relationships between the analysis products that must hold regardless
//! of calibration.

use ppa::analysis::{compare_traces, estimate_overheads, event_based, time_based};
use ppa::experiments as exp;
use ppa::metrics::{census, census_delta, loop_windows, order_perturbation, wait_histogram};
use ppa::prelude::*;

fn run_pair(kernel: u8, plan: &InstrumentationPlan) -> (Trace, Trace, SimConfig) {
    let cfg = exp::experiment_config();
    let program = ppa::lfk::doacross_graph(kernel).expect("doacross kernel");
    let actual = run_actual(&program, &cfg).expect("valid");
    let measured = run_measured(&program, plan, &cfg).expect("valid");
    (actual.trace, measured.trace, cfg)
}

/// The approximated trace's loop window equals the actual trace's loop
/// window (analysis recovers structure, not just totals).
#[test]
fn loop_windows_are_recovered() {
    for kernel in [3u8, 4, 17] {
        let (actual, measured, cfg) = run_pair(kernel, &InstrumentationPlan::full_with_sync());
        let approx = event_based(&measured, &cfg.overheads).unwrap();

        let wa = loop_windows(&actual);
        let wx = loop_windows(&approx.trace);
        assert_eq!(wa.len(), 1, "one concurrent loop per workload");
        assert_eq!(wx.len(), 1);
        assert_eq!(wa[0].0, wx[0].0, "loop id");
        // Window lengths match closely (self-scheduled + jitter leaves a
        // small residual; static dispatch would be exact).
        let la = (wa[0].2 - wa[0].1).as_nanos() as f64;
        let lx = (wx[0].2 - wx[0].1).as_nanos() as f64;
        assert!(
            (lx / la - 1.0).abs() < 0.05,
            "kernel {kernel}: loop window {lx} vs actual {la}"
        );
    }
}

/// Census deltas across plans quantify the volume axis: full_with_sync
/// adds exactly the sync/barrier kinds and multiplies events accordingly.
#[test]
fn census_delta_across_plans() {
    let (_, stmts_only, _) = run_pair(3, &InstrumentationPlan::full_statements());
    let (_, with_sync, _) = run_pair(3, &InstrumentationPlan::full_with_sync());
    let a = census(&stmts_only);
    let b = census(&with_sync);
    let d = census_delta(&a, &b);
    assert!(
        d.volume_ratio > 1.5,
        "sync instrumentation should add volume: {}",
        d.volume_ratio
    );
    for kind in ["advance", "awaitB", "awaitE", "barEnter", "barExit"] {
        assert!(
            d.added_kinds.iter().any(|k| k == kind),
            "missing added kind {kind}: {:?}",
            d.added_kinds
        );
    }
    assert!(d.removed_kinds.is_empty());
}

/// Time-based analysis preserves event order within threads but cannot
/// repair cross-processor order; event-based repairs it fully.
#[test]
fn order_repair_is_exclusive_to_event_based() {
    let (actual, measured, cfg) = run_pair(17, &InstrumentationPlan::full_with_sync());

    let raw = order_perturbation(&actual, &measured);
    assert!(raw.inversions > 0);

    let tb = time_based(&measured, &cfg.overheads);
    let tb_order = order_perturbation(&actual, &tb.trace);

    let eb = event_based(&measured, &cfg.overheads).unwrap();
    let eb_order = order_perturbation(&actual, &eb.trace);

    assert_eq!(eb_order.inversions, 0, "event-based repairs all reordering");
    assert!(
        eb_order.inversions <= tb_order.inversions,
        "event-based must not be worse than time-based"
    );
}

/// The waiting histogram's total equals the summed per-processor waits.
#[test]
fn histogram_mass_matches_waiting_totals() {
    let (_, measured, cfg) = run_pair(3, &InstrumentationPlan::full_with_sync());
    let approx = event_based(&measured, &cfg.overheads).unwrap();
    let h = wait_histogram(&approx);
    let total_from_rows: Span = (0..cfg.processors)
        .map(|p| approx.sync_wait(ProcessorId(p as u16)))
        .sum();
    assert_eq!(h.total, total_from_rows);
    assert_eq!(
        h.count as usize,
        approx.awaits.iter().filter(|a| a.waited()).count()
    );
}

/// Overhead estimation from one kernel's pair transfers to another kernel
/// (the constants are machine properties, not workload properties).
#[test]
fn estimated_overheads_transfer_across_workloads() {
    let (actual3, measured3, cfg) = run_pair(3, &InstrumentationPlan::full_with_sync());
    let est = estimate_overheads(&actual3, &measured3, &cfg.overheads);

    let (actual17, measured17, _) = run_pair(17, &InstrumentationPlan::full_with_sync());
    let approx = event_based(&measured17, &est.spec).unwrap();
    let ratio = approx.total_time().ratio(actual17.total_time());
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "estimated spec from loop 3 should analyze loop 17: {ratio}"
    );
}

/// Windowing composes with accuracy comparison: restricting both traces
/// to the loop window still shows the event-based exactness.
#[test]
fn windowed_comparison_is_consistent() {
    let cfg = exp::experiment_config().with_schedule(SchedulePolicy::StaticCyclic);
    let program = ppa::lfk::doacross_graph(4).unwrap();
    let actual = run_actual(&program, &cfg).unwrap().trace;
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .unwrap()
        .trace;
    let approx = event_based(&measured, &cfg.overheads).unwrap().trace;

    let w = loop_windows(&actual)[0];
    let a_win = actual.window(w.1, w.2 + Span::from_nanos(1));
    let x_win = approx.window(w.1, w.2 + Span::from_nanos(1));
    let report = compare_traces(&a_win, &x_win, Span::ZERO);
    assert!(report.matched > 1_000);
    assert_eq!(report.max_abs_error, Span::ZERO);
}

/// The experiment drivers expose consistent data: table2's approximated
/// ratio for loop 17 equals the loop17_analysis result's ratio.
#[test]
fn drivers_are_mutually_consistent() {
    let t2 = exp::table2();
    let l17_row = t2.iter().find(|r| r.label == "lfk17").unwrap();
    let a = exp::loop17_analysis();

    let cfg = exp::experiment_config();
    let program = ppa::lfk::doacross_graph(17).unwrap();
    let actual = run_actual(&program, &cfg).unwrap().trace.total_time();
    let from_analysis = a.result.total_time().ratio(actual);
    assert!(
        (from_analysis - l17_row.approx_over_actual).abs() < 1e-9,
        "table2 ({}) and loop17_analysis ({}) disagree",
        l17_row.approx_over_actual,
        from_analysis
    );
}
