//! Rendering-path integration tests: every figure/table formatter must
//! produce structurally sane output on real experiment data (row counts,
//! legends, axes — the things a golden-file test would freeze, asserted
//! structurally instead so calibration changes don't break them).

use ppa::experiments as exp;
use ppa::metrics::{
    census, decompose_slowdown, format_census, format_decomposition, format_ratio_table,
    format_waiting_table, render_bars, render_histogram, render_parallelism, render_timeline,
    wait_histogram,
};
use ppa::prelude::*;

#[test]
fn ratio_table_renders_three_rows_with_paper_columns() {
    let rows = exp::table2();
    let s = format_ratio_table("Table 2", &rows);
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 1 + 1 + 3, "title + header + three loops");
    for label in ["lfk03", "lfk04", "lfk17"] {
        assert!(s.contains(label), "missing {label}");
    }
    // Paper values appear.
    assert!(s.contains("4.56"));
    assert!(s.contains("0.96"));
}

#[test]
fn waiting_table_has_eight_processor_columns() {
    let a = exp::loop17_analysis();
    let s = format_waiting_table("Table 3", &a.waiting);
    let header = s
        .lines()
        .find(|l| l.starts_with("processor:"))
        .expect("header row");
    assert_eq!(header.split_whitespace().count(), 1 + 8);
    let values = s
        .lines()
        .find(|l| l.starts_with("waiting %:"))
        .expect("values row");
    assert_eq!(values.matches('%').count(), 9); // 8 values + the label's %
}

#[test]
fn timeline_renders_one_row_per_processor_with_legend() {
    let a = exp::loop17_analysis();
    let s = render_timeline(&a.timeline, 80);
    let proc_rows = s.lines().filter(|l| l.starts_with('P')).count();
    assert_eq!(proc_rows, 8);
    assert!(
        s.contains("legend") || s.contains("active"),
        "legend missing:\n{s}"
    );
    // Every processor has at least one active cell.
    for line in s.lines().filter(|l| l.starts_with('P')) {
        assert!(line.contains('#'), "row without activity: {line}");
    }
}

#[test]
fn parallelism_chart_has_descending_levels() {
    let a = exp::loop17_analysis();
    let s = render_parallelism(&a.profile, 80, 8);
    let level_rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
    assert_eq!(level_rows.len(), 8);
    // Level rows are monotone: a column filled at level k is filled at
    // k-1 (the step function is a proper profile).
    for pair in level_rows.windows(2) {
        let hi: Vec<char> = pair[0].chars().collect();
        let lo: Vec<char> = pair[1].chars().collect();
        for (a, b) in hi.iter().zip(&lo) {
            if *a == '█' {
                assert_eq!(*b, '█', "profile not monotone:\n{}\n{}", pair[0], pair[1]);
            }
        }
    }
}

#[test]
fn bars_scale_within_width() {
    let rows = exp::fig1();
    let groups: Vec<_> = rows
        .iter()
        .map(|r| {
            (
                format!("loop {}", r.kernel),
                vec![
                    ("measured".to_string(), r.measured_ratio),
                    ("approx".to_string(), r.approx_ratio),
                ],
            )
        })
        .collect();
    let s = render_bars("Fig 1", &groups, 40);
    for line in s.lines().filter(|l| l.contains('|')) {
        assert!(line.matches('█').count() <= 40, "bar overflow: {line}");
    }
    assert_eq!(
        s.lines().filter(|l| l.contains('|')).count(),
        rows.len() * 2
    );
}

#[test]
fn census_and_decomposition_render_on_real_traces() {
    let cfg = exp::experiment_config();
    let program = ppa::lfk::doacross_graph(3).unwrap();
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
    let analysis = event_based(&measured.trace, &cfg.overheads).unwrap();

    let c = census(&measured.trace);
    assert_eq!(c.events, measured.trace.len());
    let cs = format_census("census", &c);
    assert!(cs.contains("by kind:") && cs.contains("advance"));

    let d = decompose_slowdown(&measured.trace, &analysis, &cfg.overheads);
    assert!(d.slowdown() > 1.0);
    let ds = format_decomposition("d", &d);
    assert!(ds.contains("induced waiting"));

    let h = wait_histogram(&analysis);
    assert!(h.count > 0, "loop 3 approximation should contain waits");
    let hs = render_histogram("waits", &h, 30);
    assert!(hs.contains("waits"));
}

#[test]
fn csv_outputs_parse_back_as_csv() {
    let rows = exp::table1();
    let mut buf = Vec::new();
    ppa::metrics::write_ratios_csv(&rows, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    let columns = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), columns, "ragged CSV row: {line}");
    }
}
