//! Consistency checks that span crates: the two execution backends, the
//! two analysis models, and the metrics layer must all agree where their
//! domains overlap.

use ppa::experiments::experiment_config;
use ppa::metrics::{build_timeline, parallelism_profile, waiting_table};
use ppa::prelude::*;

fn doacross_program(trip: u64, head: u64, cs: u64, tail: u64) -> Program {
    let mut b = ProgramBuilder::new("consistency");
    let v = b.sync_var();
    b.serial([("pre", 1_000u64)])
        .doacross(1, trip, |body| {
            body.compute("head", head)
                .await_var(v, -1)
                .compute("cs", cs)
                .advance(v)
                .compute("tail", tail)
        })
        .serial([("post", 1_000u64)])
        .build()
        .unwrap()
}

/// Event-based analysis of a measured simulator trace reconstructs the
/// actual trace exactly (static dispatch), event for event.
#[test]
fn event_based_reconstructs_actual_event_times() {
    let program = doacross_program(64, 700, 80, 300);
    let cfg = experiment_config().with_schedule(SchedulePolicy::StaticCyclic);
    let actual = run_actual(&program, &cfg).unwrap();
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
    let approx = event_based(&measured.trace, &cfg.overheads).unwrap();

    // Each approximated event should appear at the actual run's time for
    // the same (proc, kind) occurrence.
    use std::collections::HashMap;
    let mut actual_by_key: HashMap<(ProcessorId, EventKind), Vec<Time>> = HashMap::new();
    for e in actual.trace.iter() {
        actual_by_key
            .entry((e.proc, e.kind))
            .or_default()
            .push(e.time);
    }
    let mut checked = 0;
    for e in approx.trace.iter() {
        if let Some(times) = actual_by_key.get(&(e.proc, e.kind)) {
            assert!(
                times.contains(&e.time),
                "approximated event {e} not at any actual occurrence time {times:?}"
            );
            checked += 1;
        }
    }
    assert!(checked > 300, "only {checked} events cross-checked");
}

/// The waiting table computed from the *approximated* trace equals the
/// simulator's ground-truth per-processor waiting statistics.
#[test]
fn waiting_table_matches_simulator_stats() {
    let program = doacross_program(128, 400, 120, 100);
    let cfg = experiment_config().with_schedule(SchedulePolicy::StaticCyclic);
    let actual = run_actual(&program, &cfg).unwrap();
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
    let approx = event_based(&measured.trace, &cfg.overheads).unwrap();

    let table = waiting_table(&approx, cfg.processors);
    let truth = &actual.stats.loops[0];
    for (row, ps) in table.rows.iter().zip(&truth.per_proc) {
        assert_eq!(
            row.sync_wait_ns,
            ps.sync_wait.as_nanos(),
            "P{}: approximated sync wait differs from ground truth",
            row.proc
        );
    }
}

/// Timeline waiting accounting equals the analysis result's waiting sums,
/// and the parallelism profile integrates to the total active time.
#[test]
fn metrics_layers_agree() {
    let program = doacross_program(96, 600, 90, 150);
    let cfg = experiment_config();
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
    let approx = event_based(&measured.trace, &cfg.overheads).unwrap();

    let timeline = build_timeline(&approx, cfg.processors);
    for p in 0..cfg.processors {
        let pid = ProcessorId(p as u16);
        let from_result = approx.sync_wait(pid) + approx.barrier_wait(pid);
        let from_timeline = timeline.waiting(p);
        // The timeline clips waits at the processor's last event, so it may
        // be at most equal.
        assert!(
            from_timeline <= from_result,
            "P{p}: timeline waiting {from_timeline} exceeds analysis {from_result}"
        );
        let diff = from_result
            .as_nanos()
            .saturating_sub(from_timeline.as_nanos());
        assert!(
            diff <= from_result.as_nanos() / 20 + 10,
            "P{p}: timeline waiting {from_timeline} too far from analysis {from_result}"
        );
    }

    let profile = parallelism_profile(&timeline);
    let range = timeline.end - timeline.start;
    let total_active: u64 = (0..cfg.processors)
        .map(|p| timeline.active(p).as_nanos())
        .sum();
    let avg = profile.average(timeline.start, timeline.end);
    let expected = total_active as f64 / range.as_nanos() as f64;
    assert!(
        (avg - expected).abs() < 1e-6,
        "profile avg {avg} vs interval sum {expected}"
    );
}

/// Simulator and native backend agree structurally: the same program under
/// the same plan yields traces with identical event censuses.
#[test]
fn sim_and_native_traces_have_the_same_census() {
    let program = doacross_program(40, 3_000, 500, 1_000);
    let plan = InstrumentationPlan::full_with_sync();

    let sim_cfg = experiment_config()
        .with_processors(4)
        .with_schedule(SchedulePolicy::StaticCyclic);
    let sim_run = run_measured(&program, &plan, &sim_cfg).unwrap();

    let native_cfg = ppa::native::NativeConfig {
        processors: 4,
        padding: Span::from_nanos(500),
        plan,
        self_scheduled: false,
    };
    let native_run = ppa::native::execute_program(&program, &native_cfg).unwrap();

    let census = |t: &Trace| {
        let mut m: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for e in t.iter() {
            *m.entry(e.kind.mnemonic()).or_default() += 1;
        }
        m
    };
    assert_eq!(census(&sim_run.trace), census(&native_run.trace));

    // Both validate and pair identically in count.
    let si = pair_sync_events(&sim_run.trace).unwrap();
    let ni = pair_sync_events(&native_run.trace).unwrap();
    assert_eq!(si.awaits.len(), ni.awaits.len());
    assert_eq!(si.advances.len(), ni.advances.len());
    assert_eq!(si.barriers.len(), ni.barriers.len());
}

/// Liberal analysis with the true dispatch policy agrees with conservative
/// analysis when the assignment was not perturbed.
#[test]
fn liberal_and_conservative_agree_under_static_dispatch() {
    let program = doacross_program(200, 500, 70, 0);
    let cfg = experiment_config().with_schedule(SchedulePolicy::StaticCyclic);
    let actual = run_actual(&program, &cfg).unwrap().trace.total_time();
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();

    let conservative = event_based(&measured.trace, &cfg.overheads)
        .unwrap()
        .total_time();
    let liberal = liberal_reschedule(
        &measured.trace,
        &cfg.overheads,
        cfg.processors,
        SchedulePolicy::StaticCyclic,
        0.0,
    )
    .unwrap()
    .total;

    let c = conservative.ratio(actual);
    let l = liberal.ratio(actual);
    assert!((c - 1.0).abs() < 0.02, "conservative {c:.4}");
    assert!((l - 1.0).abs() < 0.05, "liberal {l:.4}");
    assert!((c - l).abs() < 0.05, "models disagree: {c:.4} vs {l:.4}");
}

/// JSONL round-trip composes with analysis: write a measured trace, read
/// it back, analyze, and get identical results.
#[test]
fn serialization_is_transparent_to_analysis() {
    let program = doacross_program(64, 800, 60, 200);
    let cfg = experiment_config();
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();

    let mut buf = Vec::new();
    ppa::trace::write_jsonl(&measured.trace, &mut buf).unwrap();
    let reloaded = ppa::trace::read_jsonl(buf.as_slice()).unwrap();

    let direct = event_based(&measured.trace, &cfg.overheads).unwrap();
    let via_disk = event_based(&reloaded, &cfg.overheads).unwrap();
    assert_eq!(direct.trace, via_disk.trace);
    assert_eq!(direct.awaits, via_disk.awaits);
}
