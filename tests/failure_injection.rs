//! Failure injection: corrupted traces, malformed programs, and abusive
//! configurations must fail loudly with typed errors, never silently
//! produce numbers.

use ppa::analysis::AnalysisError;
use ppa::experiments::experiment_config;
use ppa::prelude::*;
use ppa::trace::{SyncTag, SyncVarId, TraceBuilder, TraceError};

fn measured_doacross() -> (Trace, SimConfig) {
    let mut b = ProgramBuilder::new("victim");
    let v = b.sync_var();
    let program = b
        .doacross(1, 32, |body| {
            body.compute("head", 500)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .unwrap();
    let cfg = experiment_config();
    let run = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
    (run.trace, cfg)
}

fn drop_events(trace: &Trace, mut pred: impl FnMut(&Event) -> bool) -> Trace {
    let events: Vec<Event> = trace.iter().filter(|e| !pred(e)).copied().collect();
    Trace::from_events(TraceKind::Measured, events)
}

#[test]
fn missing_advance_is_detected() {
    let (trace, cfg) = measured_doacross();
    let corrupted = drop_events(
        &trace,
        |e| matches!(e.kind, EventKind::Advance { tag, .. } if tag.0 == 7),
    );
    match event_based(&corrupted, &cfg.overheads) {
        Err(AnalysisError::Trace(TraceError::MissingAdvance { tag, .. })) => {
            assert_eq!(tag, SyncTag(7));
        }
        other => panic!("expected MissingAdvance, got {other:?}"),
    }
}

#[test]
fn orphan_await_end_is_detected() {
    let (trace, cfg) = measured_doacross();
    let corrupted = drop_events(
        &trace,
        |e| matches!(e.kind, EventKind::AwaitBegin { tag, .. } if tag.0 == 3),
    );
    assert!(matches!(
        event_based(&corrupted, &cfg.overheads),
        Err(AnalysisError::Trace(TraceError::UnmatchedAwaitEnd { .. }))
    ));
}

#[test]
fn dangling_await_begin_is_detected() {
    let (trace, cfg) = measured_doacross();
    let corrupted = drop_events(
        &trace,
        |e| matches!(e.kind, EventKind::AwaitEnd { tag, .. } if tag.0 == 30),
    );
    // Dropping an awaitE leaves either an unmatched end (the next one on
    // that processor pairs wrongly) or a dangling begin.
    let result = event_based(&corrupted, &cfg.overheads);
    assert!(
        matches!(
            result,
            Err(AnalysisError::Trace(
                TraceError::UnmatchedAwaitBegin { .. } | TraceError::UnmatchedAwaitEnd { .. }
            ))
        ),
        "got {result:?}"
    );
}

#[test]
fn duplicate_advance_is_detected() {
    let (trace, cfg) = measured_doacross();
    let mut events: Vec<Event> = trace.iter().copied().collect();
    let adv = *events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Advance { .. }))
        .unwrap();
    let mut dup = adv;
    dup.seq = u64::MAX; // unique position, same (var, tag)
    events.push(dup);
    let corrupted = Trace::from_events(TraceKind::Measured, events);
    assert!(matches!(
        event_based(&corrupted, &cfg.overheads),
        Err(AnalysisError::Trace(TraceError::DuplicateAdvance { .. }))
    ));
}

#[test]
fn reserved_tag_advance_is_detected() {
    let (trace, cfg) = measured_doacross();
    let mut events: Vec<Event> = trace.iter().copied().collect();
    events.push(Event::new(
        Time::from_nanos(1),
        ProcessorId(0),
        u64::MAX,
        EventKind::Advance {
            var: SyncVarId(0),
            tag: SyncTag(-4),
        },
    ));
    let corrupted = Trace::from_events(TraceKind::Measured, events);
    assert!(matches!(
        event_based(&corrupted, &cfg.overheads),
        Err(AnalysisError::Trace(TraceError::NegativeAdvanceTag { .. }))
    ));
}

#[test]
fn lost_barrier_exit_is_detected() {
    let (trace, cfg) = measured_doacross();
    let mut seen = false;
    let corrupted = drop_events(&trace, |e| {
        if matches!(e.kind, EventKind::BarrierExit { .. }) && !seen {
            seen = true;
            return true;
        }
        false
    });
    assert!(matches!(
        event_based(&corrupted, &cfg.overheads),
        Err(AnalysisError::Trace(
            TraceError::BarrierArityMismatch { .. }
        ))
    ));
}

#[test]
fn strict_pairing_rejects_causal_inversions() {
    // awaitE stamped before its advance *event*: legal in a measured trace
    // (α skew), illegal under strict (actual-trace) validation.
    let t = TraceBuilder::measured()
        .on(1)
        .at(10)
        .await_begin(0, 0)
        .at(20)
        .await_end(0, 0)
        .on(0)
        .at(30)
        .advance(0, 0)
        .build();
    assert!(pair_sync_events(&t).is_ok());
    assert!(matches!(
        ppa::trace::pair_sync_events_strict(&t),
        Err(TraceError::AwaitBeforeAdvance { .. })
    ));
}

#[test]
fn liberal_analysis_rejects_markerless_traces() {
    let (trace, cfg) = measured_doacross();
    let no_markers = drop_events(&trace, |e| {
        matches!(
            e.kind,
            EventKind::LoopBegin { .. } | EventKind::LoopEnd { .. }
        )
    });
    assert!(matches!(
        liberal_reschedule(
            &no_markers,
            &cfg.overheads,
            8,
            SchedulePolicy::StaticCyclic,
            0.0
        ),
        Err(AnalysisError::UnrecognizedStructure { .. })
    ));
}

#[test]
fn liberal_analysis_rejects_sync_free_traces() {
    let program = ProgramBuilder::new("serial")
        .serial([("a", 100u64), ("b", 100)])
        .build()
        .unwrap();
    let cfg = experiment_config();
    let run = run_measured(&program, &InstrumentationPlan::full_statements(), &cfg).unwrap();
    assert!(matches!(
        liberal_reschedule(
            &run.trace,
            &cfg.overheads,
            8,
            SchedulePolicy::StaticCyclic,
            0.0
        ),
        Err(AnalysisError::NoSyncEvents)
    ));
}

#[test]
fn simulator_rejects_malformed_programs() {
    use ppa::program::{Program, Segment, Statement};
    use ppa::trace::StatementId;

    // Sync statement outside a DOACROSS loop.
    let bad = Program {
        name: "bad".into(),
        segments: vec![Segment::Serial(vec![Statement::advance(
            StatementId(0),
            "adv",
            SyncVarId(0),
        )])],
    };
    let cfg = experiment_config();
    assert!(run_actual(&bad, &cfg).is_err());
    assert!(
        ppa::native::execute_program(&bad, &ppa::native::NativeConfig::uninstrumented(2)).is_err()
    );
}

#[test]
fn builder_rejects_deadlocking_shapes() {
    // Await with offset 0 would wait for itself.
    let mut b = ProgramBuilder::new("self-wait");
    let v = b.sync_var();
    assert!(b
        .doacross(1, 4, |body| body.await_var(v, 0).advance(v))
        .build()
        .is_err());

    // Await on a variable no iteration advances.
    let mut b = ProgramBuilder::new("never-advanced");
    let v = b.sync_var();
    assert!(b
        .doacross(1, 4, |body| body.await_var(v, -1))
        .build()
        .is_err());
}

#[test]
fn io_rejects_corrupt_files() {
    use ppa::trace::read_jsonl;
    assert!(read_jsonl(&b""[..]).is_err());
    assert!(read_jsonl(&b"not json at all\n"[..]).is_err());
    let bad_body = br#"{"format":"ppa-trace-v1","kind":"Measured","events":1}
{"broken": true}
"#;
    assert!(read_jsonl(&bad_body[..]).is_err());
}

#[test]
fn analysis_survives_adversarial_but_legal_traces() {
    // A trace with events stacked on one timestamp, pre-advanced awaits,
    // and an empty barrier-free structure: analysis must not panic and
    // must preserve feasibility.
    let t = TraceBuilder::measured()
        .on(0)
        .at(100)
        .stmt(0)
        .at(100)
        .stmt(1)
        .at(100)
        .advance(0, 0)
        .on(1)
        .at(100)
        .await_begin(0, -5)
        .at(100)
        .await_end(0, -5)
        .on(2)
        .at(100)
        .await_begin(0, 0)
        .at(100)
        .await_end(0, 0)
        .build();
    let r = event_based(&t, &OverheadSpec::ZERO).unwrap();
    assert!(r.trace.is_totally_ordered());
    assert_eq!(r.awaits.len(), 2);
}
