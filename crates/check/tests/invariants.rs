//! Invariant-checker acceptance: the lint and report passes accept every
//! analyzer-produced report on random valid programs (no false
//! positives), and reject each hand-seeded violation fixture with the
//! right rule.

use ppa_check::{check_metrics, ReportChecker, TraceLinter, Violation};
use ppa_core::event_based;
use ppa_program::synth::{synthesize, SynthConfig};
use ppa_program::InstrumentationPlan;
use ppa_sim::{run_measured, SchedulePolicy, SimConfig};
use ppa_trace::{
    BarrierId, ClockRate, Event, EventKind, OverheadSpec, ProcessorId, SyncTag, SyncVarId, Time,
};
use proptest::prelude::*;

fn static_config(seed: u64) -> SimConfig {
    SimConfig {
        processors: 8,
        clock: ClockRate::GHZ_1,
        overheads: OverheadSpec::alliant_default(),
        schedule: SchedulePolicy::StaticCyclic,
        dispatch_cycles: 50,
        jitter: None,
    }
    .with_jitter(seed, 250)
}

fn ev(time: u64, proc: u16, seq: u64, kind: EventKind) -> Event {
    Event::new(Time::from_nanos(time), ProcessorId(proc), seq, kind)
}

fn lint(events: &[Event]) -> Vec<Violation> {
    let mut l = TraceLinter::new();
    for e in events {
        l.push(e);
    }
    l.finish()
}

fn report(events: &[Event]) -> Vec<Violation> {
    let mut r = ReportChecker::new();
    for e in events {
        r.push(e);
    }
    r.finish()
}

fn rules(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No false positives: for any synthesized workload, both the
    /// measured trace and the streaming analyzer's approximated report
    /// satisfy every rule. This is the guard that keeps `ppa check`
    /// meaningful — a checker that cries wolf on valid pipelines would
    /// be worse than none.
    #[test]
    fn checker_accepts_every_analyzer_report(seed in any::<u64>()) {
        let program = synthesize(seed, &SynthConfig::default());
        let cfg = static_config(seed);
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let approx = event_based(&measured.trace, &cfg.overheads).unwrap();

        let measured_lint = lint(measured.trace.events());
        prop_assert!(measured_lint.is_empty(), "measured lint: {measured_lint:?}");

        let approx_lint = lint(approx.trace.events());
        prop_assert!(approx_lint.is_empty(), "approx lint: {approx_lint:?}");

        let approx_report = report(approx.trace.events());
        prop_assert!(approx_report.is_empty(), "approx report: {approx_report:?}");
    }
}

// --- hand-seeded lint fixtures -------------------------------------

#[test]
fn fixture_time_moves_backwards_on_one_processor() {
    let events = vec![
        ev(100, 0, 0, EventKind::ProgramBegin),
        ev(50, 0, 1, EventKind::Statement { stmt: 0.into() }),
    ];
    let r = rules(&lint(&events));
    assert!(r.contains(&"proc-time-monotone"), "{r:?}");
    assert!(r.contains(&"trace-total-order"), "{r:?}");
}

#[test]
fn fixture_sequence_hole() {
    let events = vec![
        ev(10, 0, 0, EventKind::ProgramBegin),
        ev(20, 0, 1, EventKind::Statement { stmt: 0.into() }),
        ev(30, 0, 3, EventKind::ProgramEnd),
    ];
    assert_eq!(rules(&lint(&events)), vec!["seq-contiguity"]);
}

#[test]
fn fixture_sequence_duplicate() {
    let events = vec![
        ev(10, 0, 0, EventKind::ProgramBegin),
        ev(20, 0, 1, EventKind::Statement { stmt: 0.into() }),
        ev(30, 1, 1, EventKind::Statement { stmt: 1.into() }),
    ];
    assert_eq!(rules(&lint(&events)), vec!["seq-contiguity"]);
}

#[test]
fn fixture_await_end_without_begin() {
    let events = vec![
        ev(10, 0, 0, EventKind::ProgramBegin),
        ev(
            20,
            0,
            1,
            EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
        ev(
            30,
            0,
            2,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
    ];
    assert_eq!(rules(&lint(&events)), vec!["await-pairing"]);
}

#[test]
fn fixture_await_begin_never_closed_and_nested() {
    let events = vec![
        ev(
            10,
            0,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
        ev(
            20,
            0,
            1,
            EventKind::AwaitBegin {
                var: SyncVarId(1),
                tag: SyncTag(0),
            },
        ),
    ];
    let r = rules(&lint(&events));
    // One nesting violation at push time, one unclosed await at finish.
    assert_eq!(r, vec!["await-pairing", "await-pairing"]);
}

#[test]
fn fixture_await_without_any_advance() {
    let events = vec![
        ev(
            10,
            0,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(3),
            },
        ),
        ev(
            20,
            0,
            1,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(3),
            },
        ),
    ];
    assert_eq!(rules(&lint(&events)), vec!["await-advance-order"]);
}

#[test]
fn advance_after_await_end_in_stream_is_accepted() {
    // Measured traces stamp the advance record after its own overhead,
    // so the dependent awaitE routinely precedes it in stream order —
    // this must lint clean.
    let events = vec![
        ev(
            10,
            1,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
        ev(
            20,
            1,
            1,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
        ev(
            25,
            0,
            2,
            EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
    ];
    assert!(lint(&events).is_empty());
}

#[test]
fn pre_advanced_tags_need_no_advance() {
    let events = vec![
        ev(
            10,
            0,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(-1),
            },
        ),
        ev(
            20,
            0,
            1,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(-1),
            },
        ),
    ];
    assert!(lint(&events).is_empty());
}

// --- hand-seeded report fixtures -----------------------------------

#[test]
fn fixture_report_ta_backwards() {
    let events = vec![
        ev(200, 0, 0, EventKind::ProgramBegin),
        ev(100, 0, 1, EventKind::Statement { stmt: 0.into() }),
    ];
    assert_eq!(rules(&report(&events)), vec!["report-ta-monotone"]);
}

#[test]
fn fixture_await_completes_before_its_advance() {
    // advance approximated to 500ns, but the dependent awaitE lands at
    // 400ns: the measured dependence order was lost in approximation.
    let events = vec![
        ev(
            500,
            0,
            0,
            EventKind::Advance {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
        ev(
            300,
            1,
            1,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
        ev(
            400,
            1,
            2,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(0),
            },
        ),
    ];
    assert_eq!(rules(&report(&events)), vec!["await-order-preserved"]);
}

#[test]
fn fixture_await_with_advance_missing_from_report() {
    let events = vec![
        ev(
            300,
            1,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(7),
            },
        ),
        ev(
            400,
            1,
            1,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(7),
            },
        ),
    ];
    assert_eq!(rules(&report(&events)), vec!["await-order-preserved"]);
}

#[test]
fn fixture_barrier_exit_before_last_enter() {
    let events = vec![
        ev(
            100,
            0,
            0,
            EventKind::BarrierEnter {
                barrier: BarrierId(0),
            },
        ),
        ev(
            200,
            1,
            1,
            EventKind::BarrierEnter {
                barrier: BarrierId(0),
            },
        ),
        ev(
            150,
            2,
            2,
            EventKind::BarrierExit {
                barrier: BarrierId(0),
            },
        ),
        ev(
            250,
            1,
            3,
            EventKind::BarrierExit {
                barrier: BarrierId(0),
            },
        ),
    ];
    assert_eq!(rules(&report(&events)), vec!["barrier-exit-order"]);
}

#[test]
fn fixture_barrier_exit_without_enter() {
    let events = vec![ev(
        100,
        0,
        0,
        EventKind::BarrierExit {
            barrier: BarrierId(2),
        },
    )];
    assert_eq!(rules(&report(&events)), vec!["barrier-protocol"]);
}

#[test]
fn fixture_barrier_episode_left_open() {
    let events = vec![
        ev(
            100,
            0,
            0,
            EventKind::BarrierEnter {
                barrier: BarrierId(0),
            },
        ),
        ev(
            110,
            1,
            1,
            EventKind::BarrierEnter {
                barrier: BarrierId(0),
            },
        ),
        ev(
            120,
            0,
            2,
            EventKind::BarrierExit {
                barrier: BarrierId(0),
            },
        ),
    ];
    assert_eq!(rules(&report(&events)), vec!["barrier-protocol"]);
}

#[test]
fn fixture_await_end_before_its_begin() {
    let events = vec![
        ev(
            400,
            1,
            0,
            EventKind::AwaitBegin {
                var: SyncVarId(0),
                tag: SyncTag(-1),
            },
        ),
        ev(
            300,
            1,
            1,
            EventKind::AwaitEnd {
                var: SyncVarId(0),
                tag: SyncTag(-1),
            },
        ),
    ];
    let r = rules(&report(&events));
    assert!(r.contains(&"await-begin-before-end"), "{r:?}");
}

// --- metrics cross-check -------------------------------------------

#[test]
fn metrics_nonzero_clamp_is_a_violation() {
    let prom = "# HELP ppa_core_clamped_approx_total x\n\
                # TYPE ppa_core_clamped_approx_total counter\n\
                ppa_core_clamped_approx_total 3\n";
    let v = check_metrics(prom).unwrap();
    assert_eq!(rules(&v), vec!["unaccounted-clamp"]);
    assert!(v[0].detail.contains('3'), "{}", v[0].detail);
}

#[test]
fn metrics_zero_clamp_is_clean() {
    let prom = "ppa_core_clamped_approx_total 0\nppa_core_events_total 100\n";
    assert!(check_metrics(prom).unwrap().is_empty());
}

#[test]
fn metrics_json_snapshot_is_understood() {
    let json = r#"{"metrics":[
        {"name":"ppa_core_clamped_approx_total","kind":"counter","help":"x","labels":{},"value":2}
    ]}"#;
    assert_eq!(
        rules(&check_metrics(json).unwrap()),
        vec!["unaccounted-clamp"]
    );
}

#[test]
fn metrics_garbage_is_a_parse_error() {
    assert!(check_metrics("{not json").is_err());
    assert!(check_metrics("").is_err());
}
