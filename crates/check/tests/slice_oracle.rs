//! Slice/suppression oracle properties on synthesized programs.
//!
//! Two contracts that make `--slice` and `--suppress` safe to use on
//! real reports:
//!
//! 1. **Slicing commutes with report filtering.** `ppa analyze --slice`
//!    scopes the *approximated report* (the analysis always runs over
//!    the full measured input — see EXPERIMENTS.md for why input
//!    slicing biases the §4.2.3 approximation). So slicing the report
//!    through the streaming engine — binary container, skip index
//!    engaged — must equal a naive in-memory filter of the same report,
//!    with every event accounted for.
//! 2. **Suppression is invisible to the analyzer.** Analyzing a
//!    suppressed measured trace yields a report byte-identical (in both
//!    container formats) to analyzing the original.

use ppa_core::event_based;
use ppa_program::synth::{synthesize, SynthConfig};
use ppa_program::InstrumentationPlan;
use ppa_sim::{run_measured, SchedulePolicy, SimConfig};
use ppa_slice::{slice_stream, suppress_events, SliceOptions, SliceProbes, SliceSpec};
use ppa_trace::{write_binary, write_jsonl, AnyTraceReader, ClockRate, Event, OverheadSpec, Trace};
use proptest::prelude::*;

fn static_config(seed: u64) -> SimConfig {
    SimConfig {
        processors: 8,
        clock: ClockRate::GHZ_1,
        overheads: OverheadSpec::alliant_default(),
        schedule: SchedulePolicy::StaticCyclic,
        dispatch_cycles: 50,
        jitter: None,
    }
    .with_jitter(seed, 250)
}

/// A random nontrivial slice expression over `report`: a window across
/// `[lo, hi)` quarters of its time span, a processor subset, and
/// (sometimes) a kind group.
fn random_expr(report: &Trace, lo_q: u64, hi_q: u64, proc_mask: u8, sync_only: bool) -> String {
    let first = report.events().first().map_or(0, |e| e.time.as_nanos());
    let last = report.events().last().map_or(0, |e| e.time.as_nanos());
    let span = last.saturating_sub(first).max(4);
    let mut clauses = vec![format!(
        "window={}ns..{}ns",
        first + span * lo_q / 4,
        first + span * hi_q / 4
    )];
    let procs: Vec<String> = (0..8u16)
        .filter(|p| proc_mask & (1 << p) != 0)
        .map(|p| p.to_string())
        .collect();
    if !procs.is_empty() {
        clauses.push(format!("procs={}", procs.join(",")));
    }
    if sync_only {
        clauses.push("kind=sync".to_string());
    }
    clauses.join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1: engine-slicing the approximated report (binary
    /// container, skip index on) equals naively filtering it, and the
    /// accounting identity `emitted + filtered + skipped == expected`
    /// holds exactly.
    #[test]
    fn slicing_report_stream_equals_filtering_report(
        seed in any::<u64>(),
        lo_q in 0u64..4,
        q_width in 1u64..4,
        proc_mask in any::<u8>(),
        sync_only in any::<bool>(),
    ) {
        let program = synthesize(seed, &SynthConfig::default());
        let cfg = static_config(seed);
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let report = event_based(&measured.trace, &cfg.overheads).unwrap().trace;

        let expr = random_expr(&report, lo_q, (lo_q + q_width).min(4), proc_mask, sync_only);
        let spec = SliceSpec::parse(&expr).unwrap();

        let mut bytes = Vec::new();
        write_binary(&report, &mut bytes).unwrap();
        let mut reader = AnyTraceReader::open(bytes.as_slice()).unwrap();
        let options = SliceOptions { spec: spec.clone(), suppress: false, use_skip_index: true };
        let probes = SliceProbes::noop();
        let mut sliced: Vec<Event> = Vec::new();
        let stats = slice_stream(&mut reader, &options, &probes, |e| {
            sliced.push(*e);
            Ok(())
        })
        .unwrap();

        let filtered: Vec<&Event> = report.iter().filter(|e| spec.matches(e)).collect();
        prop_assert_eq!(sliced.len(), filtered.len(), "expr {}", expr);
        for (got, want) in sliced.iter().zip(&filtered) {
            prop_assert_eq!(got, *want, "expr {}", expr);
        }
        prop_assert!(
            stats.conservation_holds(),
            "expr {}: {} of {} accounted",
            expr,
            stats.accounted(),
            stats.expected
        );
    }

    /// Contract 2: a suppressed measured trace analyzes to a report
    /// byte-identical to the unsuppressed one, in both containers.
    #[test]
    fn suppressed_analysis_report_is_byte_identical(seed in any::<u64>()) {
        let program = synthesize(seed, &SynthConfig::default());
        let cfg = static_config(seed);
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();

        let suppressed_events = suppress_events(measured.trace.events());
        let suppressed = Trace::from_events(measured.trace.kind(), suppressed_events);

        let direct = event_based(&measured.trace, &cfg.overheads).unwrap().trace;
        let via = event_based(&suppressed, &cfg.overheads).unwrap().trace;

        let mut direct_jsonl = Vec::new();
        let mut via_jsonl = Vec::new();
        write_jsonl(&direct, &mut direct_jsonl).unwrap();
        write_jsonl(&via, &mut via_jsonl).unwrap();
        prop_assert_eq!(direct_jsonl, via_jsonl, "jsonl reports differ");

        let mut direct_bin = Vec::new();
        let mut via_bin = Vec::new();
        write_binary(&direct, &mut direct_bin).unwrap();
        write_binary(&via, &mut via_bin).unwrap();
        prop_assert_eq!(direct_bin, via_bin, "binary reports differ");
    }
}
