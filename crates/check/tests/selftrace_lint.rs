//! The self-trace exporter must emit traces `ppa check` accepts: the
//! dogfood loop (`ppa analyze --self-trace` fed back through the
//! checker) depends on every exported span log satisfying the full
//! trace lint — total order, per-processor monotonicity, contiguous
//! sequence numbers, and await pairing — in both container formats.

use ppa_check::TraceLinter;
use ppa_obs::{SpanEvent, SpanLog, Stage, STAGE_COUNT};
use ppa_trace::{write_self_trace, AnyTraceReader, TraceFormat, TraceKind};
use proptest::prelude::*;

/// A random call tree; spans are synthesized from it with a counter
/// clock, so the fixtures satisfy exactly the invariants the recorder
/// guarantees (well-nested per thread) without needing a live recorder.
#[derive(Clone, Debug)]
struct Node {
    stage: usize,
    children: Vec<Node>,
}

fn arb_tree() -> impl Strategy<Value = Node> {
    let leaf = (0..STAGE_COUNT).prop_map(|stage| Node {
        stage,
        children: Vec::new(),
    });
    // Depth up to 10 so some spans exceed the exporter's lane budget
    // (DEPTH_LANES = 8) and exercise the skip path.
    leaf.prop_recursive(10, 48, 3, |inner| {
        (0..STAGE_COUNT, proptest::collection::vec(inner, 0..3))
            .prop_map(|(stage, children)| Node { stage, children })
    })
}

fn synthesize(
    node: &Node,
    thread: u32,
    parent: Option<u64>,
    depth: u16,
    clock: &mut u64,
    next_id: &mut u64,
    out: &mut Vec<SpanEvent>,
) {
    let id = *next_id;
    *next_id += 1;
    let start_ns = *clock;
    *clock += 1;
    for child in &node.children {
        synthesize(child, thread, Some(id), depth + 1, clock, next_id, out);
    }
    let end_ns = *clock;
    *clock += 1;
    out.push(SpanEvent {
        id,
        parent,
        thread,
        depth,
        stage: Stage::ALL[node.stage],
        start_ns,
        end_ns,
        block: None,
        seq: None,
    });
}

fn log_from(forest: &[(u32, Node)]) -> SpanLog {
    let mut events = Vec::new();
    let mut clock = 0;
    let mut next_id = 0;
    for (thread, tree) in forest {
        synthesize(
            tree,
            *thread,
            None,
            0,
            &mut clock,
            &mut next_id,
            &mut events,
        );
    }
    events.sort_by_key(|e| (e.start_ns, e.id));
    let mut stage_ns = [0u64; STAGE_COUNT];
    for e in &events {
        stage_ns[e.stage.index()] += e.duration_ns();
    }
    SpanLog {
        events,
        dropped: 0,
        stage_ns,
    }
}

fn lint_violations(bytes: &[u8]) -> Vec<String> {
    let reader = AnyTraceReader::open(bytes).expect("open exported self-trace");
    assert_eq!(reader.kind(), TraceKind::Measured);
    let mut linter = TraceLinter::new();
    for event in reader {
        let event = event.expect("decode exported event");
        linter.push(&event);
    }
    linter
        .finish()
        .into_iter()
        .map(|v| format!("{}: {}", v.rule, v.detail))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every exported span forest — including multi-thread logs and
    /// spans deep enough to be skipped — lints clean in both formats.
    #[test]
    fn exported_self_trace_passes_the_lint(
        trees in proptest::collection::vec(arb_tree(), 1..4),
        threads in 1u32..3,
    ) {
        let forest: Vec<(u32, Node)> = trees
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32 % threads, t.clone()))
            .collect();
        let log = log_from(&forest);

        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut bytes = Vec::new();
            let summary = write_self_trace(&mut bytes, &log, format).expect("export");
            prop_assert_eq!(summary.spans + summary.skipped, log.events.len());
            let violations = lint_violations(&bytes);
            prop_assert!(violations.is_empty(), "lint violations: {:?}", violations);
        }
    }
}
