//! Mechanical validation for perturbation-analysis inputs and outputs.
//!
//! The paper's central claim is that event-based analysis yields a
//! *conservative approximation of a feasible execution*: approximated
//! times must preserve the measured partial order of dependent
//! synchronization events (§4.2.3). This crate checks that claim — and
//! the structural sanity of the traces feeding it — instead of trusting
//! it:
//!
//! - [`TraceLinter`] streams a measured (or actual) trace and verifies
//!   structural invariants: the total order, per-processor time
//!   monotonicity, sequence-number contiguity, `awaitB`/`awaitE`
//!   pairing, and that no `awaitE` precedes its matching `advance`.
//! - [`ReportChecker`] streams an approximated trace and verifies the
//!   §4.2.3 conservation laws on analyzer output: approximated times
//!   monotone per processor, `ta(awaitE) ≥ ta(advance)` for every
//!   dependent pair, `awaitB` before `awaitE`, and barrier exits no
//!   earlier than the latest enter of their episode.
//! - [`check_metrics`] cross-checks an exported metrics snapshot for
//!   nonzero `ppa_core_clamped_approx_total` — a clamped approximation
//!   is one where instrumentation overhead exceeded the measured
//!   inter-event spacing, exactly the uncertainty the §4.2.3 rules
//!   cannot correct for.
//! - [`differential`] runs the streaming, reference, and sharded
//!   analysis paths over generated DOACROSS programs, diffs their
//!   reports field by field, and shrinks any mismatch to a minimal
//!   reproducing trace.
//!
//! Every violation carries a stable machine-readable rule name; the
//! `ppa check` CLI subcommand maps any violation to sysexits 65 and
//! exports per-rule counts as `ppa_check_violations_total{rule=...}`.

#![warn(missing_docs)]

mod checkpoint;
pub mod differential;
mod lint;
mod metrics;
mod report;

pub use checkpoint::{is_checkpoint_magic, lint_checkpoint, CheckpointLint};
pub use differential::{run_differential, DifferentialConfig, DifferentialReport, Mismatch};
pub use lint::TraceLinter;
pub use metrics::check_metrics;
pub use report::ReportChecker;

use core::fmt;
use ppa_obs::Registry;

/// One invariant violation found by a check pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable machine-readable rule identifier (kebab-case). This is the
    /// `rule` label on `ppa_check_violations_total` and the name CI greps
    /// for, so it must not change casually.
    pub rule: &'static str,
    /// Human-readable description carrying the offending event
    /// coordinates (time, processor, sequence number).
    pub detail: String,
}

impl Violation {
    fn new(rule: &'static str, detail: String) -> Self {
        Violation { rule, detail }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// Exports per-rule violation counts as
/// `ppa_check_violations_total{rule=...}` on `registry`.
pub fn export_violations(registry: &Registry, violations: &[Violation]) {
    for v in violations {
        registry
            .counter_with(
                "ppa_check_violations_total",
                &[("rule", v.rule)],
                "Invariant violations found by ppa check, by rule.",
            )
            .inc();
    }
}
