//! Checkpoint-file lint: validates a `PPACKPT1` snapshot or a
//! `PPACKPT2` incremental chain the way `--resume` would read it, but
//! reports *everything* wrong instead of silently tolerating a torn
//! tail. `ppa analyze --resume` prefers availability (longest valid
//! prefix); an operator running `ppa check` over a checkpoint tree
//! wants to know the tail was torn before trusting the file for
//! disaster recovery.

use crate::Violation;
use ppa_core::{read_checkpoint, scan_checkpoint, CheckpointError};
use std::path::Path;

/// What `lint_checkpoint` found, alongside any violations: enough for
/// the CLI to print a one-line summary mirroring the trace-lint path.
#[derive(Debug, Clone)]
pub struct CheckpointLint {
    /// `1` for a v1 snapshot, `2` for a v2 incremental chain.
    pub version: u8,
    /// Delta records applied on top of the full snapshot (0 for v1).
    pub delta_records: usize,
    /// Input positions the checkpoint claims to have consumed.
    pub positions_seen: u64,
}

/// True when `bytes` begin with a checkpoint magic (either version) —
/// the sniff `ppa check` uses to route a file to [`lint_checkpoint`]
/// instead of the trace linter.
pub fn is_checkpoint_magic(bytes: &[u8]) -> bool {
    bytes.starts_with(b"PPACKPT")
}

/// Lints the checkpoint file at `path`. I/O failures (missing file,
/// permission) are returned as `Err`; everything wrong with the bytes
/// themselves comes back as violations so one run reports them all.
pub fn lint_checkpoint(path: &Path) -> Result<(CheckpointLint, Vec<Violation>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut violations = Vec::new();
    if bytes.starts_with(ppa_core::CHECKPOINT_MAGIC_V2) {
        let mut lint = CheckpointLint {
            version: 2,
            delta_records: 0,
            positions_seen: 0,
        };
        match scan_checkpoint(path) {
            Ok(scan) => {
                lint.delta_records = scan.delta_records;
                lint.positions_seen = scan.checkpoint.positions_seen;
                if let Some(reason) = scan.torn_tail {
                    violations.push(Violation {
                        rule: "checkpoint-torn-tail",
                        detail: format!(
                            "chain tail is torn or corrupt ({reason}); resume falls back \
                             to the last {} valid record(s)",
                            1 + scan.delta_records
                        ),
                    });
                }
            }
            Err(CheckpointError::Corrupt(m)) => violations.push(Violation {
                rule: "checkpoint-corrupt",
                detail: format!("v2 chain does not reassemble: {m}"),
            }),
            Err(e @ CheckpointError::FutureVersion { .. }) => violations.push(Violation {
                rule: "checkpoint-future-version",
                detail: e.to_string(),
            }),
            Err(CheckpointError::Io(e)) => return Err(format!("{}: {e}", path.display())),
        }
        Ok((lint, violations))
    } else {
        // v1 or unrecognized magic: `read_checkpoint` performs the full
        // validation (magic, version, CRC, payload decode).
        match read_checkpoint(path) {
            Ok(cp) => Ok((
                CheckpointLint {
                    version: 1,
                    delta_records: 0,
                    positions_seen: cp.positions_seen,
                },
                violations,
            )),
            Err(e @ (CheckpointError::Corrupt(_) | CheckpointError::FutureVersion { .. })) => {
                let detail = match e {
                    CheckpointError::Corrupt(m) => format!("snapshot does not validate: {m}"),
                    other => other.to_string(),
                };
                violations.push(Violation {
                    rule: "checkpoint-corrupt",
                    detail,
                });
                Ok((
                    CheckpointLint {
                        version: 1,
                        delta_records: 0,
                        positions_seen: 0,
                    },
                    violations,
                ))
            }
            Err(CheckpointError::Io(e)) => Err(format!("{}: {e}", path.display())),
        }
    }
}
