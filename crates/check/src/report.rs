//! §4.2.3 conservation laws on analyzer output.
//!
//! The event-based approximation is only *conservative* if the
//! approximated times preserve the measured partial order of dependent
//! synchronization events. These rules verify exactly that on an
//! approximated trace, independently of the analyzer that produced it.

use crate::Violation;
use ppa_trace::{Event, EventKind, LockId, ProcessorId, SemId, SyncTag, SyncVarId, TaskId, Time};
use std::collections::{HashMap, VecDeque};

/// Per-processor report state.
#[derive(Debug, Clone, Default)]
struct ProcReport {
    last_ta: Option<Time>,
    /// The open `awaitB` (var, tag, ta) awaiting its `awaitE`.
    pending_await: Option<(SyncVarId, SyncTag, Time)>,
}

/// One barrier's open episode: enters accumulate, then exits drain; the
/// episode closes when exits match enters.
#[derive(Debug, Clone, Copy, Default)]
struct BarrierEpisode {
    enters: usize,
    exits: usize,
    max_enter_ta: Time,
}

/// Streaming checker for the §4.2.3 conservation laws on an
/// approximated trace.
///
/// Feed events in stream order with [`push`](Self::push), then collect
/// the verdict with [`finish`](Self::finish). Rules checked:
///
/// | rule | invariant (§4.2.3) |
/// |---|---|
/// | `report-ta-monotone` | approximated times never decrease on one processor |
/// | `await-begin-before-end` | `ta(awaitE) ≥ ta(awaitB)` for each await |
/// | `await-order-preserved` | `ta(awaitE) ≥ ta(advance)` for the dependent advance — the measured partial order survives approximation (both Figure 2 branches add a non-negative `s_nowait`/`s_wait`) |
/// | `barrier-exit-order` | every barrier exit's ta is at least the episode's latest enter ta |
/// | `barrier-protocol` | enters and exits alternate in whole episodes (no exit without an enter, no enter inside an exit drain) |
/// | `episode-order-preserved` | a lock acquire, semaphore P, task begin, or join-return never precedes its enabling release, V, spawn, or child end in approximated time — the blocked rule's `s_wait`/chain branches are both non-negative |
/// | `episode-protocol` | the lock, semaphore, and fork/join state machines stay well-formed in the report, and no lock or task is left open at the end |
///
/// Pre-advanced (negative) tags have no `advance` by construction and
/// are exempt from `await-order-preserved`. An *origin* lock acquire
/// (no prior release of that lock) has no enabling event and is exempt
/// from `episode-order-preserved`.
#[derive(Debug, Default)]
pub struct ReportChecker {
    violations: Vec<Violation>,
    procs: Vec<ProcReport>,
    advances: HashMap<(SyncVarId, SyncTag), Time>,
    barriers: HashMap<ppa_trace::BarrierId, BarrierEpisode>,
    locks: HashMap<LockId, LockReport>,
    /// Unconsumed `semV` approximated times, consumed FIFO by `semP`.
    sems: HashMap<SemId, VecDeque<Time>>,
    tasks: HashMap<TaskId, TaskReport>,
}

/// One lock's report-side state.
#[derive(Debug, Clone, Copy, Default)]
struct LockReport {
    holder: Option<ProcessorId>,
    /// The latest release's ta, pending consumption by the next acquire.
    release_ta: Option<Time>,
}

/// One open fork/join episode's report-side state.
#[derive(Debug, Clone, Copy)]
struct TaskReport {
    spawn_ta: Time,
    began: bool,
    end_ta: Option<Time>,
}

impl ReportChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        ReportChecker::default()
    }

    /// Feeds the next approximated event in stream order.
    pub fn push(&mut self, e: &Event) {
        let pi = e.proc.index();
        if pi >= self.procs.len() {
            self.procs.resize_with(pi + 1, ProcReport::default);
        }
        let p = &mut self.procs[pi];
        if let Some(last) = p.last_ta {
            if e.time < last {
                self.violations.push(Violation::new(
                    "report-ta-monotone",
                    format!("event {e} moves {} backwards from {last}", e.proc),
                ));
            }
        }
        p.last_ta = Some(e.time);

        match e.kind {
            EventKind::Advance { var, tag } => {
                self.advances.insert((var, tag), e.time);
            }
            EventKind::AwaitBegin { var, tag } => {
                p.pending_await = Some((var, tag, e.time));
            }
            EventKind::AwaitEnd { var, tag } => {
                if let Some((v, t, begin_ta)) = p.pending_await.take() {
                    if (v, t) == (var, tag) && e.time < begin_ta {
                        self.violations.push(Violation::new(
                            "await-begin-before-end",
                            format!("event {e} ends before its awaitB at {begin_ta}"),
                        ));
                    }
                }
                if !tag.is_pre_advanced() {
                    match self.advances.get(&(var, tag)) {
                        Some(&adv_ta) if e.time >= adv_ta => {}
                        Some(&adv_ta) => {
                            self.violations.push(Violation::new(
                                "await-order-preserved",
                                format!(
                                    "event {e} precedes its advance({var},{tag}) at {adv_ta}; \
                                     the measured dependence order was lost"
                                ),
                            ));
                        }
                        None => {
                            self.violations.push(Violation::new(
                                "await-order-preserved",
                                format!(
                                    "event {e} has no advance({var},{tag}) earlier in the report"
                                ),
                            ));
                        }
                    }
                }
            }
            EventKind::BarrierEnter { barrier } => {
                let ep = self.barriers.entry(barrier).or_default();
                if ep.exits > 0 {
                    self.violations.push(Violation::new(
                        "barrier-protocol",
                        format!("event {e} enters {barrier} while its episode is still exiting"),
                    ));
                }
                ep.enters += 1;
                ep.max_enter_ta = ep.max_enter_ta.max(e.time);
            }
            EventKind::BarrierExit { barrier } => {
                // Deliberately no `or_default()`: an exit without an open
                // episode is its own violation, not a new (phantom) episode
                // that `finish` would report a second time as left open.
                let Some(ep) = self.barriers.get_mut(&barrier) else {
                    self.violations.push(Violation::new(
                        "barrier-protocol",
                        format!("event {e} exits {barrier} with no open episode"),
                    ));
                    return;
                };
                if e.time < ep.max_enter_ta {
                    self.violations.push(Violation::new(
                        "barrier-exit-order",
                        format!(
                            "event {e} exits before the episode's latest enter at {}",
                            ep.max_enter_ta
                        ),
                    ));
                }
                ep.exits += 1;
                if ep.exits == ep.enters {
                    self.barriers.remove(&barrier);
                }
            }
            EventKind::LockAcquire { lock } => {
                let st = self.locks.entry(lock).or_default();
                if let Some(holder) = st.holder {
                    self.violations.push(Violation::new(
                        "episode-protocol",
                        format!("event {e} acquires {lock} already held by {holder}"),
                    ));
                }
                st.holder = Some(e.proc);
                if let Some(rel_ta) = st.release_ta.take() {
                    if e.time < rel_ta {
                        self.violations.push(Violation::new(
                            "episode-order-preserved",
                            format!(
                                "event {e} precedes the enabling release of {lock} at {rel_ta}"
                            ),
                        ));
                    }
                }
            }
            EventKind::LockRelease { lock } => {
                let st = self.locks.entry(lock).or_default();
                if st.holder != Some(e.proc) {
                    self.violations.push(Violation::new(
                        "episode-protocol",
                        format!("event {e} releases {lock}, which {} does not hold", e.proc),
                    ));
                }
                st.holder = None;
                st.release_ta = Some(e.time);
            }
            EventKind::SemAcquire { sem } => match self.sems.entry(sem).or_default().pop_front() {
                Some(v_ta) if e.time >= v_ta => {}
                Some(v_ta) => self.violations.push(Violation::new(
                    "episode-order-preserved",
                    format!("event {e} precedes its enabling semV of {sem} at {v_ta}"),
                )),
                None => self.violations.push(Violation::new(
                    "episode-protocol",
                    format!("event {e} overdraws {sem}: no unconsumed semV earlier in the report"),
                )),
            },
            EventKind::SemRelease { sem } => {
                self.sems.entry(sem).or_default().push_back(e.time);
            }
            EventKind::TaskFork { task } => match self.tasks.get_mut(&task) {
                None => {
                    self.tasks.insert(
                        task,
                        TaskReport {
                            spawn_ta: e.time,
                            began: false,
                            end_ta: None,
                        },
                    );
                }
                Some(t) if !t.began => {
                    t.began = true;
                    if e.time < t.spawn_ta {
                        self.violations.push(Violation::new(
                            "episode-order-preserved",
                            format!("event {e} begins {task} before its spawn at {}", t.spawn_ta),
                        ));
                    }
                }
                Some(_) => self.violations.push(Violation::new(
                    "episode-protocol",
                    format!("event {e} re-forks {task}, which already began"),
                )),
            },
            EventKind::TaskJoin { task } => match self.tasks.get_mut(&task) {
                None => self.violations.push(Violation::new(
                    "episode-protocol",
                    format!("event {e} joins {task}, which was never forked"),
                )),
                Some(t) if !t.began => self.violations.push(Violation::new(
                    "episode-protocol",
                    format!("event {e} joins {task} before the child began"),
                )),
                Some(t) => match t.end_ta {
                    None => t.end_ta = Some(e.time),
                    Some(end_ta) => {
                        if e.time < end_ta {
                            self.violations.push(Violation::new(
                                "episode-order-preserved",
                                format!(
                                    "event {e} join-returns before {task}'s child end at {end_ta}"
                                ),
                            ));
                        }
                        self.tasks.remove(&task);
                    }
                },
            },
            _ => {}
        }
    }

    /// Closes the stream and returns every violation found.
    pub fn finish(mut self) -> Vec<Violation> {
        let mut open: Vec<_> = self.barriers.iter().collect();
        open.sort_by_key(|(b, _)| **b);
        for (barrier, ep) in open {
            self.violations.push(Violation::new(
                "barrier-protocol",
                format!(
                    "{barrier} episode left open at end of report ({} enters, {} exits)",
                    ep.enters, ep.exits
                ),
            ));
        }
        let mut held: Vec<_> = self
            .locks
            .iter()
            .filter_map(|(l, st)| st.holder.map(|h| (*l, h)))
            .collect();
        held.sort_by_key(|(l, _)| *l);
        for (lock, holder) in held {
            self.violations.push(Violation::new(
                "episode-protocol",
                format!("{lock} is still held by {holder} at end of report"),
            ));
        }
        let mut open_tasks: Vec<_> = self.tasks.keys().copied().collect();
        open_tasks.sort();
        for task in open_tasks {
            self.violations.push(Violation::new(
                "episode-protocol",
                format!("{task} episode left open at end of report"),
            ));
        }
        self.violations
    }
}
