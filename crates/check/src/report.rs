//! §4.2.3 conservation laws on analyzer output.
//!
//! The event-based approximation is only *conservative* if the
//! approximated times preserve the measured partial order of dependent
//! synchronization events. These rules verify exactly that on an
//! approximated trace, independently of the analyzer that produced it.

use crate::Violation;
use ppa_trace::{Event, EventKind, SyncTag, SyncVarId, Time};
use std::collections::HashMap;

/// Per-processor report state.
#[derive(Debug, Clone, Default)]
struct ProcReport {
    last_ta: Option<Time>,
    /// The open `awaitB` (var, tag, ta) awaiting its `awaitE`.
    pending_await: Option<(SyncVarId, SyncTag, Time)>,
}

/// One barrier's open episode: enters accumulate, then exits drain; the
/// episode closes when exits match enters.
#[derive(Debug, Clone, Copy, Default)]
struct BarrierEpisode {
    enters: usize,
    exits: usize,
    max_enter_ta: Time,
}

/// Streaming checker for the §4.2.3 conservation laws on an
/// approximated trace.
///
/// Feed events in stream order with [`push`](Self::push), then collect
/// the verdict with [`finish`](Self::finish). Rules checked:
///
/// | rule | invariant (§4.2.3) |
/// |---|---|
/// | `report-ta-monotone` | approximated times never decrease on one processor |
/// | `await-begin-before-end` | `ta(awaitE) ≥ ta(awaitB)` for each await |
/// | `await-order-preserved` | `ta(awaitE) ≥ ta(advance)` for the dependent advance — the measured partial order survives approximation (both Figure 2 branches add a non-negative `s_nowait`/`s_wait`) |
/// | `barrier-exit-order` | every barrier exit's ta is at least the episode's latest enter ta |
/// | `barrier-protocol` | enters and exits alternate in whole episodes (no exit without an enter, no enter inside an exit drain) |
///
/// Pre-advanced (negative) tags have no `advance` by construction and
/// are exempt from `await-order-preserved`.
#[derive(Debug, Default)]
pub struct ReportChecker {
    violations: Vec<Violation>,
    procs: Vec<ProcReport>,
    advances: HashMap<(SyncVarId, SyncTag), Time>,
    barriers: HashMap<ppa_trace::BarrierId, BarrierEpisode>,
}

impl ReportChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        ReportChecker::default()
    }

    /// Feeds the next approximated event in stream order.
    pub fn push(&mut self, e: &Event) {
        let pi = e.proc.index();
        if pi >= self.procs.len() {
            self.procs.resize_with(pi + 1, ProcReport::default);
        }
        let p = &mut self.procs[pi];
        if let Some(last) = p.last_ta {
            if e.time < last {
                self.violations.push(Violation::new(
                    "report-ta-monotone",
                    format!("event {e} moves {} backwards from {last}", e.proc),
                ));
            }
        }
        p.last_ta = Some(e.time);

        match e.kind {
            EventKind::Advance { var, tag } => {
                self.advances.insert((var, tag), e.time);
            }
            EventKind::AwaitBegin { var, tag } => {
                p.pending_await = Some((var, tag, e.time));
            }
            EventKind::AwaitEnd { var, tag } => {
                if let Some((v, t, begin_ta)) = p.pending_await.take() {
                    if (v, t) == (var, tag) && e.time < begin_ta {
                        self.violations.push(Violation::new(
                            "await-begin-before-end",
                            format!("event {e} ends before its awaitB at {begin_ta}"),
                        ));
                    }
                }
                if !tag.is_pre_advanced() {
                    match self.advances.get(&(var, tag)) {
                        Some(&adv_ta) if e.time >= adv_ta => {}
                        Some(&adv_ta) => {
                            self.violations.push(Violation::new(
                                "await-order-preserved",
                                format!(
                                    "event {e} precedes its advance({var},{tag}) at {adv_ta}; \
                                     the measured dependence order was lost"
                                ),
                            ));
                        }
                        None => {
                            self.violations.push(Violation::new(
                                "await-order-preserved",
                                format!(
                                    "event {e} has no advance({var},{tag}) earlier in the report"
                                ),
                            ));
                        }
                    }
                }
            }
            EventKind::BarrierEnter { barrier } => {
                let ep = self.barriers.entry(barrier).or_default();
                if ep.exits > 0 {
                    self.violations.push(Violation::new(
                        "barrier-protocol",
                        format!("event {e} enters {barrier} while its episode is still exiting"),
                    ));
                }
                ep.enters += 1;
                ep.max_enter_ta = ep.max_enter_ta.max(e.time);
            }
            EventKind::BarrierExit { barrier } => {
                // Deliberately no `or_default()`: an exit without an open
                // episode is its own violation, not a new (phantom) episode
                // that `finish` would report a second time as left open.
                let Some(ep) = self.barriers.get_mut(&barrier) else {
                    self.violations.push(Violation::new(
                        "barrier-protocol",
                        format!("event {e} exits {barrier} with no open episode"),
                    ));
                    return;
                };
                if e.time < ep.max_enter_ta {
                    self.violations.push(Violation::new(
                        "barrier-exit-order",
                        format!(
                            "event {e} exits before the episode's latest enter at {}",
                            ep.max_enter_ta
                        ),
                    ));
                }
                ep.exits += 1;
                if ep.exits == ep.enters {
                    self.barriers.remove(&barrier);
                }
            }
            _ => {}
        }
    }

    /// Closes the stream and returns every violation found.
    pub fn finish(mut self) -> Vec<Violation> {
        let mut open: Vec<_> = self.barriers.iter().collect();
        open.sort_by_key(|(b, _)| **b);
        for (barrier, ep) in open {
            self.violations.push(Violation::new(
                "barrier-protocol",
                format!(
                    "{barrier} episode left open at end of report ({} enters, {} exits)",
                    ep.enters, ep.exits
                ),
            ));
        }
        self.violations
    }
}
