//! Clamp accounting cross-check against an exported metrics snapshot.

use crate::Violation;

/// Checks a metrics snapshot (Prometheus text or the JSON exporter
/// format, auto-detected) for unaccounted-for approximation clamps.
///
/// A nonzero `ppa_core_clamped_approx_total` means the §4.2.3 value
/// rules hit at least one event whose instrumentation overhead exceeded
/// the measured inter-event delta — the correction was clamped, so the
/// report is not a pure application of the perturbation model there.
/// Rule: `unaccounted-clamp`.
///
/// Returns an `Err` with a description when the snapshot cannot be
/// parsed at all.
pub fn check_metrics(snapshot: &str) -> Result<Vec<Violation>, String> {
    let clamped = if snapshot.trim_start().starts_with('{') {
        clamped_from_json(snapshot)?
    } else {
        clamped_from_prom(snapshot)?
    };
    let mut violations = Vec::new();
    if clamped > 0 {
        violations.push(Violation::new(
            "unaccounted-clamp",
            format!(
                "ppa_core_clamped_approx_total = {clamped}: the analyzer clamped \
                 {clamped} approximated time(s); overheads exceed the measured \
                 inter-event spacing somewhere, so the report is not fully \
                 explained by the §4.2.3 model"
            ),
        ));
    }
    Ok(violations)
}

const CLAMP_METRIC: &str = "ppa_core_clamped_approx_total";

fn clamped_from_json(snapshot: &str) -> Result<u64, String> {
    let doc: serde_json::Value =
        serde_json::from_str(snapshot).map_err(|e| format!("metrics JSON: {e}"))?;
    let metrics = doc["metrics"]
        .as_array()
        .ok_or_else(|| "metrics JSON: no \"metrics\" array".to_string())?;
    Ok(metrics
        .iter()
        .filter(|m| m["name"].as_str() == Some(CLAMP_METRIC))
        .filter_map(|m| m["value"].as_u64())
        .sum())
}

fn clamped_from_prom(snapshot: &str) -> Result<u64, String> {
    let mut total = 0u64;
    let mut sample_lines = 0usize;
    for line in snapshot.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        sample_lines += 1;
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            continue;
        };
        let name = name_part.split('{').next().unwrap_or(name_part);
        if name == CLAMP_METRIC {
            total += value_part
                .parse::<u64>()
                .map_err(|e| format!("metrics prom: bad value for {CLAMP_METRIC}: {e}"))?;
        }
    }
    if sample_lines == 0 {
        return Err("metrics prom: no sample lines".to_string());
    }
    Ok(total)
}
