//! Differential oracle: three independent implementations of the §4.2.3
//! analysis must agree on every input.
//!
//! The workspace deliberately keeps three paths to the same answer — the
//! streaming [`event_based`], the batch worklist
//! [`event_based_reference`] (the executable spec), and the parallel
//! [`event_based_sharded`] — so they can act as mutual oracles. This
//! module generates DOACROSS programs (the Livermore loops 3/4/17
//! experiment graphs plus synthesized random workloads), simulates their
//! instrumented measurement, runs all three analyses, and diffs the
//! reports field by field. Any disagreement is shrunk with a
//! deterministic delta-debugging pass to a minimal reproducing measured
//! trace, which can be written to disk for offline triage.

use crate::{ReportChecker, Violation};
use ppa_core::{
    event_based, event_based_reference, event_based_sharded, expand_events, EventBasedResult,
};
use ppa_program::synth::{synthesize, SynthConfig};
use ppa_program::InstrumentationPlan;
use ppa_sim::{
    run_measured, scenario_trace, ScenarioConfig, ScenarioFamily, SchedulePolicy, SimConfig,
};
use ppa_slice::{slice_stream, suppress_events, SliceOptions, SliceProbes, SliceSpec};
use ppa_trace::{
    read_trace, read_trace_parallel, write_trace, ClockRate, Event, OverheadSpec, Trace,
    TraceFormat, TraceKind,
};
use std::path::{Path, PathBuf};

/// Configuration for one differential-oracle run.
#[derive(Debug, Clone)]
pub struct DifferentialConfig {
    /// Base seed; program `i` derives its workload and jitter from
    /// `seed + i`, so a run is fully reproducible from this one number.
    pub seed: u64,
    /// How many programs to generate and cross-check.
    pub programs: usize,
    /// How many lock/semaphore/fork-join episode scenarios to generate
    /// and cross-check (cycled round-robin over the three families).
    pub scenarios: usize,
    /// Worker count handed to the sharded path.
    pub workers: usize,
    /// Decode worker threads for the binary-codec round-trip leg
    /// (0 skips the pipelined decode and checks only the serial one).
    pub decode_workers: usize,
}

impl Default for DifferentialConfig {
    fn default() -> Self {
        DifferentialConfig {
            seed: 0,
            programs: 50,
            scenarios: 50,
            workers: 4,
            decode_workers: 4,
        }
    }
}

/// One disagreement between the three analysis paths.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which generated program disagreed (e.g. `lfk03` or `synth-17`).
    pub program: String,
    /// The seed that reproduces it.
    pub seed: u64,
    /// First field-level difference found between two paths.
    pub detail: String,
    /// Size (events) of the shrunken reproducing measured trace.
    pub minimal_events: usize,
    /// Where the reproducing trace was written, when an output directory
    /// was given.
    pub trace_path: Option<PathBuf>,
}

/// The outcome of a differential-oracle run.
#[derive(Debug, Clone, Default)]
pub struct DifferentialReport {
    /// Programs generated and cross-checked.
    pub programs: usize,
    /// Episode scenarios (spinlock, semaphore, fork/join) cross-checked.
    pub scenarios: usize,
    /// Total measured events analyzed across all programs.
    pub events: usize,
    /// Every disagreement found, shrunk.
    pub mismatches: Vec<Mismatch>,
}

impl DifferentialReport {
    /// The mismatches as check violations (rule `differential-mismatch`).
    pub fn violations(&self) -> Vec<Violation> {
        self.mismatches
            .iter()
            .map(|m| {
                Violation::new(
                    "differential-mismatch",
                    format!(
                        "{} (seed {}): {}; minimal repro has {} event(s){}",
                        m.program,
                        m.seed,
                        m.detail,
                        m.minimal_events,
                        m.trace_path
                            .as_deref()
                            .map(|p| format!(", written to {}", p.display()))
                            .unwrap_or_default()
                    ),
                )
            })
            .collect()
    }
}

/// The simulator configuration the oracle measures programs under:
/// 8 processors, jittered statement costs, static-cyclic dispatch — the
/// same shape as the repository's exactness property tests, so any
/// disagreement here is a real analyzer divergence, not a workload
/// artifact.
fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        processors: 8,
        clock: ClockRate::GHZ_1,
        overheads: OverheadSpec::alliant_default(),
        schedule: SchedulePolicy::StaticCyclic,
        dispatch_cycles: 50,
        jitter: None,
    }
    .with_jitter(seed, 250)
}

/// Runs the oracle: generates `cfg.programs` DOACROSS workloads, diffs
/// the three analysis paths on each, and shrinks any mismatch. Minimal
/// reproducing traces are written to `out_dir` as JSONL when given.
///
/// Errors only on environmental failure (simulation or I/O); analysis
/// disagreement is reported through [`DifferentialReport::mismatches`].
pub fn run_differential(
    cfg: &DifferentialConfig,
    out_dir: Option<&Path>,
) -> Result<DifferentialReport, String> {
    let mut report = DifferentialReport::default();
    for i in 0..cfg.programs {
        let seed = cfg.seed.wrapping_add(i as u64);
        // The three paper DOACROSS kernels anchor the set; everything
        // after them is a synthesized random workload (which also mixes
        // serial, sequential-loop, and DOALL segments around its
        // DOACROSS loops).
        let (label, program) = match i {
            0..=2 => {
                let id = [3u8, 4, 17][i];
                (
                    format!("lfk{id:02}"),
                    ppa_lfk::doacross_graph(id)
                        .ok_or_else(|| format!("lfk{id:02}: no DOACROSS graph"))?,
                )
            }
            _ => (
                format!("synth-{i}"),
                synthesize(seed, &SynthConfig::default()),
            ),
        };
        let sim = sim_config(seed);
        let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &sim)
            .map_err(|e| format!("{label}: simulation failed: {e:?}"))?;
        report.programs += 1;
        report.events += measured.trace.len();

        if let Some(detail) = diff_codec(&measured.trace, cfg.decode_workers) {
            report.mismatches.push(Mismatch {
                program: label.clone(),
                seed,
                detail,
                minimal_events: measured.trace.len(),
                trace_path: None,
            });
        }

        if let Some(detail) = diff_slice(&measured.trace) {
            report.mismatches.push(Mismatch {
                program: label.clone(),
                seed,
                detail,
                minimal_events: measured.trace.len(),
                trace_path: None,
            });
        }

        if let Some(detail) = diff_suppression(&measured.trace, &sim.overheads) {
            report.mismatches.push(Mismatch {
                program: label.clone(),
                seed,
                detail,
                minimal_events: measured.trace.len(),
                trace_path: None,
            });
        }

        if let Some(detail) = diff_paths(&measured.trace, &sim.overheads, cfg.workers) {
            let minimal = shrink(measured.trace.events(), &sim.overheads, cfg.workers);
            let trace_path = match out_dir {
                Some(dir) => {
                    let path = dir.join(format!("mismatch-{label}.jsonl"));
                    let minimal_trace = Trace::from_events(TraceKind::Measured, minimal.clone());
                    let file = std::fs::File::create(&path)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    write_trace(
                        &minimal_trace,
                        std::io::BufWriter::new(file),
                        TraceFormat::Jsonl,
                    )
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                    Some(path)
                }
                None => None,
            };
            report.mismatches.push(Mismatch {
                program: label,
                seed,
                detail,
                minimal_events: minimal.len(),
                trace_path,
            });
        }
    }

    // Episode scenarios: seeded spinlock/semaphore/fork-join workloads,
    // round-robin over the families. On top of the usual legs, every
    // scenario's approximated report must pass the §4.2.3 conservation
    // laws (`ReportChecker`) — the episode blocked rule is new enough to
    // earn its own acceptance check here.
    let oh = OverheadSpec::alliant_default();
    for i in 0..cfg.scenarios {
        let seed = cfg.seed.wrapping_add(i as u64);
        let family = ScenarioFamily::ALL[i % ScenarioFamily::ALL.len()];
        let label = format!("{family}-{i}");
        let trace = scenario_trace(seed, &ScenarioConfig::small(family));
        report.scenarios += 1;
        report.events += trace.len();

        let legs = [
            diff_codec(&trace, cfg.decode_workers),
            diff_suppression(&trace, &oh),
            diff_conservation(&trace, &oh),
        ];
        for detail in legs.into_iter().flatten() {
            report.mismatches.push(Mismatch {
                program: label.clone(),
                seed,
                detail,
                minimal_events: trace.len(),
                trace_path: None,
            });
        }

        if let Some(detail) = diff_paths(&trace, &oh, cfg.workers) {
            let minimal = shrink(trace.events(), &oh, cfg.workers);
            report.mismatches.push(Mismatch {
                program: label,
                seed,
                detail,
                minimal_events: minimal.len(),
                trace_path: None,
            });
        }
    }
    Ok(report)
}

/// Conservation leg for episode scenarios: the streaming analysis must
/// accept the scenario, and its approximated report must satisfy every
/// [`ReportChecker`] law — in particular `episode-order-preserved`
/// (no acquire, P, begin, or join-return precedes its enabling event
/// in approximated time) and `episode-protocol`.
fn diff_conservation(trace: &Trace, oh: &OverheadSpec) -> Option<String> {
    let result = match event_based(trace, oh) {
        Ok(r) => r,
        Err(e) => return Some(format!("conservation: analysis rejected the scenario: {e}")),
    };
    let mut checker = ReportChecker::new();
    for e in result.trace.iter() {
        checker.push(e);
    }
    let violations = checker.finish();
    violations.first().map(|v| {
        format!(
            "conservation: {} violation(s), first: {v}",
            violations.len()
        )
    })
}

/// Binary-codec round-trip leg: the measured trace must survive a
/// binary encode and come back event-identical through both the serial
/// decoder and (when `decode_workers > 0`) the pipelined one. The
/// analysis oracles only ever see in-memory traces, so without this leg
/// a decode divergence would escape the differential run entirely.
fn diff_codec(trace: &Trace, decode_workers: usize) -> Option<String> {
    let mut bytes = Vec::new();
    if let Err(e) = write_trace(trace, &mut bytes, TraceFormat::Binary) {
        return Some(format!("codec round-trip: binary encode failed: {e}"));
    }
    let legs: &[(&str, Result<Trace, _>)] = &[
        ("serial decode", read_trace(bytes.as_slice())),
        (
            "pipelined decode",
            if decode_workers > 0 {
                read_trace_parallel(bytes.as_slice(), decode_workers)
            } else {
                read_trace(bytes.as_slice())
            },
        ),
    ];
    for (leg, decoded) in legs {
        let decoded = match decoded {
            Ok(t) => t,
            Err(e) => return Some(format!("codec round-trip: {leg} failed: {e}")),
        };
        if decoded.len() != trace.len() {
            return Some(format!(
                "codec round-trip: {leg} returned {} event(s), encoded {}",
                decoded.len(),
                trace.len()
            ));
        }
        if let Some((i, (a, b))) = decoded
            .iter()
            .zip(trace.iter())
            .enumerate()
            .find(|(_, (a, b))| a != b)
        {
            return Some(format!("codec round-trip: {leg} event[{i}]: {a} vs {b}"));
        }
    }
    None
}

/// Runs the three paths on one measured trace; `Some(description)` of
/// the first difference if they disagree, `None` when they agree.
/// Slice-vs-full leg: the slice engine (binary container, skip index
/// engaged) must return exactly the events a full decode followed by a
/// naive predicate filter returns, with exact accounting. The window
/// spans the middle half of the trace so the skip index has blocks to
/// discard on both sides.
fn diff_slice(trace: &Trace) -> Option<String> {
    let (first, last) = match (trace.events().first(), trace.events().last()) {
        (Some(f), Some(l)) => (f.time.as_nanos(), l.time.as_nanos()),
        _ => return None,
    };
    let span = last - first;
    let (lo, hi) = (first + span / 4, first + span * 3 / 4);
    if hi <= lo {
        return None; // degenerate trace, nothing to slice
    }
    let spec = match SliceSpec::parse(&format!("window={lo}..{hi} procs=0,2,4,6")) {
        Ok(s) => s,
        Err(e) => return Some(format!("slice-vs-full: spec failed to parse: {e}")),
    };

    let mut bytes = Vec::new();
    if let Err(e) = write_trace(trace, &mut bytes, TraceFormat::Binary) {
        return Some(format!("slice-vs-full: binary encode failed: {e}"));
    }
    let mut reader = match ppa_trace::codec::AnyTraceReader::open(bytes.as_slice()) {
        Ok(r) => r,
        Err(e) => return Some(format!("slice-vs-full: open failed: {e}")),
    };
    let options = SliceOptions {
        spec: spec.clone(),
        suppress: false,
        use_skip_index: true,
    };
    let mut sliced = Vec::new();
    let stats = match slice_stream(&mut reader, &options, &SliceProbes::noop(), |e| {
        sliced.push(*e);
        Ok(())
    }) {
        Ok(stats) => stats,
        Err(e) => return Some(format!("slice-vs-full: slice failed: {e}")),
    };
    if !stats.conservation_holds() {
        return Some(format!(
            "slice-vs-full: accounting broken: {} of {} event(s) accounted",
            stats.accounted(),
            stats.expected
        ));
    }

    let full: Vec<Event> = trace.iter().filter(|e| spec.matches(e)).copied().collect();
    if sliced.len() != full.len() {
        return Some(format!(
            "slice-vs-full: engine returned {} event(s), naive filter {}",
            sliced.len(),
            full.len()
        ));
    }
    sliced
        .iter()
        .zip(&full)
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| format!("slice-vs-full: event[{i}]: engine {a} vs filter {b}"))
}

/// Suppression leg: collapsing repeated patterns must be lossless —
/// expanding the suppressed stream reproduces the measured events
/// exactly, and analyzing the suppressed trace (the analyzer expands
/// records itself) yields a report identical to the unsuppressed one.
fn diff_suppression(trace: &Trace, oh: &OverheadSpec) -> Option<String> {
    let suppressed = suppress_events(trace.events());
    match expand_events(&suppressed) {
        Ok(expanded) => {
            if expanded != trace.events() {
                let i = expanded
                    .iter()
                    .zip(trace.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(expanded.len().min(trace.len()));
                return Some(format!(
                    "suppression round-trip: event[{i}]: expanded {:?} vs measured {:?}",
                    expanded.get(i),
                    trace.events().get(i)
                ));
            }
        }
        Err(e) => return Some(format!("suppression round-trip: expansion failed: {e}")),
    }

    let suppressed_trace = Trace::from_events(TraceKind::Measured, suppressed);
    let direct = event_based(trace, oh);
    let via_suppressed = event_based(&suppressed_trace, oh);
    match (direct, via_suppressed) {
        (Ok(a), Ok(b)) => diff_results("direct", &a, "suppressed", &b)
            .map(|d| format!("suppressed-analysis: {d}")),
        (Err(_), Err(_)) => None,
        (a, b) => Some(format!(
            "suppressed-analysis accept/reject split: direct {}, suppressed {}",
            verdict(&a),
            verdict(&b)
        )),
    }
}

fn diff_paths(trace: &Trace, oh: &OverheadSpec, workers: usize) -> Option<String> {
    let streaming = event_based(trace, oh);
    let reference = event_based_reference(trace, oh);
    let sharded = event_based_sharded(trace, oh, workers);
    match (streaming, reference, sharded) {
        (Ok(s), Ok(r), Ok(h)) => diff_results("streaming", &s, "reference", &r)
            .or_else(|| diff_results("sharded", &h, "reference", &r)),
        // All three failing is agreement: they reject the same input.
        // The *choice* of error is pinned by unit tests elsewhere; the
        // oracle only demands the accept/reject verdict match.
        (Err(_), Err(_), Err(_)) => None,
        (s, r, h) => Some(format!(
            "accept/reject split: streaming {}, reference {}, sharded {}",
            verdict(&s),
            verdict(&r),
            verdict(&h)
        )),
    }
}

fn verdict(r: &Result<EventBasedResult, ppa_core::AnalysisError>) -> &'static str {
    match r {
        Ok(_) => "accepted",
        Err(_) => "rejected",
    }
}

/// First field-level difference between two reports, if any.
fn diff_results(an: &str, a: &EventBasedResult, bn: &str, b: &EventBasedResult) -> Option<String> {
    if a == b {
        return None;
    }
    if a.trace.len() != b.trace.len() {
        return Some(format!(
            "trace length: {an} {} vs {bn} {}",
            a.trace.len(),
            b.trace.len()
        ));
    }
    for (i, (ea, eb)) in a.trace.iter().zip(b.trace.iter()).enumerate() {
        if ea != eb {
            return Some(format!("trace[{i}]: {an} {ea} vs {bn} {eb}"));
        }
    }
    if a.awaits != b.awaits {
        let i = a
            .awaits
            .iter()
            .zip(&b.awaits)
            .position(|(x, y)| x != y)
            .unwrap_or(a.awaits.len().min(b.awaits.len()));
        return Some(format!(
            "awaits[{i}]: {an} {:?} vs {bn} {:?}",
            a.awaits.get(i),
            b.awaits.get(i)
        ));
    }
    if a.barriers != b.barriers {
        let i = a
            .barriers
            .iter()
            .zip(&b.barriers)
            .position(|(x, y)| x != y)
            .unwrap_or(a.barriers.len().min(b.barriers.len()));
        return Some(format!(
            "barriers[{i}]: {an} {:?} vs {bn} {:?}",
            a.barriers.get(i),
            b.barriers.get(i)
        ));
    }
    let i = a
        .episodes
        .iter()
        .zip(&b.episodes)
        .position(|(x, y)| x != y)
        .unwrap_or(a.episodes.len().min(b.episodes.len()));
    Some(format!(
        "episodes[{i}]: {an} {:?} vs {bn} {:?}",
        a.episodes.get(i),
        b.episodes.get(i)
    ))
}

/// Deterministic delta-debugging (ddmin) shrink: the smallest event
/// subset (in measured order) on which the three paths still disagree.
///
/// Subsets keep their original timestamps and sequence numbers, so the
/// reduced trace stays totally ordered; dropping events may turn the
/// input invalid, but a unanimous rejection counts as agreement, so the
/// shrinker only keeps subsets that still *split* the implementations.
fn shrink(events: &[Event], oh: &OverheadSpec, workers: usize) -> Vec<Event> {
    let still_mismatches = |subset: &[Event]| {
        let t = Trace::from_events(TraceKind::Measured, subset.to_vec());
        diff_paths(&t, oh, workers).is_some()
    };
    let mut current: Vec<Event> = events.to_vec();
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<Event> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            if !candidate.is_empty() && still_mismatches(&candidate) {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_scenario() -> impl Strategy<Value = ScenarioConfig> {
        (
            prop_oneof![
                Just(ScenarioFamily::Spinlock),
                Just(ScenarioFamily::Semaphore),
                Just(ScenarioFamily::ForkJoin),
            ],
            2usize..6,
            1usize..8,
            1usize..4,
            0u64..3_000,
        )
            .prop_map(|(family, processors, rounds, objects, oh)| ScenarioConfig {
                family,
                processors,
                rounds,
                objects,
                overheads: OverheadSpec::uniform(ppa_trace::Span::from_nanos(oh)),
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every generated lock/semaphore/fork-join scenario must (a)
        /// agree across the streaming, reference, and sharded analyses —
        /// any split is ddmin-shrunk before failing, so the proptest
        /// report carries a minimal repro size — and (b) produce a
        /// report accepted by every conservation law, plus survive the
        /// codec and suppression round-trip legs.
        #[test]
        fn episode_scenarios_agree_and_conserve(
            seed in proptest::prelude::any::<u64>(),
            cfg in arb_scenario(),
            workers in 1usize..5,
        ) {
            let trace = scenario_trace(seed, &cfg);
            let oh = cfg.overheads;
            if let Some(detail) = diff_paths(&trace, &oh, workers) {
                let minimal = shrink(trace.events(), &oh, workers);
                prop_assert!(
                    false,
                    "paths disagree: {detail}; ddmin minimal repro: {} of {} event(s)",
                    minimal.len(),
                    trace.len()
                );
            }
            prop_assert_eq!(diff_conservation(&trace, &oh), None);
            prop_assert_eq!(diff_codec(&trace, workers), None);
            prop_assert_eq!(diff_suppression(&trace, &oh), None);
        }
    }
}
