//! Structural trace lint: the invariants every well-formed event trace
//! (measured or actual) must satisfy before analysis is meaningful.

use crate::Violation;
use ppa_trace::{Event, EventKind, LockId, ProcessorId, SemId, SyncTag, SyncVarId, TaskId, Time};
use std::collections::{BTreeMap, HashSet};

/// Per-processor lint state.
#[derive(Debug, Clone, Default)]
struct ProcLint {
    last_time: Option<Time>,
    /// The open `awaitB` (var, tag, seq) awaiting its `awaitE`.
    pending_await: Option<(SyncVarId, SyncTag, u64)>,
}

/// Streaming structural linter for measured/actual traces.
///
/// Feed events in stream order with [`push`](Self::push), then collect
/// the verdict with [`finish`](Self::finish). Rules checked:
///
/// | rule | invariant |
/// |---|---|
/// | `trace-total-order` | `order_key` (time, seq, proc) never decreases |
/// | `proc-time-monotone` | per-processor timestamps never decrease |
/// | `seq-contiguity` | sequence numbers form one contiguous run, no holes or duplicates |
/// | `await-pairing` | every `awaitE` closes a matching open `awaitB` (same var and tag, same processor), and no `awaitB` nests |
/// | `await-advance-order` | every `awaitE` has a matching `advance` (same var and tag) somewhere in the trace; pre-advanced (negative) tags are exempt |
/// | `lock-pairing` | `lockA` never acquires a held lock, `lockR` only releases from the holder, and no lock is held at end of trace |
/// | `sem-nonnegative` | in stream order, `semP` never overdraws the semaphore (every P is preceded by an unconsumed V — the measured ordering convention records V before the waiter resumes) |
/// | `task-pairing` | each task id runs spawn (`taskF`), begin (`taskF`), end (`taskJ`), join-return (`taskJ`) in order, join-return on the spawning processor and end on the child's, and every spawned task is joined |
///
/// `await-advance-order` deliberately checks *existence*, not stream
/// position: in a measured trace the `advance` record is stamped after
/// the operation's own instrumentation overhead, so a dependent `awaitE`
/// on another processor routinely precedes it in the stream. The
/// stronger ordering claim — the await completes no earlier than its
/// advance — is a §4.2.3 conservation law that only holds for
/// approximated reports, where [`ReportChecker`](crate::ReportChecker)
/// enforces it on the approximated times.
///
/// The linter records every violation it sees (no cap); callers
/// presenting to humans typically print the first few plus a count.
///
/// A *slice* of a trace (the output of `ppa slice`, see QUERIES.md) is
/// a projection: removing events punches holes in the sequence numbers
/// and cuts await pairs and sync episodes apart, by design. The
/// [`for_slice`](Self::for_slice) mode therefore keeps only the rules a
/// projection preserves — `trace-total-order` and `proc-time-monotone`
/// — and adds `repeat-record`, the structural validity of suppression
/// records (`len >= 1`, `count >= 1`). Outside slice mode a repeat
/// record is itself a violation: suppressed traces must be expanded (or
/// checked as slices) before the full rule set is meaningful.
#[derive(Debug, Default)]
pub struct TraceLinter {
    violations: Vec<Violation>,
    /// Slice mode: lint a projection, not a complete trace.
    slice: bool,
    last_key: Option<(Time, u64, ppa_trace::ProcessorId)>,
    procs: Vec<ProcLint>,
    seqs: Vec<u64>,
    advanced: HashSet<(SyncVarId, SyncTag)>,
    /// Completed awaits whose advance had not appeared yet; re-checked
    /// against the full advance set at [`finish`](Self::finish).
    unmatched_awaits: Vec<(SyncVarId, SyncTag, u64)>,
    /// Held locks: holder and the acquiring event's seq.
    locks: BTreeMap<LockId, (ProcessorId, u64)>,
    /// Unconsumed `semV` tokens per semaphore.
    sems: BTreeMap<SemId, u64>,
    /// Open fork/join episodes, keyed by task id.
    tasks: BTreeMap<TaskId, TaskLint>,
}

/// The spawn → begin → end → join-return progression of one open task.
#[derive(Debug, Clone)]
struct TaskLint {
    spawn_proc: ProcessorId,
    spawn_seq: u64,
    begin_proc: Option<ProcessorId>,
    end_proc: Option<ProcessorId>,
}

impl TraceLinter {
    /// Creates an empty linter.
    pub fn new() -> Self {
        TraceLinter::default()
    }

    /// Creates a linter for sliced (projected, possibly suppressed)
    /// traces: order rules stay, completeness rules are waived, and
    /// repeat records are validated instead of rejected.
    pub fn for_slice() -> Self {
        TraceLinter {
            slice: true,
            ..TraceLinter::default()
        }
    }

    /// Feeds the next event in stream order.
    pub fn push(&mut self, e: &Event) {
        let key = e.order_key();
        if let Some(last) = self.last_key {
            if last > key {
                self.violations.push(Violation::new(
                    "trace-total-order",
                    format!(
                        "event {e} orders before its predecessor (time, seq, proc) = ({}, {}, {})",
                        last.0, last.1, last.2
                    ),
                ));
            }
        }
        self.last_key = Some(key);
        self.seqs.push(e.seq);

        let pi = e.proc.index();
        if pi >= self.procs.len() {
            self.procs.resize_with(pi + 1, ProcLint::default);
        }
        let p = &mut self.procs[pi];
        if let Some(last) = p.last_time {
            if e.time < last {
                self.violations.push(Violation::new(
                    "proc-time-monotone",
                    format!("event {e} moves {} backwards from {last}", e.proc),
                ));
            }
        }
        p.last_time = Some(e.time);

        if let EventKind::Repeat { len, count, .. } = e.kind {
            if !self.slice {
                self.violations.push(Violation::new(
                    "repeat-record",
                    format!(
                        "event {e} is a suppression record in a trace checked as complete; \
                         expand it (`ppa slice --expand`) or check with --slice"
                    ),
                ));
            } else if len == 0 || count == 0 {
                self.violations.push(Violation::new(
                    "repeat-record",
                    format!("event {e} has an empty pattern or zero count"),
                ));
            }
            return;
        }
        if self.slice {
            // Projection mode: the order rules above apply as-is; the
            // await/advance and seq-contiguity bookkeeping below would
            // misfire on cut episodes, so it is skipped entirely.
            return;
        }

        match e.kind {
            EventKind::Advance { var, tag } => {
                self.advanced.insert((var, tag));
            }
            EventKind::AwaitBegin { var, tag } => {
                if let Some((v, t, seq)) = p.pending_await {
                    self.violations.push(Violation::new(
                        "await-pairing",
                        format!("event {e} opens an await while awaitB({v},{t}) (seq {seq}) is still open on {}", e.proc),
                    ));
                }
                p.pending_await = Some((var, tag, e.seq));
            }
            EventKind::AwaitEnd { var, tag } => {
                match p.pending_await.take() {
                    Some((v, t, _)) if v == var && t == tag => {}
                    Some((v, t, seq)) => {
                        self.violations.push(Violation::new(
                            "await-pairing",
                            format!("event {e} closes awaitB({v},{t}) (seq {seq}) with a different (var, tag)"),
                        ));
                    }
                    None => {
                        self.violations.push(Violation::new(
                            "await-pairing",
                            format!("event {e} has no open awaitB on {}", e.proc),
                        ));
                    }
                }
                if !tag.is_pre_advanced() && !self.advanced.contains(&(var, tag)) {
                    self.unmatched_awaits.push((var, tag, e.seq));
                }
            }
            EventKind::LockAcquire { lock } => match self.locks.get(&lock) {
                Some(&(holder, seq)) => self.violations.push(Violation::new(
                    "lock-pairing",
                    format!("event {e} acquires {lock} already held by {holder} (seq {seq})"),
                )),
                None => {
                    self.locks.insert(lock, (e.proc, e.seq));
                }
            },
            EventKind::LockRelease { lock } => match self.locks.get(&lock) {
                Some(&(holder, _)) if holder == e.proc => {
                    self.locks.remove(&lock);
                }
                Some(&(holder, seq)) => self.violations.push(Violation::new(
                    "lock-pairing",
                    format!(
                        "event {e} releases {lock} held by {holder} (seq {seq}), not {}",
                        e.proc
                    ),
                )),
                None => self.violations.push(Violation::new(
                    "lock-pairing",
                    format!("event {e} releases {lock}, which is not held"),
                )),
            },
            EventKind::SemAcquire { sem } => {
                let tokens = self.sems.entry(sem).or_insert(0);
                match tokens.checked_sub(1) {
                    Some(rest) => *tokens = rest,
                    None => self.violations.push(Violation::new(
                        "sem-nonnegative",
                        format!("event {e} overdraws {sem}: no unconsumed semV precedes it"),
                    )),
                }
            }
            EventKind::SemRelease { sem } => {
                *self.sems.entry(sem).or_insert(0) += 1;
            }
            EventKind::TaskFork { task } => match self.tasks.get_mut(&task) {
                None => {
                    self.tasks.insert(
                        task,
                        TaskLint {
                            spawn_proc: e.proc,
                            spawn_seq: e.seq,
                            begin_proc: None,
                            end_proc: None,
                        },
                    );
                }
                Some(t) if t.begin_proc.is_none() => t.begin_proc = Some(e.proc),
                Some(t) => self.violations.push(Violation::new(
                    "task-pairing",
                    format!(
                        "event {e} re-forks {task}, which already began (spawned seq {})",
                        t.spawn_seq
                    ),
                )),
            },
            EventKind::TaskJoin { task } => match self.tasks.get_mut(&task) {
                None => self.violations.push(Violation::new(
                    "task-pairing",
                    format!("event {e} joins {task}, which was never forked"),
                )),
                Some(t) if t.begin_proc.is_none() => self.violations.push(Violation::new(
                    "task-pairing",
                    format!("event {e} joins {task} before the child began"),
                )),
                Some(t) if t.end_proc.is_none() => t.end_proc = Some(e.proc),
                Some(t) => {
                    if t.spawn_proc != e.proc {
                        self.violations.push(Violation::new(
                            "task-pairing",
                            format!(
                                "event {e} join-returns {task} on {}, but {} spawned it",
                                e.proc, t.spawn_proc
                            ),
                        ));
                    }
                    if t.begin_proc != t.end_proc {
                        self.violations.push(Violation::new(
                            "task-pairing",
                            format!(
                                "{task} began on {} but ended on {}",
                                t.begin_proc.expect("begin recorded"),
                                t.end_proc.expect("end recorded"),
                            ),
                        ));
                    }
                    self.tasks.remove(&task);
                }
            },
            _ => {}
        }
    }

    /// Closes the stream and returns every violation found, in
    /// encounter order (end-of-stream rules last).
    pub fn finish(mut self) -> Vec<Violation> {
        for (v, t, seq) in &self.unmatched_awaits {
            if !self.advanced.contains(&(*v, *t)) {
                self.violations.push(Violation::new(
                    "await-advance-order",
                    format!(
                        "awaitE({v},{t}) (seq {seq}) has no matching advance anywhere in the trace"
                    ),
                ));
            }
        }
        for (pi, p) in self.procs.iter().enumerate() {
            if let Some((v, t, seq)) = p.pending_await {
                self.violations.push(Violation::new(
                    "await-pairing",
                    format!("awaitB({v},{t}) (seq {seq}) on p{pi} never closed"),
                ));
            }
        }
        for (lock, (holder, seq)) in &self.locks {
            self.violations.push(Violation::new(
                "lock-pairing",
                format!("{lock} acquired by {holder} (seq {seq}) is still held at end of trace"),
            ));
        }
        for (task, t) in &self.tasks {
            self.violations.push(Violation::new(
                "task-pairing",
                format!(
                    "{task} spawned by {} (seq {}) is never joined",
                    t.spawn_proc, t.spawn_seq
                ),
            ));
        }
        // Contiguity is a multiset property, so it is checked once at the
        // end: sorted, the sequence numbers must form one run without
        // holes or duplicates. (Clarity over cleverness — the sort costs
        // O(n log n) once, not per event.) Slices are projections:
        // holes are the point, so the rule is waived there.
        if self.slice {
            return self.violations;
        }
        self.seqs.sort_unstable();
        for w in self.seqs.windows(2) {
            if w[1] != w[0] + 1 {
                let kind = if w[1] == w[0] { "duplicate" } else { "hole" };
                self.violations.push(Violation::new(
                    "seq-contiguity",
                    format!(
                        "sequence numbers have a {kind} between {} and {}",
                        w[0], w[1]
                    ),
                ));
            }
        }
        self.violations
    }
}
