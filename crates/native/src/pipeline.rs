//! The end-to-end native demonstration: measure, analyze, compare.
//!
//! Unlike the simulator experiments, the "actual" time here is itself a
//! measurement (an uninstrumented wall-clock run), so the comparison has
//! real noise — this is the regime the paper's authors worked in.

use crate::calibrate::calibrate;
use crate::clock::TraceClock;
use crate::executor::{execute_program, NativeConfig, NativeError};
use crate::inner_product::doacross_inner_product;
use ppa_core::event_based;
use ppa_lfk::data::fill;
use ppa_lfk::kernels::k03_with;
use ppa_program::{Program, ProgramBuilder};
use ppa_trace::Span;
use std::fmt::Write as _;

/// A loop-3-shaped native workload with microsecond-scale statements
/// (large enough that tracer padding is a measurable but not absurd
/// intrusion).
fn native_loop3(trip: u64) -> Program {
    let mut b = ProgramBuilder::new("native-lfk03");
    let v = b.sync_var();
    b.serial([("init", 20_000u64)])
        .doacross(1, trip, |body| {
            body.compute("mul", 6_000)
                .compute("fetch", 6_000)
                .await_var(v, -1)
                .compute_unobservable("update", 1_500)
                .advance(v)
        })
        .serial([("fini", 20_000u64)])
        .build()
        .expect("native loop 3 is valid")
}

/// Runs the full native pipeline and returns a human-readable report.
///
/// 1. calibrate recording and synchronization overheads;
/// 2. run uninstrumented (actual wall time);
/// 3. run fully instrumented (measured trace);
/// 4. event-based perturbation analysis of the measured trace;
/// 5. verify the real DOACROSS inner product against the sequential
///    kernel.
pub fn native_pipeline_demo() -> Result<String, NativeError> {
    // Use the host's real parallelism: forcing extra threads onto a
    // single-CPU host would serialize the spin work and poison the
    // "actual" baseline.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let padding = Span::from_micros(3);
    let trip = 400;

    let clock = TraceClock::start();
    let overheads = calibrate(&clock, padding);

    let program = native_loop3(trip);
    // Median of three uninstrumented runs to tame scheduling noise.
    let mut actual_walls: Vec<Span> = (0..3)
        .map(|_| {
            execute_program(&program, &NativeConfig::uninstrumented(threads))
                .expect("validated program")
                .wall
        })
        .collect();
    actual_walls.sort();
    let actual = actual_walls[1];

    let measured = execute_program(&program, &NativeConfig::instrumented(threads, padding))?;
    let analysis =
        event_based(&measured.trace, &overheads).expect("native measured traces are feasible");

    let slowdown = measured.wall.ratio(actual);
    let approx_ratio = analysis.total_time().ratio(actual);

    // Real computation check: the DOACROSS inner product is bit-identical
    // to the sequential kernel.
    let n = 4_096;
    let z = fill(n, 301, 1.0);
    let x = fill(n, 302, 1.0);
    let par = doacross_inner_product(&z, &x, threads);
    let seq = k03_with(&z, &x);

    let mut out = String::new();
    let _ = writeln!(out, "threads:                {threads}");
    let _ = writeln!(out, "tracer padding:         {padding}");
    let _ = writeln!(
        out,
        "calibrated overheads:   record {} | s_nowait {} | s_wait {} | advance {}",
        overheads.statement_event, overheads.s_nowait, overheads.s_wait, overheads.advance_op
    );
    let _ = writeln!(out, "actual wall (median/3): {actual}");
    let _ = writeln!(
        out,
        "measured wall:          {} ({slowdown:.2}x slowdown)",
        measured.wall
    );
    let _ = writeln!(out, "measured events:        {}", measured.trace.len());
    let _ = writeln!(
        out,
        "event-based approx:     {} ({approx_ratio:.2}x of actual, {:+.1}% error)",
        analysis.total_time(),
        (approx_ratio - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "inner product check:    parallel {} == sequential {} : {}",
        par,
        seq,
        if par.to_bits() == seq.to_bits() {
            "BIT-IDENTICAL"
        } else {
            "MISMATCH"
        }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_and_reports() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        let report = native_pipeline_demo().unwrap();
        assert!(report.contains("BIT-IDENTICAL"), "report:\n{report}");
        assert!(report.contains("event-based approx"));
    }

    #[test]
    fn native_analysis_is_in_the_right_ballpark() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        // Nondeterministic: allow a generous band, but the approximation
        // must land far closer to actual than the measured time does.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        let padding = Span::from_micros(5);
        let clock = TraceClock::start();
        let overheads = calibrate(&clock, padding);
        let program = native_loop3(300);

        let actual = execute_program(&program, &NativeConfig::uninstrumented(threads))
            .unwrap()
            .wall;
        let measured =
            execute_program(&program, &NativeConfig::instrumented(threads, padding)).unwrap();
        let approx = event_based(&measured.trace, &overheads)
            .unwrap()
            .total_time();

        let slowdown = measured.wall.ratio(actual);
        let approx_err = (approx.ratio(actual) - 1.0).abs();
        assert!(
            slowdown > 1.1,
            "instrumentation should visibly intrude, got {slowdown:.3}x"
        );
        assert!(
            approx_err < (slowdown - 1.0).abs(),
            "approximation (err {approx_err:.3}) should beat raw measurement ({slowdown:.3}x)"
        );
    }
}
