//! Overhead calibration.
//!
//! Perturbation analysis needs "measures of in vitro trace instrumentation
//! costs in an execution environment" (§2). On the native backend those
//! costs are real: this module measures the per-event recording cost (with
//! the configured padding) and the synchronization processing costs of
//! `ppa-sync`'s primitives, producing the [`OverheadSpec`] the analysis
//! will subtract.

use crate::clock::TraceClock;
use crate::tracer::ThreadTracer;
use ppa_sync::AdvanceAwait;
use ppa_trace::{EventKind, OverheadSpec, ProcessorId, Span, StatementId};

/// Measures the average cost of recording one event with the given
/// padding.
pub fn measure_record_cost(clock: &TraceClock, padding: Span) -> Span {
    const N: u64 = 2_000;
    let mut tracer = ThreadTracer::new(*clock, ProcessorId(0), padding, true);
    let begin = clock.now();
    for i in 0..N {
        tracer.record(EventKind::Statement {
            stmt: StatementId(i as u32),
        });
    }
    let end = clock.now();
    (end - begin) / N
}

/// Measures the no-wait path of an `await` (tag already advanced).
pub fn measure_await_nowait(clock: &TraceClock) -> Span {
    const N: u64 = 2_000;
    let aa = AdvanceAwait::new();
    for t in 0..N as i64 {
        aa.advance(t);
    }
    let begin = clock.now();
    for t in 0..N as i64 {
        std::hint::black_box(aa.await_tag(t));
    }
    let end = clock.now();
    (end - begin) / N
}

/// Measures the `advance` operation cost.
pub fn measure_advance_op(clock: &TraceClock) -> Span {
    const N: u64 = 2_000;
    let aa = AdvanceAwait::new();
    let begin = clock.now();
    for t in 0..N as i64 {
        aa.advance(t);
    }
    let end = clock.now();
    (end - begin) / N
}

/// Calibrates a full [`OverheadSpec`] for the native backend with the
/// given tracer padding.
///
/// `s_wait` (resume latency after a waited-on advance) cannot be measured
/// without cross-thread timing games; it is approximated as the no-wait
/// cost plus one clock read, which is the right order of magnitude for the
/// spin-path wakeup of [`AdvanceAwait`].
pub fn calibrate(clock: &TraceClock, padding: Span) -> OverheadSpec {
    let record = measure_record_cost(clock, padding);
    let s_nowait = measure_await_nowait(clock);
    let advance_op = measure_advance_op(clock);
    let s_wait = s_nowait + crate::clock::clock_read_cost(clock);
    OverheadSpec {
        statement_event: record,
        marker_event: record,
        advance_instr: record,
        await_begin_instr: record,
        await_end_instr: record,
        barrier_instr: record,
        s_nowait,
        s_wait,
        advance_op,
        barrier_release: s_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_cost_tracks_padding() {
        let clock = TraceClock::start();
        let bare = measure_record_cost(&clock, Span::ZERO);
        let padded = measure_record_cost(&clock, Span::from_micros(2));
        assert!(padded > bare);
        assert!(padded >= Span::from_micros(2));
        assert!(
            padded < Span::from_micros(50),
            "padded cost unreasonable: {padded}"
        );
    }

    #[test]
    fn sync_costs_are_sub_microsecond_scale() {
        let clock = TraceClock::start();
        let nowait = measure_await_nowait(&clock);
        let adv = measure_advance_op(&clock);
        assert!(nowait < Span::from_micros(20), "await nowait: {nowait}");
        assert!(adv < Span::from_micros(20), "advance: {adv}");
    }

    #[test]
    fn calibrate_produces_consistent_spec() {
        let clock = TraceClock::start();
        let spec = calibrate(&clock, Span::from_micros(1));
        assert!(spec.statement_event >= Span::from_micros(1));
        assert_eq!(spec.statement_event, spec.advance_instr);
        assert!(spec.s_wait >= spec.s_nowait);
    }
}
