//! Livermore loop 17 as a *real* DOACROSS computation.
//!
//! Loop 17's recurrence carries two state variables (`xnm`, `e6`) across
//! iterations — the "large critical section" of the paper's case study.
//! Here the sweep is distributed over threads with the critical section
//! ordered by an advance/await chain; because the state updates happen in
//! exactly the sequential order, the parallel result is bit-identical to
//! the sequential kernel, which the tests assert.
//!
//! The independent phase (the gather of `vlr[i]`, `vlin[i]`, `z[i]` and
//! the branch-condition evaluation that depends only on them) runs
//! outside the critical section, mirroring Figure 3's structure.

use ppa_sync::{AdvanceAwait, SenseBarrier, SpinLock};
use std::sync::Arc;

/// The carried state of the loop-17 recurrence.
#[derive(Debug, Clone, Copy)]
struct State {
    xnm: f64,
    e6: f64,
}

/// Sequential reference with externally supplied arrays; returns
/// `(vxne, vxnd)` checksums exactly as `ppa_lfk::kernels::k17` computes
/// them (the kernel's data layout, reproduced here so the parallel
/// version can share inputs).
pub fn k17_sequential(vlr: &[f64], vlin: &[f64], z: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = vlr.len();
    let scale = 5.0 / 3.0;
    let mut state = State {
        xnm: 1.0 / 3.0,
        e6: 1.03 / 3.07,
    };
    let mut vxne = vec![0.0; n];
    let mut vxnd = vec![0.0; n];
    for i in (0..n).rev() {
        let e3 = state.xnm * vlr[i] + state.e6;
        let e2 = vlin[i] * e3;
        let vx = if z[i] > 0.5 {
            e3 - e2 / scale
        } else {
            e2 + z[i] * e3
        };
        vxne[i] = vx.abs();
        vxnd[i] = e3 + e2;
        state.xnm = 0.9 * vx.abs().min(1.0) + 0.1 * state.xnm;
        state.e6 = 0.5 * (state.e6 + e3.min(1.0));
    }
    (vxne, vxnd)
}

/// The same sweep on `threads` threads as a distance-1 DOACROSS over the
/// backward iteration order (tag `t` = position in sweep order).
///
/// # Panics
/// Panics if `threads` is zero or the slices have different lengths.
pub fn doacross_k17(vlr: &[f64], vlin: &[f64], z: &[f64], threads: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(threads > 0, "need at least one thread");
    assert!(
        vlr.len() == vlin.len() && vlin.len() == z.len(),
        "operand lengths differ"
    );
    let n = vlr.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }

    let scale = 5.0 / 3.0;
    let sync = Arc::new(AdvanceAwait::new());
    let barrier = Arc::new(SenseBarrier::new(threads));
    let state = Arc::new(SpinLock::new(State {
        xnm: 1.0 / 3.0,
        e6: 1.03 / 3.07,
    }));
    let vxne = Arc::new(SpinLock::new(vec![0.0; n]));
    let vxnd = Arc::new(SpinLock::new(vec![0.0; n]));

    std::thread::scope(|scope| {
        for p in 0..threads {
            let sync = Arc::clone(&sync);
            let barrier = Arc::clone(&barrier);
            let state = Arc::clone(&state);
            let vxne = Arc::clone(&vxne);
            let vxnd = Arc::clone(&vxnd);
            scope.spawn(move || {
                let mut t = p; // sweep position: i = n - 1 - t
                while t < n {
                    let i = n - 1 - t;
                    // Independent phase: operands and branch direction.
                    let (vl, vi, zi) = (vlr[i], vlin[i], z[i]);
                    let take_then = zi > 0.5;

                    sync.await_tag(t as i64 - 1);
                    // Critical section: the carried recurrence.
                    {
                        let mut st = state.lock();
                        let e3 = st.xnm * vl + st.e6;
                        let e2 = vi * e3;
                        let vx = if take_then {
                            e3 - e2 / scale
                        } else {
                            e2 + zi * e3
                        };
                        vxne.lock()[i] = vx.abs();
                        vxnd.lock()[i] = e3 + e2;
                        st.xnm = 0.9 * vx.abs().min(1.0) + 0.1 * st.xnm;
                        st.e6 = 0.5 * (st.e6 + e3.min(1.0));
                    }
                    sync.advance(t as i64);
                    t += threads;
                }
                barrier.wait();
            });
        }
    });

    let a = vxne.lock().clone();
    let b = vxnd.lock().clone();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_lfk::data::fill;

    #[test]
    fn sequential_form_matches_the_kernel() {
        let n = 128;
        let vlr = fill(n, 1701, 1.0);
        let vlin = fill(n, 1702, 1.0);
        let z = fill(n, 1703, 1.0);
        let (vxne, vxnd) = k17_sequential(&vlr, &vlin, &z);
        let expected = ppa_lfk::kernels::k17(n);
        let ours = ppa_lfk::data::checksum(vxne) + ppa_lfk::data::checksum(vxnd);
        assert_eq!(ours.to_bits(), expected.to_bits());
    }

    #[test]
    fn parallel_recurrence_is_bit_identical() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        let n = 512;
        let vlr = fill(n, 1701, 1.0);
        let vlin = fill(n, 1702, 1.0);
        let z = fill(n, 1703, 1.0);
        let (se, sd) = k17_sequential(&vlr, &vlin, &z);
        for threads in [1, 2, 4] {
            let (pe, pd) = doacross_k17(&vlr, &vlin, &z, threads);
            assert!(
                se.iter().zip(&pe).all(|(a, b)| a.to_bits() == b.to_bits()),
                "vxne mismatch at {threads} threads"
            );
            assert!(
                sd.iter().zip(&pd).all(|(a, b)| a.to_bits() == b.to_bits()),
                "vxnd mismatch at {threads} threads"
            );
        }
    }

    #[test]
    fn empty_input() {
        let (a, b) = doacross_k17(&[], &[], &[], 2);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        doacross_k17(&[1.0], &[1.0, 2.0], &[1.0], 2);
    }
}
