//! Per-thread software tracing.
//!
//! Each executing thread owns a [`ThreadTracer`]: an append-only event
//! buffer stamped from the shared [`TraceClock`]. Recording an event costs
//! a clock read plus a buffer push — plus an optional configurable
//! *padding* spin that emulates the heavyweight tracers of the paper's era
//! (format + store to a trace memory), so the intrusion being analyzed is
//! of realistic magnitude. The padding is part of the calibrated
//! per-event overhead the analysis subtracts.

use crate::clock::TraceClock;
use ppa_trace::{merge_streams, Event, EventKind, ProcessorId, Span, Trace, TraceKind};

/// Sequence numbers are namespaced per processor so per-thread emission
/// order is preserved without cross-thread coordination.
fn seq_for(proc: ProcessorId, local: u64) -> u64 {
    ((proc.0 as u64) << 40) | local
}

/// One thread's tracer.
#[derive(Debug)]
pub struct ThreadTracer {
    clock: TraceClock,
    proc: ProcessorId,
    padding: Span,
    local_seq: u64,
    events: Vec<Event>,
    /// When false, `record` is a no-op (uninstrumented run).
    enabled: bool,
}

impl ThreadTracer {
    /// Creates a tracer for `proc` with the given per-event padding.
    pub fn new(clock: TraceClock, proc: ProcessorId, padding: Span, enabled: bool) -> Self {
        ThreadTracer {
            clock,
            proc,
            padding,
            local_seq: 0,
            events: Vec::with_capacity(4096),
            enabled,
        }
    }

    /// The processor this tracer records for.
    pub fn proc(&self) -> ProcessorId {
        self.proc
    }

    /// Records an event: pays the padding, stamps the post-recording time.
    #[inline]
    pub fn record(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if !self.padding.is_zero() {
            self.clock.spin_for(self.padding);
        }
        let time = self.clock.now();
        self.events.push(Event::new(
            time,
            self.proc,
            seq_for(self.proc, self.local_seq),
            kind,
        ));
        self.local_seq += 1;
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the tracer, returning its event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

/// Merges per-thread streams into one measured trace.
pub fn merge_tracers(tracers: impl IntoIterator<Item = ThreadTracer>) -> Trace {
    merge_streams(
        TraceKind::Measured,
        tracers.into_iter().map(ThreadTracer::into_events).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::StatementId;

    #[test]
    fn records_in_time_order() {
        let clock = TraceClock::start();
        let mut t = ThreadTracer::new(clock, ProcessorId(2), Span::ZERO, true);
        for i in 0..100 {
            t.record(EventKind::Statement {
                stmt: StatementId(i),
            });
        }
        assert_eq!(t.len(), 100);
        let events = t.into_events();
        assert!(events
            .windows(2)
            .all(|w| w[0].order_key() <= w[1].order_key()));
        assert!(events.iter().all(|e| e.proc == ProcessorId(2)));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let clock = TraceClock::start();
        let mut t = ThreadTracer::new(clock, ProcessorId(0), Span::ZERO, false);
        t.record(EventKind::ProgramBegin);
        assert!(t.is_empty());
    }

    #[test]
    fn padding_slows_recording() {
        let clock = TraceClock::start();
        let mut padded = ThreadTracer::new(clock, ProcessorId(0), Span::from_micros(5), true);
        let begin = clock.now();
        for _ in 0..20 {
            padded.record(EventKind::ProgramBegin);
        }
        let elapsed = clock.now() - begin;
        assert!(
            elapsed >= Span::from_micros(100),
            "padding not applied: {elapsed}"
        );
    }

    #[test]
    fn merge_produces_valid_trace() {
        let clock = TraceClock::start();
        let mut a = ThreadTracer::new(clock, ProcessorId(0), Span::ZERO, true);
        let mut b = ThreadTracer::new(clock, ProcessorId(1), Span::ZERO, true);
        for i in 0..10 {
            a.record(EventKind::Statement {
                stmt: StatementId(i),
            });
            b.record(EventKind::Statement {
                stmt: StatementId(i + 100),
            });
        }
        let trace = merge_tracers([a, b]);
        assert_eq!(trace.len(), 20);
        assert!(trace.is_totally_ordered());
        assert_eq!(trace.kind(), TraceKind::Measured);
    }
}
