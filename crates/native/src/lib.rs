//! # ppa-native — real-thread traced execution
//!
//! The nondeterministic counterpart to `ppa-sim`: the same statement-graph
//! programs executed on OS threads with `ppa-sync`'s advance/await,
//! software tracing against a shared monotonic clock, and *calibrated*
//! (measured, not configured) instrumentation overheads — the regime the
//! paper's authors actually worked in, where "actual" time is itself a
//! measurement.
//!
//! - [`TraceClock`] / [`ThreadTracer`] — per-thread event capture;
//! - [`calibrate`] — in-vitro measurement of recording and
//!   synchronization costs (§2's "measures of trace instrumentation
//!   costs");
//! - [`execute_program`] — run any `ppa-program` workload on threads;
//! - [`doacross_inner_product`] — Livermore loop 3 as a *real* ordered
//!   DOACROSS reduction, bit-identical to the sequential kernel;
//! - [`native_pipeline_demo`] — the end-to-end measure→analyze→compare
//!   demonstration.

#![warn(missing_docs)]

mod calibrate;
mod clock;
mod conditional;
mod executor;
mod inner_product;
mod pipeline;
mod tracer;

pub use calibrate::{calibrate, measure_advance_op, measure_await_nowait, measure_record_cost};
pub use clock::{clock_read_cost, TraceClock};
pub use conditional::{doacross_k17, k17_sequential};
pub use executor::{execute_program, NativeConfig, NativeError, NativeRun};
pub use inner_product::doacross_inner_product;
pub use pipeline::native_pipeline_demo;
pub use tracer::{merge_tracers, ThreadTracer};

/// Timing-sensitive tests spawn many spinning threads; running them
/// concurrently oversubscribes the host and makes wall-clock assertions
/// flaky, so they serialize on this lock.
#[cfg(test)]
pub(crate) static TEST_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
