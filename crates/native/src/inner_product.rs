//! Livermore loop 3 as a *real* DOACROSS computation.
//!
//! The accumulation `q += z[k] * x[k]` is ordered across threads by an
//! advance/await chain exactly as the Alliant compiler ordered it; because
//! the floating-point additions happen in the same order as the
//! sequential loop, the parallel result is **bit-identical** to the
//! sequential one — which the tests assert. This is the workload the
//! native pipeline demo measures.

use ppa_sync::{AdvanceAwait, SenseBarrier, SpinLock};
use std::sync::Arc;

/// Computes the inner product of `z` and `x` on `threads` threads as a
/// distance-1 DOACROSS with a critical-section accumulation.
///
/// # Panics
/// Panics if `threads` is zero or the slices have different lengths.
pub fn doacross_inner_product(z: &[f64], x: &[f64], threads: usize) -> f64 {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(z.len(), x.len(), "operand lengths differ");
    let n = z.len();
    if n == 0 {
        return 0.0;
    }

    let sync = Arc::new(AdvanceAwait::new());
    let barrier = Arc::new(SenseBarrier::new(threads));
    let q = Arc::new(SpinLock::new(0.0f64));

    std::thread::scope(|scope| {
        for p in 0..threads {
            let sync = Arc::clone(&sync);
            let barrier = Arc::clone(&barrier);
            let q = Arc::clone(&q);
            scope.spawn(move || {
                let mut i = p;
                while i < n {
                    let term = z[i] * x[i]; // independent phase
                    sync.await_tag(i as i64 - 1); // wait for iteration i-1
                    *q.lock() += term; // ordered critical section
                    sync.advance(i as i64);
                    i += threads;
                }
                barrier.wait();
            });
        }
    });

    let result = *q.lock();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_lfk::data::fill;
    use ppa_lfk::kernels::k03_with;

    #[test]
    fn parallel_equals_sequential_bit_for_bit() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        let n = 2_000;
        let z = fill(n, 301, 1.0);
        let x = fill(n, 302, 1.0);
        let sequential = k03_with(&z, &x);
        for threads in [1, 2, 4, 8] {
            let parallel = doacross_inner_product(&z, &x, threads);
            assert_eq!(
                parallel.to_bits(),
                sequential.to_bits(),
                "threads={threads}: {parallel} != {sequential}"
            );
        }
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(doacross_inner_product(&[], &[], 4), 0.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(doacross_inner_product(&[3.0], &[2.0], 3), 6.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        doacross_inner_product(&[1.0], &[1.0, 2.0], 2);
    }
}
