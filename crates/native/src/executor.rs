//! Real-thread program execution.
//!
//! Executes the same statement-graph programs the simulator runs, but on
//! OS threads with `ppa-sync` primitives and the software tracer — a
//! genuinely nondeterministic measured execution, as on the paper's
//! machine. Statement costs are interpreted as nanoseconds of busy work
//! (the simulator's 1 GHz experiment convention).
//!
//! Iteration dispatch is static cyclic (`i mod P`, the Alliant default)
//! or self-scheduled through a shared atomic counter, selected by
//! [`NativeConfig::self_scheduled`].

use crate::clock::TraceClock;
use crate::tracer::{merge_tracers, ThreadTracer};
use ppa_program::{validate, InstrumentationPlan, Program, ProgramError, Segment, StatementKind};
use ppa_sync::{AdvanceAwait, SenseBarrier};
use ppa_trace::{EventKind, ProcessorId, Span, SyncTag, Trace};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Native execution failure.
#[derive(Debug)]
pub enum NativeError {
    /// The program failed validation.
    Program(ProgramError),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for NativeError {}

impl From<ProgramError> for NativeError {
    fn from(e: ProgramError) -> Self {
        NativeError::Program(e)
    }
}

/// Native execution configuration.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Worker thread count (the virtual processors).
    pub processors: usize,
    /// Per-event tracer padding (emulated heavyweight recording).
    pub padding: Span,
    /// Which events to record.
    pub plan: InstrumentationPlan,
    /// Dispatch iterations through a shared counter instead of the static
    /// cyclic assignment.
    pub self_scheduled: bool,
}

impl NativeConfig {
    /// An uninstrumented configuration (tracing disabled entirely).
    pub fn uninstrumented(processors: usize) -> Self {
        NativeConfig {
            processors,
            padding: Span::ZERO,
            plan: InstrumentationPlan::none(),
            self_scheduled: false,
        }
    }

    /// A fully instrumented configuration with the given padding.
    pub fn instrumented(processors: usize, padding: Span) -> Self {
        NativeConfig {
            processors,
            padding,
            plan: InstrumentationPlan::full_with_sync(),
            self_scheduled: false,
        }
    }

    /// Switches to self-scheduled (shared counter) dispatch.
    pub fn with_self_scheduling(mut self) -> Self {
        self.self_scheduled = true;
        self
    }
}

/// The product of one native run.
#[derive(Debug, Clone)]
pub struct NativeRun {
    /// The measured trace (empty for uninstrumented runs).
    pub trace: Trace,
    /// Wall-clock duration of the traced region.
    pub wall: Span,
}

fn wants(plan: &InstrumentationPlan, kind: &EventKind, observable: bool) -> bool {
    match kind {
        EventKind::Statement { stmt } => observable && plan.traces_statement(*stmt),
        EventKind::IterationBegin { .. } | EventKind::IterationEnd { .. } => plan.iteration_markers,
        k if k.is_sync() => plan.sync_ops,
        k if k.is_barrier() => plan.barriers,
        _ => plan.markers,
    }
}

/// Executes a program on real threads under the given configuration.
pub fn execute_program(program: &Program, cfg: &NativeConfig) -> Result<NativeRun, NativeError> {
    validate(program)?;
    let clock = TraceClock::start();
    let enabled = cfg.plan.is_active();
    let mut main_tracer = ThreadTracer::new(clock, ProcessorId(0), cfg.padding, enabled);
    let mut worker_events = Vec::new();

    let begin = clock.now();
    record_if(&mut main_tracer, &cfg.plan, EventKind::ProgramBegin, true);

    for seg in &program.segments {
        match seg {
            Segment::Serial(stmts) => {
                for s in stmts {
                    clock.spin_for(Span::from_nanos(s.cost()));
                    record_if(
                        &mut main_tracer,
                        &cfg.plan,
                        EventKind::Statement { stmt: s.id },
                        s.observable,
                    );
                }
            }
            Segment::Loop(l) if !l.kind.is_concurrent() => {
                record_if(
                    &mut main_tracer,
                    &cfg.plan,
                    EventKind::LoopBegin { loop_id: l.id },
                    true,
                );
                for i in 0..l.trip_count {
                    record_if(
                        &mut main_tracer,
                        &cfg.plan,
                        EventKind::IterationBegin {
                            loop_id: l.id,
                            iter: i,
                        },
                        true,
                    );
                    for s in &l.body {
                        clock.spin_for(Span::from_nanos(s.cost()));
                        record_if(
                            &mut main_tracer,
                            &cfg.plan,
                            EventKind::Statement { stmt: s.id },
                            s.observable,
                        );
                    }
                    record_if(
                        &mut main_tracer,
                        &cfg.plan,
                        EventKind::IterationEnd {
                            loop_id: l.id,
                            iter: i,
                        },
                        true,
                    );
                }
                record_if(
                    &mut main_tracer,
                    &cfg.plan,
                    EventKind::LoopEnd { loop_id: l.id },
                    true,
                );
            }
            Segment::Loop(l) => {
                record_if(
                    &mut main_tracer,
                    &cfg.plan,
                    EventKind::LoopBegin { loop_id: l.id },
                    true,
                );

                // Fresh synchronization state per loop execution.
                let vars: BTreeMap<_, _> = l
                    .body
                    .iter()
                    .filter_map(|s| s.kind.sync_var())
                    .map(|v| (v, Arc::new(AdvanceAwait::new())))
                    .collect();
                let barrier = Arc::new(SenseBarrier::new(cfg.processors));
                let next_iter = Arc::new(std::sync::atomic::AtomicU64::new(0));

                let worker = |proc: usize, mut tracer: ThreadTracer| -> ThreadTracer {
                    let fetch = |current: Option<u64>| -> Option<u64> {
                        if cfg.self_scheduled {
                            let i = next_iter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            (i < l.trip_count).then_some(i)
                        } else {
                            let i = current
                                .map(|c| c + cfg.processors as u64)
                                .unwrap_or(proc as u64);
                            (i < l.trip_count).then_some(i)
                        }
                    };
                    let mut cur = fetch(None);
                    while let Some(i) = cur {
                        for s in &l.body {
                            match s.kind {
                                StatementKind::Compute { cost } => {
                                    clock.spin_for(Span::from_nanos(cost));
                                    if wants(
                                        &cfg.plan,
                                        &EventKind::Statement { stmt: s.id },
                                        s.observable,
                                    ) {
                                        tracer.record(EventKind::Statement { stmt: s.id });
                                    }
                                }
                                StatementKind::Await { var, offset } => {
                                    let tag = SyncTag(i as i64 + offset);
                                    if cfg.plan.sync_ops {
                                        tracer.record(EventKind::AwaitBegin { var, tag });
                                    }
                                    vars[&var].await_tag(tag.0);
                                    if cfg.plan.sync_ops {
                                        tracer.record(EventKind::AwaitEnd { var, tag });
                                    }
                                }
                                StatementKind::Advance { var } => {
                                    vars[&var].advance(i as i64);
                                    if cfg.plan.sync_ops {
                                        tracer.record(EventKind::Advance {
                                            var,
                                            tag: SyncTag(i as i64),
                                        });
                                    }
                                }
                            }
                        }
                        cur = fetch(Some(i));
                    }
                    if cfg.plan.barriers {
                        tracer.record(EventKind::BarrierEnter { barrier: l.barrier });
                    }
                    barrier.wait();
                    if cfg.plan.barriers {
                        tracer.record(EventKind::BarrierExit { barrier: l.barrier });
                    }
                    tracer
                };

                std::thread::scope(|scope| {
                    let handles: Vec<_> = (1..cfg.processors)
                        .map(|p| {
                            let tracer = ThreadTracer::new(
                                clock,
                                ProcessorId(p as u16),
                                cfg.padding,
                                enabled,
                            );
                            scope.spawn(move || worker(p, tracer))
                        })
                        .collect();
                    // Processor 0 participates on the calling thread.
                    let t0 = std::mem::replace(
                        &mut main_tracer,
                        ThreadTracer::new(clock, ProcessorId(0), cfg.padding, enabled),
                    );
                    main_tracer = worker(0, t0);
                    for h in handles {
                        worker_events.push(h.join().expect("worker panicked"));
                    }
                });

                record_if(
                    &mut main_tracer,
                    &cfg.plan,
                    EventKind::LoopEnd { loop_id: l.id },
                    true,
                );
            }
        }
    }

    record_if(&mut main_tracer, &cfg.plan, EventKind::ProgramEnd, true);
    let wall = clock.now() - begin;

    let mut tracers = vec![main_tracer];
    tracers.extend(worker_events);
    Ok(NativeRun {
        trace: merge_tracers(tracers),
        wall,
    })
}

fn record_if(
    tracer: &mut ThreadTracer,
    plan: &InstrumentationPlan,
    kind: EventKind,
    observable: bool,
) {
    if wants(plan, &kind, observable) {
        tracer.record(kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_program::ProgramBuilder;
    use ppa_trace::pair_sync_events;

    fn small_doacross(trip: u64) -> Program {
        let mut b = ProgramBuilder::new("native-test");
        let v = b.sync_var();
        b.serial([("pre", 1_000u64)])
            .doacross(1, trip, |body| {
                body.compute("head", 5_000)
                    .await_var(v, -1)
                    .compute("cs", 1_000)
                    .advance(v)
            })
            .serial([("post", 1_000u64)])
            .build()
            .unwrap()
    }

    #[test]
    fn instrumented_run_yields_valid_trace() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        let p = small_doacross(32);
        let cfg = NativeConfig::instrumented(4, Span::from_nanos(500));
        let run = execute_program(&p, &cfg).unwrap();
        assert!(run.trace.is_totally_ordered());
        let idx = pair_sync_events(&run.trace).unwrap();
        assert_eq!(idx.awaits.len(), 32);
        assert_eq!(idx.advances.len(), 32);
        assert_eq!(idx.barriers.len(), 1);
        assert!(run.wall > Span::from_micros(32));
    }

    #[test]
    fn uninstrumented_run_is_trace_free_and_faster() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        let p = small_doacross(64);
        let traced =
            execute_program(&p, &NativeConfig::instrumented(4, Span::from_micros(10))).unwrap();
        let bare = execute_program(&p, &NativeConfig::uninstrumented(4)).unwrap();
        assert!(bare.trace.is_empty());
        assert!(
            bare.wall < traced.wall,
            "uninstrumented {} should beat instrumented {}",
            bare.wall,
            traced.wall
        );
    }

    #[test]
    fn single_processor_works() {
        let p = small_doacross(8);
        let run = execute_program(&p, &NativeConfig::instrumented(1, Span::ZERO)).unwrap();
        assert!(pair_sync_events(&run.trace).is_ok());
        assert_eq!(run.trace.processors(), vec![ProcessorId(0)]);
    }

    #[test]
    fn self_scheduled_dispatch_completes_all_iterations() {
        let _guard = crate::TEST_SERIAL.lock().unwrap();
        let p = small_doacross(48);
        let cfg = NativeConfig::instrumented(4, Span::ZERO).with_self_scheduling();
        let run = execute_program(&p, &cfg).unwrap();
        let idx = pair_sync_events(&run.trace).unwrap();
        // Every iteration advanced exactly once regardless of which thread
        // took it.
        assert_eq!(idx.advances.len(), 48);
        assert_eq!(idx.awaits.len(), 48);
    }

    #[test]
    fn sequential_loops_run_on_the_main_thread() {
        let p = ProgramBuilder::new("seq")
            .sequential_loop(16, |b| b.compute("x", 2_000))
            .build()
            .unwrap();
        let run = execute_program(&p, &NativeConfig::instrumented(4, Span::ZERO)).unwrap();
        assert_eq!(run.trace.processors(), vec![ProcessorId(0)]);
        assert!(run.wall >= Span::from_micros(32));
    }
}
