//! The trace clock: monotonic nanoseconds from a shared origin.

use ppa_trace::{Span, Time};
use std::time::Instant;

/// A shareable monotonic clock; all threads of one execution stamp events
/// against the same origin.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    origin: Instant,
}

impl TraceClock {
    /// Starts a clock at "now".
    pub fn start() -> Self {
        TraceClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub fn now(&self) -> Time {
        Time::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }

    /// Busy-waits until `deadline`, returning the time actually reached.
    /// Used to give synthetic statements a controlled duration.
    #[inline]
    pub fn spin_until(&self, deadline: Time) -> Time {
        loop {
            let t = self.now();
            if t >= deadline {
                return t;
            }
            core::hint::spin_loop();
        }
    }

    /// Busy-waits for `span` from now.
    #[inline]
    pub fn spin_for(&self, span: Span) -> Time {
        self.spin_until(self.now() + span)
    }
}

/// Measures the cost of one clock read (averaged over many).
pub fn clock_read_cost(clock: &TraceClock) -> Span {
    const N: u32 = 10_000;
    let begin = clock.now();
    for _ in 0..N {
        std::hint::black_box(clock.now());
    }
    let end = clock.now();
    (end - begin) / N as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = TraceClock::start();
        let mut prev = c.now();
        for _ in 0..1_000 {
            let t = c.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn spin_for_reaches_the_deadline() {
        let c = TraceClock::start();
        let begin = c.now();
        let reached = c.spin_for(Span::from_micros(50));
        assert!(reached - begin >= Span::from_micros(50));
        // And not wildly more (loose: scheduling noise).
        assert!(reached - begin < Span::from_millis(50));
    }

    #[test]
    fn read_cost_is_small() {
        let c = TraceClock::start();
        let cost = clock_read_cost(&c);
        assert!(cost < Span::from_micros(5), "clock read too slow: {cost}");
    }
}
