//! `ppa` — the experiment harness binary.
//!
//! Regenerates every table and figure of the paper's evaluation on the
//! simulator substrate and prints paper values beside reproduced ones.
//!
//! ```text
//! ppa all                  # everything below, in order
//! ppa fig1                 # Figure 1: sequential loop ratios
//! ppa table1               # Table 1: time-based analysis of loops 3/4/17
//! ppa table2               # Table 2: event-based analysis of loops 3/4/17
//! ppa table3               # Table 3: loop 17 per-processor waiting
//! ppa fig4                 # Figure 4: loop 17 waiting timeline
//! ppa fig5                 # Figure 5: loop 17 parallelism profile
//! ppa ablation overhead    # A2: accuracy vs overhead misestimation
//! ppa ablation schedule    # A1/A3: conservative vs liberal per policy
//! ppa native               # native real-thread pipeline on loop 3
//! ppa analyze t.jsonl      # event-based analysis of a measured trace
//! ppa convert a.jsonl a.bin --to bin   # transcode between trace formats
//! ppa --csv DIR <cmd>      # additionally write CSV files into DIR
//! ```
//!
//! `analyze` reads a measured trace from a file — JSONL (`ppa-trace-v1`)
//! or binary (`ppa-trace-bin-v1`), auto-detected by magic bytes — and
//! recovers the approximated (perturbation-corrected) trace; `--format
//! bin|jsonl` picks the `--out` encoding. With `--stream` it uses the
//! bounded-memory incremental engine end to end: chunked reader →
//! [`ppa::analysis::EventBasedAnalyzer`] → chunked writer, decoding
//! binary input blocks on worker threads. Add
//! `--metrics-out snap.prom [--metrics-format prom|json]` to export a
//! pipeline-metrics snapshot and `--progress` for a stderr ticker (shown
//! only when stderr is a terminal; `--progress=force` overrides).
//!
//! The streaming pipeline is fault-tolerant on demand: `--lenient`
//! skips undecodable input regions as typed gaps (every lost event is
//! accounted for in the summary and in the `ppa_stream_gaps_total` /
//! `ppa_stream_events_lost_total` metrics), `--reorder-window N`
//! re-sorts events arriving up to N sequence numbers late, and
//! `--checkpoint state.ckpt` (cadence: `--checkpoint-every`) makes the
//! run resumable: after a crash or kill, `--resume state.ckpt` seeks the
//! input past the already-analyzed prefix, truncates the report's torn
//! tail, and continues to a byte-identical report.
//!
//! `convert` transcodes a trace between the two formats (the input
//! format is auto-detected, `--to` names the output format); it refuses
//! to overwrite an existing output unless `--force` is given.
//!
//! `serve` runs the multi-tenant streaming ingest daemon: many
//! concurrent `(tenant, stream)` sessions over TCP and unix sockets,
//! each one a checkpointed analyzer whose report survives eviction,
//! SIGTERM, and even SIGKILL (see PROTOCOL.md for the wire format and
//! OPERATIONS.md for running it). `send` is the matching uploader:
//! `ppa send trace.bin --to 127.0.0.1:7223 --tenant acme --stream run1`.
//!
//! Failures exit with BSD-sysexits-style codes so scripts can
//! distinguish them: 64 usage error, 65 malformed input data (parse
//! errors report the offending line number), 66 missing input file,
//! 74 output I/O error.

use ppa::experiments as exp;
use ppa::metrics::{
    format_ratio_table, format_waiting_table, render_bars, render_parallelism, render_timeline,
    write_parallelism_csv, write_ratios_csv, write_timeline_csv, write_waiting_csv, BarGroup,
};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A classified CLI failure. Every error path funnels through this type
/// so the exit-code mapping lives in exactly one place ([`CliError::code`]).
#[derive(Debug)]
enum CliError {
    /// Bad command line (unknown flag, missing argument): exit 64.
    Usage(String),
    /// Input exists but its content is malformed or infeasible: exit 65.
    Data(String),
    /// An input file cannot be opened: exit 66.
    NoInput(String),
    /// Writing an output failed: exit 74.
    Io(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 64,
            CliError::Data(_) => 65,
            CliError::NoInput(_) => 66,
            CliError::Io(_) => 74,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Data(m) | CliError::NoInput(m) | CliError::Io(m) => {
                f.write_str(m)
            }
        }
    }
}

impl From<ppa::trace::IoError> for CliError {
    fn from(e: ppa::trace::IoError) -> Self {
        use ppa::trace::IoError;
        match e {
            // Parse errors carry the offending line number in their Display.
            IoError::Parse { .. } | IoError::BadHeader(_) | IoError::Truncated { .. } => {
                CliError::Data(e.to_string())
            }
            IoError::Io(err) => CliError::Io(err.to_string()),
        }
    }
}

impl From<ppa::analysis::AnalysisError> for CliError {
    fn from(e: ppa::analysis::AnalysisError) -> Self {
        CliError::Data(e.to_string())
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ppa: {e}");
            ExitCode::from(e.code())
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            return Err(CliError::Usage("--csv needs a directory argument".into()));
        }
        csv_dir = Some(PathBuf::from(args.remove(pos + 1)));
        args.remove(pos);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;
    }

    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let sub = args.get(1).map(String::as_str);
    match cmd {
        "all" => {
            fig1(csv_dir.as_deref())?;
            table1(csv_dir.as_deref())?;
            table2(csv_dir.as_deref())?;
            loop17(csv_dir.as_deref(), true, true, true)?;
            intrusion();
            accuracy();
            modes();
            order();
            decompose();
            estimate();
            ablation_overhead();
            ablation_schedule();
            native();
        }
        "fig1" => fig1(csv_dir.as_deref())?,
        "table1" => table1(csv_dir.as_deref())?,
        "table2" => table2(csv_dir.as_deref())?,
        "table3" => loop17(csv_dir.as_deref(), true, false, false)?,
        "fig4" => loop17(csv_dir.as_deref(), false, true, false)?,
        "fig5" => loop17(csv_dir.as_deref(), false, false, true)?,
        "ablation" => match sub {
            Some("overhead") => ablation_overhead(),
            Some("schedule") | Some("liberal") => ablation_schedule(),
            _ => {
                return Err(CliError::Usage(
                    "usage: ppa ablation <overhead|schedule>".into(),
                ))
            }
        },
        "native" => native(),
        "intrusion" => intrusion(),
        "accuracy" => accuracy(),
        "estimate" => estimate(),
        "decompose" => decompose(),
        "modes" => modes(),
        "order" => order(),
        "buffers" => buffers(),
        "campaign" => campaign(sub.unwrap_or("campaign.json"))?,
        "show" => {
            let id = sub
                .and_then(|s| s.parse::<u8>().ok())
                .ok_or_else(|| CliError::Usage("usage: ppa show <kernel 1-24>".into()))?;
            show(id)?;
        }
        "analyze" => run_analyze(&args[1..])?,
        "convert" => run_convert(&args[1..])?,
        "slice" => run_slice(&args[1..])?,
        "check" => run_check(&args[1..])?,
        "serve" => run_serve(&args[1..])?,
        "send" => run_send(&args[1..])?,
        "help" | "--help" | "-h" => {
            println!(
                "subcommands: all fig1 table1 table2 table3 fig4 fig5 ablation native \
                 intrusion accuracy analyze convert slice check serve send"
            );
            println!(
                "analyze: ppa analyze <measured.{{jsonl|bin}}> [--stream] [--out approx] \
                 [--format bin|jsonl] [--overheads spec.json] [--slice EXPR]"
            );
            println!(
                "         (the input container is auto-sniffed from its magic bytes; \
                 --format selects the output container only)"
            );
            println!(
                "         [--metrics-out snap.prom] [--metrics-format prom|json] \
                 [--metrics-every SECS] [--progress[=force]]"
            );
            println!(
                "         [--self-trace spans.{{jsonl|bin|json}}] [--self-trace-format ppa|chrome]"
            );
            println!(
                "         [--lenient] [--reorder-window N] [--decode-workers N] \
                 [--checkpoint state.ckpt [--checkpoint-every N] \
                 [--checkpoint-compact-every N]] [--resume state.ckpt]"
            );
            println!(
                "convert: ppa convert <in> <out> --to <bin|jsonl> [--block-events N] [--force]"
            );
            println!(
                "slice:   ppa slice <in> <out> [--expr EXPR] [--window A..B] [--since T] \
                 [--until T] [--procs SET] [--kind SET] [--var SET] [--tag SET] \
                 [--barrier SET]"
            );
            println!(
                "         [--suppress | --expand] [--format bin|jsonl] [--force] [--lenient] \
                 [--decode-workers N] [--metrics-out snap.prom [--metrics-format prom|json]] \
                 (see QUERIES.md)"
            );
            println!(
                "check:   ppa check <trace-report-or-checkpoint.{{jsonl|bin|ckpt}}> [--slice] \
                 [--metrics snap.{{prom|json}}] \
                 [--metrics-out snap.prom [--metrics-format prom|json]]"
            );
            println!(
                "         ppa check --differential [--seed N] [--programs N] [--scenarios N] \
                 [--workers N] [--out-dir DIR]"
            );
            println!(
                "serve:   ppa serve --checkpoint-dir DIR [--listen ADDR] [--unix-socket PATH] \
                 [--metrics-listen ADDR]"
            );
            println!(
                "         [--max-sessions N] [--tenant-max-sessions N] [--tenant-max-eps N] \
                 [--tenant-max-resident-bytes N]"
            );
            println!(
                "         [--checkpoint-every N] [--checkpoint-compact-every N] \
                 [--idle-timeout-ms N] [--lenient] [--reorder-window N] \
                 [--decode-workers N] [--overheads spec.json]"
            );
            println!(
                "         [--log-format text|json] [--log-level info|debug] \
                 [--self-trace-dir DIR] [--metrics-every SECS]"
            );
            println!(
                "send:    ppa send <trace.{{jsonl|bin}}> (--to ADDR | --unix PATH) \
                 --tenant T --stream S [--frame-bytes N]"
            );
            println!("exit codes: 64 usage, 65 bad data, 66 missing input, 74 output I/O");
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown subcommand {other:?}; try `ppa help`"
            )));
        }
    }
    Ok(())
}

/// Opens `dir/name` for a CSV export. `Ok(None)` when no CSV directory
/// was requested; a create failure is a real error (exit 74), not a
/// silently-skipped export.
fn csv_file(dir: Option<&Path>, name: &str) -> Result<Option<File>, CliError> {
    let Some(dir) = dir else { return Ok(None) };
    File::create(dir.join(name))
        .map(Some)
        .map_err(|e| CliError::Io(format!("cannot create {name}: {e}")))
}

fn csv_io(name: &str) -> impl Fn(std::io::Error) -> CliError + '_ {
    move |e| CliError::Io(format!("cannot write {name}: {e}"))
}

fn fig1(csv: Option<&Path>) -> Result<(), CliError> {
    println!("==============================================================");
    println!("Figure 1: sequential loop execution, full statement tracing");
    println!("(measured/actual and time-based approximated/actual ratios)");
    println!("==============================================================");
    let rows = exp::fig1();
    let groups: Vec<BarGroup> = rows
        .iter()
        .map(|r| {
            (
                format!(
                    "loop {:<2} (paper measured: {})",
                    r.kernel,
                    r.paper_measured
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_default()
                ),
                vec![
                    ("measured".to_string(), r.measured_ratio),
                    ("approx".to_string(), r.approx_ratio),
                ],
            )
        })
        .collect();
    println!("{}", render_bars("", &groups, 48));
    if let Some(f) = csv_file(csv, "fig1.csv")? {
        let ratio_rows: Vec<_> = rows
            .iter()
            .map(|r| ppa::metrics::RatioRow {
                label: format!("lfk{:02}", r.kernel),
                measured_over_actual: r.measured_ratio,
                approx_over_actual: r.approx_ratio,
                paper_measured: r.paper_measured,
                paper_approx: None,
            })
            .collect();
        write_ratios_csv(&ratio_rows, f).map_err(csv_io("fig1.csv"))?;
    }
    Ok(())
}

fn table1(csv: Option<&Path>) -> Result<(), CliError> {
    println!("==============================================================");
    let rows = exp::table1();
    println!(
        "{}",
        format_ratio_table(
            "Table 1: loop execution time ratios, TIME-based analysis",
            &rows
        )
    );
    if let Some(f) = csv_file(csv, "table1.csv")? {
        write_ratios_csv(&rows, f).map_err(csv_io("table1.csv"))?;
    }
    Ok(())
}

fn table2(csv: Option<&Path>) -> Result<(), CliError> {
    println!("==============================================================");
    let rows = exp::table2();
    println!(
        "{}",
        format_ratio_table(
            "Table 2: loop execution time ratios, EVENT-based analysis",
            &rows
        )
    );
    if let Some(f) = csv_file(csv, "table2.csv")? {
        write_ratios_csv(&rows, f).map_err(csv_io("table2.csv"))?;
    }
    Ok(())
}

fn loop17(csv: Option<&Path>, t3: bool, f4: bool, f5: bool) -> Result<(), CliError> {
    let a = exp::loop17_analysis();
    if t3 {
        println!("==============================================================");
        println!(
            "{}",
            format_waiting_table(
                "Table 3: DOACROSS waiting time in loop 17 (approximated execution)\n(paper: 4.05 8.09 4.05 2.70 4.05 5.40 2.70 4.05 %)",
                &a.waiting
            )
        );
        println!(
            "ground truth (simulator): {}",
            a.ground_truth_pct
                .iter()
                .map(|p| format!("{p:.2}%"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        if let Some(f) = csv_file(csv, "table3.csv")? {
            write_waiting_csv(&a.waiting, f).map_err(csv_io("table3.csv"))?;
        }
    }
    if f4 {
        println!("==============================================================");
        println!("Figure 4: approximated waiting behavior in loop 17");
        println!("{}", render_timeline(&a.timeline, 96));
        if let Some(f) = csv_file(csv, "fig4.csv")? {
            write_timeline_csv(&a.timeline, f).map_err(csv_io("fig4.csv"))?;
        }
    }
    if f5 {
        println!("==============================================================");
        println!(
            "Figure 5: approximated parallelism in loop 17 (avg over loop: {:.1}, paper: 7.5)",
            a.avg_parallelism
        );
        println!("{}", render_parallelism(&a.profile, 96, 8));
        if let Some(f) = csv_file(csv, "fig5.csv")? {
            write_parallelism_csv(&a.profile, f).map_err(csv_io("fig5.csv"))?;
        }
    }
    Ok(())
}

fn ablation_overhead() {
    println!("==============================================================");
    println!("Ablation A2: event-based accuracy vs overhead misestimation");
    println!("(analysis overhead spec scaled by factor; measurement used 1.0)");
    for kernel in [3u8, 4, 17] {
        let points =
            exp::ablation_overhead_sweep(kernel, &[0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0]);
        println!("loop {kernel:<2}:");
        for p in points {
            println!(
                "  factor {:>5.2}  approx/actual {:>7.3}  ({:+.1}%)",
                p.factor,
                p.approx_ratio,
                (p.approx_ratio - 1.0) * 100.0
            );
        }
    }
}

fn ablation_schedule() {
    println!("==============================================================");
    println!("Ablation A1/A3: conservative vs liberal analysis per dispatch policy");
    for kernel in [3u8, 4, 17] {
        println!("loop {kernel:<2}:");
        for row in exp::ablation_schedule(kernel) {
            println!(
                "  {:<14?} divergence {:>5.1}%  conservative {:>7.3}  liberal {:>7.3}  wrong-policy({:?}) {:>7.3}",
                row.policy,
                row.assignment_divergence * 100.0,
                row.conservative_ratio,
                row.liberal_ratio,
                row.wrong_policy,
                row.liberal_wrong_policy_ratio,
            );
        }
    }
}

fn show(id: u8) -> Result<(), CliError> {
    match ppa::lfk::generic_graph(id) {
        Some(program) => {
            print!("{}", ppa::program::format_program(&program));
            Ok(())
        }
        None => Err(CliError::Usage(format!(
            "kernel {id} has no graph (valid ids: 1-24)"
        ))),
    }
}

fn buffers() {
    println!("==============================================================");
    println!("Extension: finite trace memory (per-processor bounded buffers)");
    println!(
        "{:<10} {:>9} {:>12} {:>12}",
        "capacity", "dropped", "analyzable", "approx/act"
    );
    for r in exp::buffer_study(3, &[32, 128, 512, 2048, 8192]) {
        println!(
            "{:<10} {:>9} {:>12} {:>12}",
            r.capacity,
            r.dropped,
            r.analyzable,
            r.approx_ratio
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into())
        );
    }
}

fn campaign(path: &str) -> Result<(), CliError> {
    println!("running the full campaign...");
    let c = exp::run_campaign();
    let file =
        File::create(path).map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
    serde_json::to_writer_pretty(file, &c)
        .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    println!("campaign report written to {path}");
    Ok(())
}

fn modes() {
    println!("==============================================================");
    println!("Extension: scalar vs vector execution modes (vectorizable kernels)");
    println!(
        "{:<6} {:<8} {:>14} {:>10} {:>12}",
        "loop", "mode", "actual", "slowdown", "approx/act"
    );
    for r in exp::mode_comparison() {
        println!(
            "{:<6} {:<8} {:>14} {:>9.2}x {:>12.3}",
            r.kernel,
            r.mode,
            r.actual.to_string(),
            r.slowdown,
            r.approx_ratio
        );
    }
}

fn order() {
    println!("==============================================================");
    println!("Extension: event-order perturbation and repair");
    for kernel in [3u8, 4, 17] {
        let s = exp::order_study(kernel);
        println!(
            "loop {:<2}: measured {} inversions ({:.4}% of pairs, {} cross-proc) -> \
             approximated {} ({:.4}%)",
            kernel,
            s.measured.inversions,
            s.measured.inversion_rate * 100.0,
            s.measured.cross_processor_inversions,
            s.approximated.inversions,
            s.approximated.inversion_rate * 100.0,
        );
    }
}

fn decompose() {
    use ppa::metrics::{decompose_slowdown, format_decomposition};
    use ppa::prelude::*;
    println!("==============================================================");
    println!("Extension: slowdown decomposition (direct overhead vs induced waiting)");
    let cfg = exp::experiment_config();
    for kernel in [3u8, 4, 17] {
        let program = ppa::lfk::doacross_graph(kernel).expect("doacross kernel");
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
        let analysis = event_based(&measured.trace, &cfg.overheads).expect("feasible");
        let d = decompose_slowdown(&measured.trace, &analysis, &cfg.overheads);
        println!("{}", format_decomposition(&format!("loop {kernel}:"), &d));
    }
}

fn estimate() {
    use ppa::analysis::estimate_overheads;
    use ppa::prelude::*;
    println!("==============================================================");
    println!("Extension: overhead estimation from calibration trace pairs");
    let cfg = exp::experiment_config();
    let mut b = ppa::program::ProgramBuilder::new("calibration");
    let v = b.sync_var();
    let program = b
        .doacross(1, 256, |body| {
            body.compute("head", 40_000)
                .await_var(v, -1)
                .compute_unobservable("cs", 60)
                .advance(v)
        })
        .build()
        .expect("valid calibration workload");
    let actual = run_actual(&program, &cfg).expect("valid");
    let measured =
        run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
    let est = estimate_overheads(&actual.trace, &measured.trace, &cfg.overheads);
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "kind", "samples", "estimated", "true", "min", "max"
    );
    for k in &est.kinds {
        let true_value = match k.kind {
            "stmt" => cfg.overheads.statement_event,
            "advance" => cfg.overheads.advance_instr,
            "awaitB" => cfg.overheads.await_begin_instr,
            "awaitE" => cfg.overheads.await_end_instr,
            "barEnter" | "barExit" => cfg.overheads.barrier_instr,
            _ => cfg.overheads.marker_event,
        };
        println!(
            "{:<10} {:>8} {:>12} {:>12} {:>12} {:>12}",
            k.kind,
            k.samples,
            k.median.to_string(),
            true_value.to_string(),
            k.min.to_string(),
            k.max.to_string()
        );
    }
}

fn intrusion() {
    println!("==============================================================");
    println!("Extension: intrusion survey across all 24 Livermore kernels");
    println!(
        "{:<4} {:<28} {:<12} {:>8} {:>9} {:>11}",
        "id", "kernel", "class", "events", "slowdown", "approx/act"
    );
    for r in exp::all_kernel_intrusion() {
        println!(
            "{:<4} {:<28} {:<12} {:>8} {:>8.2}x {:>11.3}",
            r.kernel,
            r.name,
            format!("{:?}", r.class),
            r.events,
            r.slowdown,
            r.approx_ratio
        );
    }
}

fn accuracy() {
    println!("==============================================================");
    println!("Extension: per-event timing accuracy (1us tolerance band)");
    for kernel in [3u8, 4, 17] {
        let a = exp::per_event_accuracy(kernel);
        println!("loop {kernel}:");
        for (name, r) in [
            ("raw measured", &a.measured),
            ("time-based", &a.time_based),
            ("event-based", &a.event_based),
        ] {
            println!(
                "  {:<13} matched {:>5}  mean |err| {:>12}  max |err| {:>12}  within 1us {:>6.1}%",
                name,
                r.matched,
                r.mean_abs_error.to_string(),
                r.max_abs_error.to_string(),
                r.within_tolerance * 100.0
            );
        }
    }
}

fn native() {
    println!("==============================================================");
    println!("Native real-thread pipeline (nondeterministic, real clocks)");
    match ppa::native::native_pipeline_demo() {
        Ok(report) => println!("{report}"),
        Err(e) => println!("native pipeline unavailable: {e}"),
    }
}

// --- analyze: event-based analysis of an on-disk JSONL trace ------------

const ANALYZE_USAGE: &str = "usage: ppa analyze <measured.{jsonl|bin}> [--stream] \
     [--out approx] [--format bin|jsonl] [--overheads spec.json] \
     [--slice EXPR] [--decode-workers N] \
     [--metrics-out snap.prom] [--metrics-format prom|json] [--metrics-every SECS] \
     [--progress[=force]] [--self-trace spans.{jsonl|bin|json}] \
     [--self-trace-format ppa|chrome] [--lenient] [--reorder-window N] \
     [--checkpoint state.ckpt [--checkpoint-every N] [--checkpoint-compact-every N]] \
     [--resume state.ckpt]";

/// Upper bound accepted for `--decode-workers`: far above any real
/// machine, low enough to catch typos (a missing argument swallowing
/// the next flag, a pasted event count) before spawning threads.
const MAX_DECODE_WORKERS: usize = 1024;

/// Parses a `--decode-workers` argument: `0` means serial decode, any
/// other value is a decode-thread count, and absurd values are a usage
/// error (sysexits 64).
fn parse_decode_workers(n: &str) -> Result<usize, CliError> {
    n.parse::<usize>()
        .ok()
        .filter(|&w| w <= MAX_DECODE_WORKERS)
        .ok_or_else(|| {
            CliError::Usage(format!(
                "--decode-workers must be an integer in 0..={MAX_DECODE_WORKERS} \
                 (0 = serial), got {n:?}"
            ))
        })
}

/// The decode-worker count to use when `--decode-workers` is absent:
/// one worker per available core.
fn default_decode_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Prom,
    Json,
}

/// On-disk shape of `--self-trace` output: a native ppa trace (the
/// dogfood loop — `ppa analyze`/`ppa check` run on it unmodified) or
/// Chrome trace-event JSON for chrome://tracing and Perfetto.
#[derive(Clone, Copy, PartialEq)]
enum SelfTraceFormat {
    Ppa,
    Chrome,
}

/// Writes `text` to `path` atomically (tmp + fsync + rename), the same
/// discipline as checkpoint writes: a reader never observes a torn
/// snapshot, which is what lets `--metrics-every` re-export into a path
/// a scraper is concurrently reading.
fn write_atomic(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = format!("{path}.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

/// Drains `recorder` and writes the self-trace to `path` in `format`.
/// For the ppa format the container is chosen by extension: `.bin`
/// gets `ppa-trace-bin-v1`, anything else JSONL.
fn export_self_trace(
    recorder: &ppa::obs::SpanRecorder,
    path: &str,
    format: SelfTraceFormat,
) -> Result<(), CliError> {
    use ppa::trace::{write_chrome_trace, write_self_trace, TraceFormat};
    use std::io::BufWriter;

    let log = recorder.drain();
    let file = File::create(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let mut out = BufWriter::new(file);
    let summary = match format {
        SelfTraceFormat::Ppa => {
            let container = if path.ends_with(".bin") {
                TraceFormat::Binary
            } else {
                TraceFormat::Jsonl
            };
            write_self_trace(&mut out, &log, container)
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?
        }
        SelfTraceFormat::Chrome => {
            write_chrome_trace(&mut out, &log).map_err(|e| CliError::Io(format!("{path}: {e}")))?
        }
    };
    println!(
        "self-trace written to {path}: {} span(s), {} skipped, {} dropped",
        summary.spans, summary.skipped, summary.dropped
    );
    Ok(())
}

/// Fault-tolerance options of the streaming pipeline (all off by default).
#[derive(Default)]
struct FaultOptions {
    /// Skip undecodable input regions as typed gaps instead of failing.
    lenient: bool,
    /// Re-sort events arriving up to N sequence numbers late.
    reorder_window: Option<u64>,
    /// Write resumable checkpoints to this path while analyzing.
    checkpoint: Option<String>,
    /// Checkpoint cadence, in events consumed from the input.
    checkpoint_every: u64,
    /// Full-snapshot compaction cadence of the incremental checkpoint
    /// chain (0 = write a full snapshot every time, no deltas).
    checkpoint_compact_every: usize,
    /// Resume from this checkpoint instead of starting fresh.
    resume: Option<String>,
}

/// Feeds one measured event through the repeat-record expander and the
/// analyzer, draining analyzer output into the sink. Non-suppressed
/// input passes through the expander untouched (no records means no
/// cursors), so the same path serves both plain and suppressed traces.
fn push_expanded<W: std::io::Write>(
    expander: &mut ppa::analysis::RepeatExpander,
    scratch: &mut Vec<ppa::trace::Event>,
    analyzer: &mut ppa::analysis::EventBasedAnalyzer,
    sink: &mut AnalyzeSink<W>,
    event: ppa::trace::Event,
) -> Result<(), CliError> {
    scratch.clear();
    expander
        .push(event, scratch)
        .map_err(|e| CliError::Data(e.to_string()))?;
    for ev in scratch.drain(..) {
        analyzer.push(ev)?;
        while let Some(o) = analyzer.next_output() {
            sink.take(o).map_err(|e| CliError::Io(e.to_string()))?;
        }
    }
    Ok(())
}

/// Default `--checkpoint-every`: 256 binary blocks at the default block
/// size, i.e. a snapshot every ~1M events. A checkpoint serializes the
/// analyzer's full live state, whose size tracks the trace's
/// synchronization history, so the cadence trades snapshot cost against
/// how much input a resumed run re-analyzes (~1M events is about a
/// second of pipeline time).
const DEFAULT_CHECKPOINT_EVERY: u64 = 1_048_576;

/// Output accounting shared by the streaming loop and the tail flush.
struct AnalyzeSink<W: std::io::Write> {
    writer: Option<ppa::trace::AnyTraceWriter<W>>,
    /// `--slice` scope on the *report*: the analysis itself always runs
    /// over the full input (anything less would bias the §4.2.3
    /// overhead accounting — see EXPERIMENTS.md), and the predicate
    /// decides which approximated events reach the writer.
    spec: Option<ppa::slice::SliceSpec>,
    events: usize,
    filtered: usize,
    awaits: usize,
    barriers: usize,
    episodes: usize,
    last_time: ppa::trace::Time,
}

impl<W: std::io::Write> AnalyzeSink<W> {
    fn take(&mut self, o: ppa::analysis::StreamOutput) -> Result<(), ppa::trace::IoError> {
        use ppa::analysis::StreamOutput;
        match o {
            StreamOutput::Event(e) => {
                // The final-time line reports the analysis, not the
                // slice, so the watermark advances before filtering.
                self.last_time = self.last_time.max(e.time);
                if let Some(spec) = &self.spec {
                    if !spec.matches(&e) {
                        self.filtered += 1;
                        return Ok(());
                    }
                }
                self.events += 1;
                if let Some(w) = &mut self.writer {
                    w.write_event(&e)?;
                }
            }
            StreamOutput::Await { .. } => self.awaits += 1,
            StreamOutput::Barrier { .. } => self.barriers += 1,
            StreamOutput::Episode { .. } => self.episodes += 1,
        }
        Ok(())
    }
}

fn run_analyze(args: &[String]) -> Result<(), CliError> {
    use ppa::trace::OverheadSpec;

    let mut input: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut out_format = ppa::trace::TraceFormat::Jsonl;
    let mut overheads_path: Option<&str> = None;
    let mut metrics_out: Option<&str> = None;
    let mut metrics_format = MetricsFormat::Prom;
    let mut metrics_every: Option<std::time::Duration> = None;
    let mut self_trace: Option<&str> = None;
    let mut self_trace_format: Option<SelfTraceFormat> = None;
    let mut stream = false;
    let mut progress_flag = false;
    let mut progress_forced = false;
    let mut faults = FaultOptions {
        checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        checkpoint_compact_every: ppa::analysis::DEFAULT_COMPACT_EVERY,
        ..FaultOptions::default()
    };
    let mut checkpoint_every_set = false;
    let mut compact_every_set = false;
    let mut decode_workers: Option<usize> = None;
    let mut slice_expr: Option<&str> = None;
    let mut it = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs an argument"));
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stream" => stream = true,
            "--progress" => progress_flag = true,
            "--progress=force" => {
                progress_flag = true;
                progress_forced = true;
            }
            "--lenient" => faults.lenient = true,
            "--reorder-window" => {
                let n = it.next().ok_or_else(|| missing("--reorder-window"))?;
                faults.reorder_window = Some(n.parse::<u64>().map_err(|_| {
                    CliError::Usage(format!(
                        "--reorder-window must be a non-negative integer, got {n:?}"
                    ))
                })?);
            }
            "--checkpoint" => {
                faults.checkpoint = Some(it.next().ok_or_else(|| missing("--checkpoint"))?.clone());
            }
            "--checkpoint-every" => {
                let n = it.next().ok_or_else(|| missing("--checkpoint-every"))?;
                faults.checkpoint_every =
                    n.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        CliError::Usage(format!(
                            "--checkpoint-every must be a positive integer, got {n:?}"
                        ))
                    })?;
                checkpoint_every_set = true;
            }
            "--checkpoint-compact-every" => {
                let n = it
                    .next()
                    .ok_or_else(|| missing("--checkpoint-compact-every"))?;
                faults.checkpoint_compact_every = n.parse::<usize>().map_err(|_| {
                    CliError::Usage(format!(
                        "--checkpoint-compact-every must be a non-negative integer \
                         (0 = full snapshots only), got {n:?}"
                    ))
                })?;
                compact_every_set = true;
            }
            "--resume" => {
                faults.resume = Some(it.next().ok_or_else(|| missing("--resume"))?.clone());
            }
            "--decode-workers" => {
                let n = it.next().ok_or_else(|| missing("--decode-workers"))?;
                decode_workers = Some(parse_decode_workers(n)?);
            }
            "--slice" => slice_expr = Some(it.next().ok_or_else(|| missing("--slice"))?),
            "--out" => out_path = Some(it.next().ok_or_else(|| missing("--out"))?),
            "--format" => {
                let name = it.next().ok_or_else(|| missing("--format"))?;
                out_format = ppa::trace::TraceFormat::parse(name).ok_or_else(|| {
                    CliError::Usage(format!("--format must be `bin` or `jsonl`, got {name:?}"))
                })?;
            }
            "--overheads" => {
                overheads_path = Some(it.next().ok_or_else(|| missing("--overheads"))?);
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or_else(|| missing("--metrics-out"))?);
            }
            "--metrics-format" => {
                metrics_format = match it
                    .next()
                    .ok_or_else(|| missing("--metrics-format"))?
                    .as_str()
                {
                    "prom" => MetricsFormat::Prom,
                    "json" => MetricsFormat::Json,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--metrics-format must be `prom` or `json`, got {other:?}"
                        )));
                    }
                };
            }
            "--metrics-every" => {
                let n = it.next().ok_or_else(|| missing("--metrics-every"))?;
                metrics_every = Some(std::time::Duration::from_secs(
                    n.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        CliError::Usage(format!(
                            "--metrics-every must be a positive number of seconds, got {n:?}"
                        ))
                    })?,
                ));
            }
            "--self-trace" => {
                self_trace = Some(it.next().ok_or_else(|| missing("--self-trace"))?);
            }
            "--self-trace-format" => {
                self_trace_format = Some(
                    match it
                        .next()
                        .ok_or_else(|| missing("--self-trace-format"))?
                        .as_str()
                    {
                        "ppa" => SelfTraceFormat::Ppa,
                        "chrome" => SelfTraceFormat::Chrome,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--self-trace-format must be `ppa` or `chrome`, got {other:?}"
                            )));
                        }
                    },
                );
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            path if input.is_none() => input = Some(path),
            extra => return Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
        }
    }
    let input = input.ok_or_else(|| CliError::Usage(ANALYZE_USAGE.into()))?;
    if (metrics_out.is_some() || progress_flag || self_trace.is_some()) && !stream {
        return Err(CliError::Usage(
            "--metrics-out, --progress, and --self-trace require --stream".into(),
        ));
    }
    if metrics_every.is_some() && metrics_out.is_none() {
        return Err(CliError::Usage(
            "--metrics-every only applies with --metrics-out".into(),
        ));
    }
    if self_trace_format.is_some() && self_trace.is_none() {
        return Err(CliError::Usage(
            "--self-trace-format only applies with --self-trace".into(),
        ));
    }
    if !stream
        && (faults.lenient
            || faults.reorder_window.is_some()
            || faults.checkpoint.is_some()
            || faults.resume.is_some())
    {
        return Err(CliError::Usage(
            "--lenient, --reorder-window, --checkpoint, and --resume require --stream".into(),
        ));
    }
    if (checkpoint_every_set || compact_every_set) && faults.checkpoint.is_none() {
        return Err(CliError::Usage(
            "--checkpoint-every and --checkpoint-compact-every only apply with --checkpoint".into(),
        ));
    }
    if faults.checkpoint.is_some() || faults.resume.is_some() {
        // A checkpoint records a durable byte offset into the report and
        // resume truncates + appends there; only the line-oriented JSONL
        // format has that property (a binary writer holds a partly
        // accumulated block in memory that no flush can frame).
        if out_path.is_none() {
            return Err(CliError::Usage(
                "--checkpoint/--resume require --out (the report is what gets resumed)".into(),
            ));
        }
        if out_format != ppa::trace::TraceFormat::Jsonl {
            return Err(CliError::Usage(
                "--checkpoint/--resume require `--format jsonl` output".into(),
            ));
        }
    }
    // A `--resume` checkpoint records the durable frontier of an
    // *unsliced* report (and vice versa); replaying the tail under a
    // different predicate would splice two incompatible reports.
    if slice_expr.is_some() && faults.resume.is_some() {
        return Err(CliError::Usage(
            "--slice contradicts --resume: the checkpointed report was written \
             under a different (or no) slice expression"
                .into(),
        ));
    }
    let slice_spec = match slice_expr {
        Some(expr) => {
            let spec =
                ppa::slice::SliceSpec::parse(expr).map_err(|e| CliError::Usage(e.to_string()))?;
            if spec.is_empty() {
                None
            } else {
                Some(spec)
            }
        }
        None => None,
    };
    let overheads: OverheadSpec = match overheads_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| CliError::NoInput(format!("{p}: {e}")))?;
            serde_json::from_str(&text).map_err(|e| CliError::Data(format!("{p}: {e}")))?
        }
        None => OverheadSpec::alliant_default(),
    };

    // The ticker is for humans watching a terminal; when stderr is a
    // pipe (CI logs, scripted captures) `--progress` stays silent so it
    // cannot pollute machine-read output. `--progress=force` overrides
    // the detection for the rare "tee the ticker to a file" case.
    let progress = progress_flag
        && (progress_forced || {
            use std::io::IsTerminal;
            std::io::stderr().is_terminal()
        });

    if stream {
        stream_analyze(
            input,
            out_path,
            out_format,
            &overheads,
            metrics_out,
            metrics_format,
            metrics_every,
            self_trace.map(|p| (p, self_trace_format.unwrap_or(SelfTraceFormat::Ppa))),
            progress,
            &faults,
            decode_workers,
            slice_spec,
        )
    } else {
        batch_analyze(
            input,
            out_path,
            out_format,
            &overheads,
            decode_workers,
            slice_spec,
        )
    }
}

/// Maps checkpoint failures onto the sysexits scheme: a missing
/// checkpoint file is missing input (66), a torn or corrupted one is bad
/// data (65), anything else is I/O (74).
fn checkpoint_error(path: &str, e: ppa::analysis::CheckpointError) -> CliError {
    use ppa::analysis::CheckpointError;
    match e {
        CheckpointError::Io(err) if err.kind() == std::io::ErrorKind::NotFound => {
            CliError::NoInput(format!("{path}: {err}"))
        }
        CheckpointError::Io(err) => CliError::Io(format!("{path}: {err}")),
        CheckpointError::Corrupt(m) => CliError::Data(format!("{path}: corrupt checkpoint: {m}")),
        e @ CheckpointError::FutureVersion { .. } => CliError::Data(format!("{path}: {e}")),
    }
}

/// Bounded-memory pipeline: chunked reader -> analyzer -> chunked writer,
/// optionally instrumented with `ppa::obs` probes and a stderr ticker.
/// The input format is auto-detected; binary input decodes block-parallel.
///
/// The `faults` options make the pipeline fault-tolerant end to end:
/// `--lenient` turns undecodable input regions into typed gaps,
/// `--reorder-window` re-sorts slightly late events in front of the
/// analyzer, and `--checkpoint`/`--resume` make a killed run continuable
/// to a byte-identical report.
#[allow(clippy::too_many_arguments)]
fn stream_analyze(
    input: &str,
    out_path: Option<&str>,
    out_format: ppa::trace::TraceFormat,
    overheads: &ppa::trace::OverheadSpec,
    metrics_out: Option<&str>,
    metrics_format: MetricsFormat,
    metrics_every: Option<std::time::Duration>,
    self_trace: Option<(&str, SelfTraceFormat)>,
    progress: bool,
    faults: &FaultOptions,
    decode_workers: Option<usize>,
    slice_spec: Option<ppa::slice::SliceSpec>,
) -> Result<(), CliError> {
    use ppa::analysis::{
        read_checkpoint, AnalyzerProbes, Checkpoint, CheckpointParts, DeltaCheckpointWriter,
        EventBasedAnalyzer, RepeatExpander, SinkState,
    };
    use ppa::obs::{
        calibrate_self_overhead, json_text, prometheus_text, span_enter, Registry, SpanRecorder,
        Stage, StageCounters, STAGE_COUNT,
    };
    use ppa::trace::{AnyTraceReader, AnyTraceWriter, ReorderBuffer, StreamProbes, TraceKind};
    use std::io::{BufReader, BufWriter, Seek, SeekFrom};
    use std::time::{Duration, Instant};

    let registry = Registry::new();
    let want_metrics = metrics_out.is_some();

    // The span recorder watches the pipeline run itself. Installed
    // globally (before the reader spawns decode workers) so codec
    // threads lazily bind to it; drained at the end into the
    // `--self-trace` export and the `ppa_stage_ns_total` counters.
    let want_spans = want_metrics || self_trace.is_some();
    let recorder = want_spans.then(SpanRecorder::new);
    let _recorder_installed = recorder.as_ref().map(|r| r.install_global());
    let stage_counters = want_metrics.then(|| StageCounters::register(&registry));
    // Stage totals already pushed to the registry, so `--metrics-every`
    // snapshots can re-export monotone counters mid-run.
    let mut stage_published = [0u64; STAGE_COUNT];
    let publish_stages = |published: &mut [u64; STAGE_COUNT]| {
        if let (Some(rec), Some(counters)) = (&recorder, &stage_counters) {
            let totals = rec.stage_totals();
            let mut delta = [0u64; STAGE_COUNT];
            for (d, (t, p)) in delta.iter_mut().zip(totals.iter().zip(published.iter())) {
                *d = t - p;
            }
            counters.add_totals(&delta);
            *published = totals;
        }
    };
    let (read_probes, write_probes, analyzer_probes) = if want_metrics {
        (
            StreamProbes::register(&registry, "read"),
            StreamProbes::register(&registry, "write"),
            AnalyzerProbes::register(&registry),
        )
    } else {
        (
            StreamProbes::noop(),
            StreamProbes::noop(),
            AnalyzerProbes::noop(),
        )
    };
    let checkpoints_written = if want_metrics && faults.checkpoint.is_some() {
        registry.counter(
            "ppa_checkpoints_written_total",
            "Resumable checkpoints written by this analysis run.",
        )
    } else {
        ppa::obs::Counter::default()
    };

    // A resumed run starts from the checkpoint's cut, not from scratch:
    // the analyzer state, the input cursor, the gap record, the reorder
    // tail, and the output counters all carry over.
    let resumed: Option<Checkpoint> = match &faults.resume {
        Some(p) => Some(read_checkpoint(Path::new(p)).map_err(|e| checkpoint_error(p, e))?),
        None => None,
    };
    let base_positions = resumed.as_ref().map_or(0, |cp| cp.positions_seen);
    let prior_lost = resumed.as_ref().map_or(0, |cp| cp.events_lost);
    let prior_gaps: Vec<ppa::trace::TraceGap> =
        resumed.as_ref().map_or_else(Vec::new, |cp| cp.gaps.clone());

    let file = File::open(input).map_err(|e| CliError::NoInput(format!("{input}: {e}")))?;
    let workers = decode_workers.unwrap_or_else(default_decode_workers);
    if want_metrics {
        registry
            .gauge(
                "ppa_decode_workers",
                "Decode worker threads for binary input (0 = serial decode).",
            )
            .set(workers as f64);
    }
    let mut reader = if workers == 0 {
        AnyTraceReader::with_probes(BufReader::new(file), read_probes)
            .map_err(|e| CliError::from(e).prefixed(input))?
    } else {
        AnyTraceReader::open_parallel_with_probes(BufReader::new(file), workers, read_probes)
            .map_err(|e| CliError::from(e).prefixed(input))?
    };
    if faults.lenient {
        reader.set_lenient(true);
    }
    if base_positions > 0 {
        reader.set_skip_events(base_positions);
    }
    let expected = reader.expected_events();
    // A sliced report's length is unknown until the run ends; a nonzero
    // advisory count that overshoots would read back as truncation, so
    // the header announces 0 (unknown) whenever a slice scope is active.
    let announced = if slice_spec.is_some() { 0 } else { expected };

    let writer = match (out_path, &resumed) {
        (Some(p), Some(cp)) => {
            // The checkpoint's byte offset is the durable frontier:
            // everything before it was flushed before the snapshot was
            // taken, everything after it will be re-emitted by the
            // resumed analysis. Truncate the torn tail and append.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(p)
                .map_err(|e| CliError::NoInput(format!("{p}: cannot resume into: {e}")))?;
            let len = f
                .metadata()
                .map_err(|e| CliError::Io(format!("{p}: {e}")))?
                .len();
            if len < cp.sink.bytes_flushed {
                return Err(CliError::Data(format!(
                    "{p}: report is {len} bytes but the checkpoint flushed {}; \
                     wrong or modified output file",
                    cp.sink.bytes_flushed
                )));
            }
            f.set_len(cp.sink.bytes_flushed)
                .map_err(|e| CliError::Io(format!("{p}: {e}")))?;
            let mut f = f;
            f.seek(SeekFrom::End(0))
                .map_err(|e| CliError::Io(format!("{p}: {e}")))?;
            Some(AnyTraceWriter::resume_jsonl(
                BufWriter::new(f),
                cp.sink.events as usize,
                write_probes,
            ))
        }
        (Some(p), None) => {
            let f = File::create(p).map_err(|e| CliError::Io(format!("{p}: {e}")))?;
            Some(
                AnyTraceWriter::with_probes(
                    BufWriter::new(f),
                    out_format,
                    TraceKind::Approximated,
                    announced,
                    write_probes,
                )
                .map_err(|e| CliError::Io(format!("{p}: {e}")))?,
            )
        }
        (None, _) => None,
    };
    let mut analyzer = match &resumed {
        Some(cp) => EventBasedAnalyzer::restore_with_probes(&cp.analyzer, analyzer_probes),
        None => EventBasedAnalyzer::with_probes(overheads, analyzer_probes),
    };
    let mut reorder = match &resumed {
        // A checkpoint written without --reorder-window carries no buffer
        // snapshot; fall back to a fresh buffer so the flag is honored on
        // resume too (fresh is safe: no order has been released yet from
        // its point of view, and the analyzer still enforces total order).
        Some(cp) => cp
            .reorder
            .as_ref()
            .map(ReorderBuffer::restore)
            .or_else(|| faults.reorder_window.map(ReorderBuffer::new)),
        None => faults.reorder_window.map(ReorderBuffer::new),
    };
    let mut sink = AnalyzeSink {
        writer,
        spec: slice_spec,
        filtered: 0,
        events: resumed.as_ref().map_or(0, |cp| cp.sink.events as usize),
        awaits: resumed.as_ref().map_or(0, |cp| cp.sink.awaits as usize),
        barriers: resumed.as_ref().map_or(0, |cp| cp.sink.barriers as usize),
        episodes: resumed.as_ref().map_or(0, |cp| cp.sink.episodes as usize),
        last_time: resumed
            .as_ref()
            .map_or(ppa::trace::Time::ZERO, |cp| cp.sink.last_time),
    };
    drop(resumed);

    // Per-source-processor event shares for the per-shard counters:
    // `ppa_shard_events_total{shard="p<i>"}` / `ppa_shard_throughput_eps`.
    let mut per_proc: Vec<u64> = Vec::new();
    let began = Instant::now();
    let mut last_tick = began;
    let mut last_export = began;
    let mut pushed: u64 = 0;
    let mut since_checkpoint: u64 = 0;
    // Incremental checkpoint chain: full snapshots at the compaction
    // cadence, cheap dirty-state deltas in between. The writer owns the
    // chain bookkeeping (CRC chain, intern table, gap cursor).
    let mut ckpt_writer = faults
        .checkpoint
        .as_ref()
        .map(|p| DeltaCheckpointWriter::new(p, faults.checkpoint_compact_every));

    // Repeat records (suppressed input, see QUERIES.md) expand back
    // into their logical events in front of the analyzer; plain traces
    // flow through the expander unchanged.
    let mut expander = RepeatExpander::new();
    let mut expand_buf: Vec<ppa::trace::Event> = Vec::new();

    // The whole streaming run is one root span; per-event spans would
    // perturb the pipeline they measure (the paper's uncertainty
    // principle), so push work is attributed in 4096-event chunks
    // instead — the same granularity as the progress ticker.
    let mut run_span = Some(span_enter(Stage::Run));
    let mut chunk_span: Option<ppa::obs::SpanGuard> = None;

    while let Some(item) = reader.next() {
        if want_spans && pushed.is_multiple_of(4096) {
            // Close the old chunk before opening the new one so chunks
            // stay siblings under the run span rather than nesting.
            drop(chunk_span.take());
            let mut g = span_enter(Stage::AnalyzePush);
            g.attr_seq(pushed);
            chunk_span = Some(g);
        }
        let event = item.map_err(|e| CliError::from(e).prefixed(input))?;
        if want_metrics {
            let pi = event.proc.index();
            if pi >= per_proc.len() {
                per_proc.resize(pi + 1, 0);
            }
            per_proc[pi] += 1;
        }
        match &mut reorder {
            Some(buf) => {
                // A rejection is counted by the buffer, not fatal: the
                // event arrived too late to place without rewriting
                // already-released order.
                buf.push(event);
                while let Some(e) = buf.pop_ready() {
                    push_expanded(&mut expander, &mut expand_buf, &mut analyzer, &mut sink, e)?;
                }
            }
            None => {
                push_expanded(
                    &mut expander,
                    &mut expand_buf,
                    &mut analyzer,
                    &mut sink,
                    event,
                )?;
            }
        }
        pushed += 1;
        since_checkpoint += 1;
        if let Some(w) = &mut ckpt_writer {
            if since_checkpoint >= faults.checkpoint_every {
                since_checkpoint = 0;
                let out = out_path.expect("--checkpoint requires --out");
                if let Some(sw) = &mut sink.writer {
                    sw.flush()
                        .map_err(|e| CliError::Io(format!("{out}: {e}")))?;
                }
                let bytes_flushed = std::fs::metadata(out)
                    .map_err(|e| CliError::Io(format!("{out}: {e}")))?
                    .len();
                let gaps: Vec<ppa::trace::TraceGap> =
                    prior_gaps.iter().chain(reader.gaps()).cloned().collect();
                let parts = CheckpointParts {
                    positions_seen: base_positions + pushed + reader.events_lost(),
                    gaps: &gaps,
                    events_lost: prior_lost + reader.events_lost(),
                    reorder: reorder.as_ref().map(|b| b.snapshot()),
                    sink: SinkState {
                        bytes_flushed,
                        events: sink.events as u64,
                        awaits: sink.awaits as u64,
                        barriers: sink.barriers as u64,
                        episodes: sink.episodes as u64,
                        last_time: sink.last_time,
                    },
                };
                let ck_display = w.path().display().to_string();
                w.checkpoint(&mut analyzer, parts)
                    .map_err(|e| checkpoint_error(&ck_display, e))?;
                checkpoints_written.inc();
            }
        }
        if let (Some(every), Some(path)) = (metrics_every, metrics_out) {
            if pushed.is_multiple_of(4096) && last_export.elapsed() >= every {
                publish_stages(&mut stage_published);
                let snap = registry.snapshot();
                let text = match metrics_format {
                    MetricsFormat::Prom => prometheus_text(&snap),
                    MetricsFormat::Json => json_text(&snap),
                };
                write_atomic(path, &text).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                last_export = Instant::now();
            }
        }
        if progress
            && pushed.is_multiple_of(4096)
            && last_tick.elapsed() >= Duration::from_millis(250)
        {
            eprintln!(
                "progress: {pushed}/{expected} events in, {} out, watermark lag {}",
                sink.events,
                analyzer.watermark_lag()
            );
            last_tick = Instant::now();
        }
    }
    drop(chunk_span);
    // End of input: release whatever the reorder buffer still holds.
    if let Some(buf) = &mut reorder {
        let _span = span_enter(Stage::Reorder);
        while let Some(e) = buf.pop_flush() {
            push_expanded(&mut expander, &mut expand_buf, &mut analyzer, &mut sink, e)?;
        }
    }
    // Flush expansions still pending behind the last record.
    expand_buf.clear();
    expander.finish(&mut expand_buf);
    for ev in expand_buf.drain(..) {
        analyzer.push(ev)?;
        while let Some(o) = analyzer.next_output() {
            sink.take(o).map_err(|e| CliError::Io(e.to_string()))?;
        }
    }
    let tail = {
        let _span = span_enter(Stage::AnalyzeEmit);
        let tail = if faults.lenient {
            analyzer.finish_lenient()
        } else {
            analyzer.finish()?
        };
        for o in &tail.outputs {
            sink.take(*o).map_err(|e| CliError::Io(e.to_string()))?;
        }
        if let Some(w) = sink.writer.take() {
            w.finish().map_err(|e| CliError::Io(e.to_string()))?;
        }
        tail
    };
    // The root span ends here so its duration lands in the drained log
    // and the stage totals below.
    drop(run_span.take());
    if progress {
        eprintln!("progress: done ({pushed} events in, {} out)", sink.events);
    }

    let events_lost = prior_lost + reader.events_lost();
    if want_metrics {
        if let Some(buf) = &reorder {
            registry
                .counter(
                    "ppa_reorder_resorted_total",
                    "Late events re-sorted into place by the reorder buffer.",
                )
                .add(buf.reordered());
            registry
                .counter(
                    "ppa_reorder_rejected_total",
                    "Events rejected for arriving beyond the reorder window.",
                )
                .add(buf.rejected());
        }
    }

    if let Some(path) = metrics_out {
        let elapsed = began.elapsed().as_secs_f64();
        for (p, &n) in per_proc.iter().enumerate() {
            let shard = format!("p{p}");
            registry
                .counter_with(
                    "ppa_shard_events_total",
                    &[("shard", &shard)],
                    "Measured events read per source processor.",
                )
                .add(n);
            registry
                .gauge_with(
                    "ppa_shard_throughput_eps",
                    &[("shard", &shard)],
                    "Events per second processed for this source processor.",
                )
                .set(if elapsed > 0.0 {
                    n as f64 / elapsed
                } else {
                    0.0
                });
        }
        calibrate_self_overhead().export(&registry);
        publish_stages(&mut stage_published);
        let snap = registry.snapshot();
        let text = match metrics_format {
            MetricsFormat::Prom => prometheus_text(&snap),
            MetricsFormat::Json => json_text(&snap),
        };
        write_atomic(path, &text).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        println!("metrics snapshot written to {path}");
    }

    if let (Some((path, format)), Some(rec)) = (self_trace, &recorder) {
        export_self_trace(rec, path, format)?;
    }

    println!(
        "analyzed {} measured events (streaming): {} approximated events, \
         {} awaits, {} barrier passages, {} sync episodes",
        expected, sink.events, sink.awaits, sink.barriers, sink.episodes
    );
    if expander.records() > 0 {
        println!(
            "expanded {} repeat record(s) into {} suppressed event(s)",
            expander.records(),
            expander.expanded()
        );
    }
    if sink.spec.is_some() {
        println!(
            "report scoped to slice: {} event(s) emitted, {} filtered out",
            sink.events, sink.filtered
        );
    }
    println!("final approximated time: {}", sink.last_time);
    println!(
        "peak resident state: {} events (parked {}, buffered {})",
        tail.stats.peak_resident, tail.stats.peak_parked, tail.stats.peak_buffered
    );
    if tail.stats.clamped > 0 {
        println!(
            "clamped approximations: {} (overhead exceeded the measured \
             inter-event delta; see ppa_core_clamped_approx_total)",
            tail.stats.clamped
        );
    }
    let gap_count = prior_gaps.len() + reader.gaps().len();
    if gap_count > 0 {
        println!("decode gaps: {gap_count} gap(s), {events_lost} event(s) lost");
        for g in prior_gaps.iter().chain(reader.gaps()) {
            println!("  {g}");
        }
    }
    if tail.unresolved > 0 {
        println!(
            "unresolved: {} event(s) parked at end of stream (dependencies \
             lost to decode gaps); their approximated times were dropped",
            tail.unresolved
        );
    }
    if let Some(buf) = &reorder {
        println!(
            "reorder buffer (window {}): {} event(s) re-sorted, {} rejected",
            buf.window(),
            buf.reordered(),
            buf.rejected()
        );
    }
    Ok(())
}

fn batch_analyze(
    input: &str,
    out_path: Option<&str>,
    out_format: ppa::trace::TraceFormat,
    overheads: &ppa::trace::OverheadSpec,
    decode_workers: Option<usize>,
    slice_spec: Option<ppa::slice::SliceSpec>,
) -> Result<(), CliError> {
    use ppa::analysis::event_based;
    use ppa::trace::{read_trace, read_trace_parallel, write_trace, Trace};
    use std::io::{BufReader, BufWriter};

    let file = File::open(input).map_err(|e| CliError::NoInput(format!("{input}: {e}")))?;
    let workers = decode_workers.unwrap_or_else(default_decode_workers);
    let measured = if workers == 0 {
        read_trace(BufReader::new(file)).map_err(|e| CliError::from(e).prefixed(input))?
    } else {
        read_trace_parallel(BufReader::new(file), workers)
            .map_err(|e| CliError::from(e).prefixed(input))?
    };
    let result = event_based(&measured, overheads)?;
    // `--slice` scopes the report after the analysis (the full input
    // keeps the §4.2.3 accounting exact; see EXPERIMENTS.md).
    let (report, filtered) = match &slice_spec {
        Some(spec) => {
            let kept: Vec<_> = result
                .trace
                .events()
                .iter()
                .filter(|e| spec.matches(e))
                .copied()
                .collect();
            let filtered = result.trace.len() - kept.len();
            (Trace::from_events(result.trace.kind(), kept), filtered)
        }
        None => (result.trace.clone(), 0),
    };
    if let Some(p) = out_path {
        let f = File::create(p).map_err(|e| CliError::Io(format!("{p}: {e}")))?;
        write_trace(&report, BufWriter::new(f), out_format)
            .map_err(|e| CliError::Io(format!("{p}: {e}")))?;
    }
    println!(
        "analyzed {} measured events: {} approximated events, {} awaits, \
         {} barrier passages, {} sync episodes",
        measured.len(),
        report.len(),
        result.awaits.len(),
        result.barriers.len(),
        result.episodes.len()
    );
    if slice_spec.is_some() {
        println!(
            "report scoped to slice: {} event(s) emitted, {filtered} filtered out",
            report.len()
        );
    }
    println!("approximated total time: {}", result.trace.total_time());
    Ok(())
}

// --- convert: transcode a trace between the two on-disk formats ---------

const CONVERT_USAGE: &str =
    "usage: ppa convert <in> <out> --to <bin|jsonl> [--block-events N] [--force]";

/// Streams a trace from one format to the other (or the same — useful for
/// canonicalization). The input format is auto-detected by magic bytes;
/// the trace kind and advisory event count carry over, so converting a
/// file to binary and back reproduces it byte for byte.
fn run_convert(args: &[String]) -> Result<(), CliError> {
    use ppa::trace::{
        AnyTraceReader, AnyTraceWriter, BinaryTraceWriter, StreamProbes, TraceFormat,
    };
    use std::io::{BufReader, BufWriter, Write};

    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut to: Option<TraceFormat> = None;
    let mut block_events: Option<usize> = None;
    let mut force = false;
    let mut it = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs an argument"));
    while let Some(a) = it.next() {
        match a.as_str() {
            "--force" => force = true,
            "--to" => {
                let name = it.next().ok_or_else(|| missing("--to"))?;
                to = Some(TraceFormat::parse(name).ok_or_else(|| {
                    CliError::Usage(format!("--to must be `bin` or `jsonl`, got {name:?}"))
                })?);
            }
            "--block-events" => {
                let n = it.next().ok_or_else(|| missing("--block-events"))?;
                block_events = Some(n.parse::<usize>().map_err(|_| {
                    CliError::Usage(format!(
                        "--block-events must be a positive integer, got {n:?}"
                    ))
                })?);
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            path if input.is_none() => input = Some(path),
            path if output.is_none() => output = Some(path),
            extra => return Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
        }
    }
    let (Some(input), Some(output), Some(to)) = (input, output, to) else {
        return Err(CliError::Usage(CONVERT_USAGE.into()));
    };
    if block_events == Some(0) {
        return Err(CliError::Usage("--block-events must be at least 1".into()));
    }
    if block_events.is_some() && to != TraceFormat::Binary {
        return Err(CliError::Usage(
            "--block-events only applies to `--to bin`".into(),
        ));
    }

    let file = File::open(input).map_err(|e| CliError::NoInput(format!("{input}: {e}")))?;
    let reader = AnyTraceReader::open(BufReader::new(file))
        .map_err(|e| CliError::from(e).prefixed(input))?;
    let from = reader.format();
    let (kind, expected) = (reader.kind(), reader.expected_events());

    if !force && Path::new(output).exists() {
        return Err(CliError::Usage(format!(
            "{output} already exists; pass --force to overwrite it"
        )));
    }
    let out_file = File::create(output).map_err(|e| CliError::Io(format!("{output}: {e}")))?;
    let sink = BufWriter::new(out_file);
    let out_err = |e: ppa::trace::IoError| CliError::Io(format!("{output}: {e}"));
    let mut writer = match block_events {
        Some(n) => AnyTraceWriter::Binary(
            BinaryTraceWriter::with_block_events(sink, kind, expected, n, StreamProbes::noop())
                .map_err(out_err)?,
        ),
        None => AnyTraceWriter::new(sink, to, kind, expected).map_err(out_err)?,
    };
    let mut converted = 0usize;
    for event in reader {
        let event = event.map_err(|e| CliError::from(e).prefixed(input))?;
        writer.write_event(&event).map_err(out_err)?;
        converted += 1;
    }
    let mut inner = writer.finish().map_err(out_err)?;
    inner
        .flush()
        .map_err(|e| CliError::Io(format!("{output}: {e}")))?;
    println!("converted {converted} events: {input} ({from}) -> {output} ({to})");
    Ok(())
}

// --- slice: predicate slicing + redundancy suppression ------------------

const SLICE_USAGE: &str = "usage: ppa slice <in.{jsonl|bin}> <out> [--expr EXPR] \
     [--window A..B] [--since T] [--until T] [--procs SET] [--kind SET] [--var SET] \
     [--tag SET] [--barrier SET] [--suppress | --expand] [--format bin|jsonl] \
     [--force] [--lenient] [--decode-workers N] \
     [--metrics-out snap.prom [--metrics-format prom|json]] (see QUERIES.md)";

/// `ppa slice`: copy the events a slice expression selects (QUERIES.md)
/// into a new trace, optionally collapsing repeated per-processor
/// patterns into counted repeat records (`--suppress`) or expanding
/// records back into the events they stand for (`--expand`). A time
/// window engages the binary block skip index, so non-matching blocks
/// are discarded without CRC or decode; the final accounting is exact —
/// every input event is emitted, filtered, skipped undecoded,
/// suppressed into a record, or lost to a lenient-mode gap.
fn run_slice(args: &[String]) -> Result<(), CliError> {
    use ppa::slice::{slice_stream, SliceError, SliceOptions, SliceProbes, SliceSpec, SliceStats};
    use ppa::trace::{AnyTraceReader, AnyTraceWriter, TraceFormat};
    use std::io::{BufReader, BufWriter, Write as _};

    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut clauses: Vec<String> = Vec::new();
    let mut suppress = false;
    let mut expand = false;
    let mut out_format: Option<TraceFormat> = None;
    let mut force = false;
    let mut lenient = false;
    let mut decode_workers: Option<usize> = None;
    let mut metrics_out: Option<&str> = None;
    let mut metrics_format = MetricsFormat::Prom;
    let mut it = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs an argument"));
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suppress" => suppress = true,
            "--expand" => expand = true,
            "--force" => force = true,
            "--lenient" => lenient = true,
            "--expr" => clauses.push(it.next().ok_or_else(|| missing("--expr"))?.clone()),
            "--window" | "--since" | "--until" | "--procs" | "--kind" | "--var" | "--tag"
            | "--barrier" => {
                // Convenience flags desugar into expression clauses, so
                // `--window 1..2 --expr "window=3..4"` trips the
                // parser's duplicate-clause rule like any other
                // conflict.
                let value = it.next().ok_or_else(|| missing(a))?;
                clauses.push(format!("{}={value}", &a[2..]));
            }
            "--format" => {
                let name = it.next().ok_or_else(|| missing("--format"))?;
                out_format = Some(TraceFormat::parse(name).ok_or_else(|| {
                    CliError::Usage(format!("--format must be `bin` or `jsonl`, got {name:?}"))
                })?);
            }
            "--decode-workers" => {
                let n = it.next().ok_or_else(|| missing("--decode-workers"))?;
                decode_workers = Some(parse_decode_workers(n)?);
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or_else(|| missing("--metrics-out"))?);
            }
            "--metrics-format" => {
                metrics_format = match it
                    .next()
                    .ok_or_else(|| missing("--metrics-format"))?
                    .as_str()
                {
                    "prom" => MetricsFormat::Prom,
                    "json" => MetricsFormat::Json,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--metrics-format must be `prom` or `json`, got {other:?}"
                        )));
                    }
                };
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            path if input.is_none() => input = Some(path),
            path if output.is_none() => output = Some(path),
            extra => return Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
        }
    }
    let (Some(input), Some(output)) = (input, output) else {
        return Err(CliError::Usage(SLICE_USAGE.into()));
    };
    if suppress && expand {
        return Err(CliError::Usage(
            "--suppress and --expand are mutually exclusive".into(),
        ));
    }
    let expr = clauses.join(" ");
    let spec = SliceSpec::parse(&expr).map_err(|e| CliError::Usage(e.to_string()))?;

    let registry = metrics_out.is_some().then(ppa::obs::Registry::new);
    let probes = match &registry {
        Some(r) => SliceProbes::register(r),
        None => SliceProbes::noop(),
    };

    let file = File::open(input).map_err(|e| CliError::NoInput(format!("{input}: {e}")))?;
    let workers = decode_workers.unwrap_or_else(default_decode_workers);
    let mut reader = if workers == 0 {
        AnyTraceReader::open(BufReader::new(file)).map_err(|e| CliError::from(e).prefixed(input))?
    } else {
        AnyTraceReader::open_parallel(BufReader::new(file), workers)
            .map_err(|e| CliError::from(e).prefixed(input))?
    };
    if lenient {
        reader.set_lenient(true);
    }
    let in_format = reader.format();
    let kind = reader.kind();
    let format = out_format.unwrap_or(in_format);

    if !force && Path::new(output).exists() {
        return Err(CliError::Usage(format!(
            "{output} already exists; pass --force to overwrite it"
        )));
    }
    let out_file = File::create(output).map_err(|e| CliError::Io(format!("{output}: {e}")))?;
    let out_err = |e: ppa::trace::IoError| CliError::Io(format!("{output}: {e}"));
    // The slice's event count is unknown until the run ends, so the
    // advisory header count stays 0.
    let mut writer =
        AnyTraceWriter::new(BufWriter::new(out_file), format, kind, 0).map_err(out_err)?;

    let (stats, expansion) = if expand {
        // Expansion must see every record — including ones a skipped
        // block would hide — so it reads everything undiscarded and
        // filters after expanding. Conservation is over logical events
        // here: emitted + filtered == physical input + expanded.
        let mut stats = SliceStats {
            expected: reader.expected_events() as u64,
            ..SliceStats::default()
        };
        let mut expander = ppa::analysis::RepeatExpander::new();
        let mut buf: Vec<ppa::trace::Event> = Vec::new();
        {
            let mut deliver = |ev: &ppa::trace::Event| -> Result<(), CliError> {
                if spec.matches(ev) {
                    writer.write_event(ev).map_err(out_err)?;
                    stats.emitted += 1;
                    probes.events_emitted.inc();
                } else {
                    stats.filtered += 1;
                    probes.events_filtered.inc();
                }
                Ok(())
            };
            for item in reader.by_ref() {
                let event = item.map_err(|e| CliError::from(e).prefixed(input))?;
                buf.clear();
                expander
                    .push(event, &mut buf)
                    .map_err(|e| CliError::Data(format!("{input}: {e}")))?;
                for ev in &buf {
                    deliver(ev)?;
                }
            }
            buf.clear();
            expander.finish(&mut buf);
            for ev in &buf {
                deliver(ev)?;
            }
        }
        stats.lost = reader.events_lost();
        (stats, Some((expander.records(), expander.expanded())))
    } else {
        let options = SliceOptions {
            spec,
            suppress,
            use_skip_index: true,
        };
        let stats = slice_stream(&mut reader, &options, &probes, |e| writer.write_event(e))
            .map_err(|e| match e {
                SliceError::Io(err) => CliError::from(err).prefixed(input),
                e @ SliceError::SuppressedInput { .. } => CliError::Data(format!("{input}: {e}")),
            })?;
        (stats, None)
    };
    let mut inner = writer.finish().map_err(out_err)?;
    inner
        .flush()
        .map_err(|e| CliError::Io(format!("{output}: {e}")))?;

    println!(
        "sliced {input} ({in_format}) -> {output} ({format}): {} event(s) emitted, \
         {} filtered",
        stats.emitted, stats.filtered
    );
    println!(
        "skip index: {} block(s) skipped undecoded ({} event(s))",
        stats.skipped_blocks, stats.skipped_events
    );
    if suppress {
        println!(
            "suppression: {} repeat record(s) standing for {} suppressed event(s)",
            stats.records, stats.suppressed
        );
    }
    if let Some((records, expanded)) = expansion {
        println!("expansion: {records} repeat record(s) expanded into {expanded} event(s)");
    }
    if stats.lost > 0 {
        println!("lenient gaps: {} event(s) lost", stats.lost);
    }
    if expansion.is_none() && !stats.conservation_holds() {
        return Err(CliError::Data(format!(
            "{input}: slice accounting broken: {} of {} input event(s) accounted for",
            stats.accounted(),
            stats.expected
        )));
    }

    if let Some(path) = metrics_out {
        let registry = registry.expect("registry exists when --metrics-out is set");
        let snap = registry.snapshot();
        let text = match metrics_format {
            MetricsFormat::Prom => ppa::obs::prometheus_text(&snap),
            MetricsFormat::Json => ppa::obs::json_text(&snap),
        };
        write_atomic(path, &text).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        println!("metrics snapshot written to {path}");
    }
    Ok(())
}

const CHECK_USAGE: &str = "usage: ppa check <trace-report-or-checkpoint.{jsonl|bin|ckpt}> \
     [--slice] [--metrics snap.{prom|json}] \
     [--metrics-out snap.prom [--metrics-format prom|json]]\n\
       ppa check --differential [--seed N] [--programs N] [--scenarios N] [--workers N] \
     [--decode-workers N] [--out-dir DIR]";

/// How many violations `ppa check` prints in full before summarizing.
const CHECK_PRINT_CAP: usize = 20;

/// Validates a trace or report against the invariant rules, or runs the
/// differential oracle (`--differential`). Any violation exits 65 with
/// the rule named in the output; per-rule counts export as
/// `ppa_check_violations_total` with `--metrics-out`.
fn run_check(args: &[String]) -> Result<(), CliError> {
    use ppa::check::{
        check_metrics, is_checkpoint_magic, lint_checkpoint, run_differential, DifferentialConfig,
        ReportChecker, TraceLinter,
    };
    use ppa::trace::{AnyTraceReader, TraceKind};
    use std::io::BufReader;

    let mut input: Option<&str> = None;
    let mut metrics_in: Option<&str> = None;
    let mut metrics_out: Option<&str> = None;
    let mut metrics_format = MetricsFormat::Prom;
    let mut differential = false;
    let mut slice_mode = false;
    let mut diff_cfg = DifferentialConfig::default();
    let mut out_dir: Option<&str> = None;
    let mut it = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs an argument"));
    let positive = |flag: &str, n: &str| {
        n.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| CliError::Usage(format!("{flag} must be a positive integer, got {n:?}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--differential" => differential = true,
            "--slice" => slice_mode = true,
            "--seed" => {
                let n = it.next().ok_or_else(|| missing("--seed"))?;
                diff_cfg.seed = n.parse::<u64>().map_err(|_| {
                    CliError::Usage(format!("--seed must be a non-negative integer, got {n:?}"))
                })?;
            }
            "--programs" => {
                diff_cfg.programs = positive(
                    "--programs",
                    it.next().ok_or_else(|| missing("--programs"))?,
                )?;
            }
            "--scenarios" => {
                let n = it.next().ok_or_else(|| missing("--scenarios"))?;
                diff_cfg.scenarios = n.parse::<usize>().map_err(|_| {
                    CliError::Usage(format!(
                        "--scenarios must be a non-negative integer, got {n:?}"
                    ))
                })?;
            }
            "--workers" => {
                diff_cfg.workers =
                    positive("--workers", it.next().ok_or_else(|| missing("--workers"))?)?;
            }
            "--decode-workers" => {
                let n = it.next().ok_or_else(|| missing("--decode-workers"))?;
                diff_cfg.decode_workers = parse_decode_workers(n)?;
            }
            "--out-dir" => out_dir = Some(it.next().ok_or_else(|| missing("--out-dir"))?),
            "--metrics" => metrics_in = Some(it.next().ok_or_else(|| missing("--metrics"))?),
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or_else(|| missing("--metrics-out"))?);
            }
            "--metrics-format" => {
                metrics_format = match it
                    .next()
                    .ok_or_else(|| missing("--metrics-format"))?
                    .as_str()
                {
                    "prom" => MetricsFormat::Prom,
                    "json" => MetricsFormat::Json,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--metrics-format must be `prom` or `json`, got {other:?}"
                        )));
                    }
                };
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            path if input.is_none() => input = Some(path),
            extra => return Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
        }
    }

    let violations;
    let subject: String;
    if differential {
        if input.is_some() || metrics_in.is_some() {
            return Err(CliError::Usage(
                "--differential takes no trace argument (it generates its own programs)".into(),
            ));
        }
        if slice_mode {
            return Err(CliError::Usage(
                "--slice only applies when checking a trace file".into(),
            ));
        }
        if let Some(dir) = out_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::Io(format!("cannot create {dir}: {e}")))?;
        }
        let report = run_differential(&diff_cfg, out_dir.map(Path::new)).map_err(CliError::Io)?;
        println!(
            "differential oracle: {} program(s), {} episode scenario(s), \
             {} measured event(s), streaming vs reference vs sharded",
            report.programs, report.scenarios, report.events
        );
        violations = report.violations();
        subject = format!("differential oracle (seed {})", diff_cfg.seed);
    } else {
        let Some(input) = input else {
            return Err(CliError::Usage(CHECK_USAGE.into()));
        };
        if out_dir.is_some() {
            return Err(CliError::Usage(
                "--out-dir only applies with --differential".into(),
            ));
        }
        let file = File::open(input).map_err(|e| CliError::NoInput(format!("{input}: {e}")))?;
        // Checkpoint files share the lint entry point: sniff the magic
        // and route to the chain validator instead of the trace linter.
        {
            use std::io::{Read as _, Seek as _};
            let mut file = &file;
            let mut magic = [0u8; 8];
            let n = file.read(&mut magic).unwrap_or(0);
            file.seek(std::io::SeekFrom::Start(0))
                .map_err(|e| CliError::Io(format!("{input}: {e}")))?;
            if is_checkpoint_magic(&magic[..n]) {
                if metrics_in.is_some() {
                    return Err(CliError::Usage(
                        "--metrics does not apply to checkpoint files".into(),
                    ));
                }
                let (lint, found) = lint_checkpoint(Path::new(input)).map_err(CliError::NoInput)?;
                println!(
                    "checked {input}: v{} checkpoint, {} delta record(s), \
                     {} position(s) seen, chain pass",
                    lint.version, lint.delta_records, lint.positions_seen
                );
                return finish_check(found, input.to_string(), metrics_out, metrics_format);
            }
        }
        let reader = AnyTraceReader::open(BufReader::new(file))
            .map_err(|e| CliError::from(e).prefixed(input))?;
        let kind = reader.kind();
        // Measured/actual traces get the structural lint; approximated
        // reports additionally get the §4.2.3 conservation rules (they
        // are still traces, so the structural rules apply to them too).
        // `--slice` relaxes both to the projection rules: slices punch
        // holes in seq numbers and cut episodes by design (QUERIES.md).
        let mut linter = if slice_mode {
            TraceLinter::for_slice()
        } else {
            TraceLinter::new()
        };
        let mut report_pass =
            (kind == TraceKind::Approximated && !slice_mode).then(ReportChecker::new);
        let mut events = 0usize;
        for item in reader {
            let e = item.map_err(|err| CliError::from(err).prefixed(input))?;
            linter.push(&e);
            if let Some(r) = &mut report_pass {
                r.push(&e);
            }
            events += 1;
        }
        let mut found = linter.finish();
        if let Some(r) = report_pass {
            found.extend(r.finish());
        }
        if let Some(mpath) = metrics_in {
            let text = std::fs::read_to_string(mpath)
                .map_err(|e| CliError::NoInput(format!("{mpath}: {e}")))?;
            found.extend(check_metrics(&text).map_err(CliError::Data)?);
        }
        let pass = if slice_mode {
            "slice lint"
        } else {
            match kind {
                TraceKind::Approximated => "lint + report invariants",
                TraceKind::Measured | TraceKind::Actual => "lint",
            }
        };
        println!("checked {input}: {events} event(s), {pass} pass");
        violations = found;
        subject = input.to_string();
    }

    finish_check(violations, subject, metrics_out, metrics_format)
}

/// Shared tail of every `ppa check` mode: export the per-rule counts,
/// print the violations (capped), and map "any violation" to exit 65.
fn finish_check(
    violations: Vec<ppa::check::Violation>,
    subject: String,
    metrics_out: Option<&str>,
    metrics_format: MetricsFormat,
) -> Result<(), CliError> {
    use ppa::check::export_violations;
    use ppa::obs::{json_text, prometheus_text, Registry};

    if let Some(path) = metrics_out {
        let registry = Registry::new();
        export_violations(&registry, &violations);
        let snap = registry.snapshot();
        let text = match metrics_format {
            MetricsFormat::Prom => prometheus_text(&snap),
            MetricsFormat::Json => json_text(&snap),
        };
        std::fs::write(path, text).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        println!("metrics snapshot written to {path}");
    }

    if violations.is_empty() {
        println!("OK: no invariant violations");
        return Ok(());
    }
    for v in violations.iter().take(CHECK_PRINT_CAP) {
        println!("violation {v}");
    }
    if violations.len() > CHECK_PRINT_CAP {
        println!("... and {} more", violations.len() - CHECK_PRINT_CAP);
    }
    Err(CliError::Data(format!(
        "{subject}: {} invariant violation(s)",
        violations.len()
    )))
}

// --- serve / send ---

const SERVE_USAGE: &str = "usage: ppa serve --checkpoint-dir DIR [--listen ADDR]... \
                           [--unix-socket PATH] [--metrics-listen ADDR] \
                           [--max-sessions N] [--tenant-max-sessions N] [--tenant-max-eps N] \
                           [--tenant-max-resident-bytes N] [--checkpoint-every N] \
                           [--checkpoint-compact-every N] \
                           [--idle-timeout-ms N] [--lenient] [--reorder-window N] \
                           [--decode-workers N] \
                           [--overheads spec.json] [--log-format text|json] \
                           [--log-level info|debug] [--self-trace-dir DIR] \
                           [--metrics-every SECS]";

const SEND_USAGE: &str = "usage: ppa send <trace.{jsonl|bin}> (--to ADDR | --unix PATH) \
                          --tenant T --stream S [--frame-bytes N]";

/// `ppa serve`: run the multi-tenant streaming ingest daemon until
/// SIGTERM/SIGINT, checkpointing every live session on the way out.
/// The wire protocol is specified in PROTOCOL.md; the operational
/// lifecycle (eviction, resume, alerting) in OPERATIONS.md.
fn run_serve(args: &[String]) -> Result<(), CliError> {
    use ppa::server::{install_signal_handlers, Quotas, ServeConfig, Server};

    let mut config = ServeConfig {
        listen: Vec::new(),
        quotas: Quotas::default(),
        ..ServeConfig::default()
    };
    let mut checkpoint_dir: Option<&str> = None;
    let mut overheads_path: Option<&str> = None;
    let mut it = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs an argument"));
    let positive = |flag: &str, n: &str| {
        n.parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| CliError::Usage(format!("{flag} must be a positive integer, got {n:?}")))
    };
    let nonneg = |flag: &str, n: &str| {
        n.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("{flag} must be a non-negative integer, got {n:?}"))
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-dir" => {
                checkpoint_dir = Some(it.next().ok_or_else(|| missing("--checkpoint-dir"))?);
            }
            "--listen" => {
                config
                    .listen
                    .push(it.next().ok_or_else(|| missing("--listen"))?.clone());
            }
            "--unix-socket" => {
                config.unix_socket =
                    Some(it.next().ok_or_else(|| missing("--unix-socket"))?.into());
            }
            "--metrics-listen" => {
                config.metrics_listen = Some(
                    it.next()
                        .ok_or_else(|| missing("--metrics-listen"))?
                        .clone(),
                );
            }
            "--max-sessions" => {
                let n = it.next().ok_or_else(|| missing("--max-sessions"))?;
                config.quotas.max_sessions = nonneg("--max-sessions", n)? as usize;
            }
            "--tenant-max-sessions" => {
                let n = it.next().ok_or_else(|| missing("--tenant-max-sessions"))?;
                config.quotas.tenant_max_sessions = nonneg("--tenant-max-sessions", n)? as usize;
            }
            "--tenant-max-eps" => {
                let n = it.next().ok_or_else(|| missing("--tenant-max-eps"))?;
                config.quotas.tenant_max_eps = nonneg("--tenant-max-eps", n)?;
            }
            "--tenant-max-resident-bytes" => {
                let n = it
                    .next()
                    .ok_or_else(|| missing("--tenant-max-resident-bytes"))?;
                config.quotas.tenant_max_resident_bytes = nonneg("--tenant-max-resident-bytes", n)?;
            }
            "--checkpoint-every" => {
                let n = it.next().ok_or_else(|| missing("--checkpoint-every"))?;
                config.checkpoint_every = positive("--checkpoint-every", n)?;
            }
            "--checkpoint-compact-every" => {
                let n = it
                    .next()
                    .ok_or_else(|| missing("--checkpoint-compact-every"))?;
                config.checkpoint_compact_every = nonneg("--checkpoint-compact-every", n)? as usize;
            }
            "--idle-timeout-ms" => {
                let n = it.next().ok_or_else(|| missing("--idle-timeout-ms"))?;
                config.idle_timeout =
                    std::time::Duration::from_millis(positive("--idle-timeout-ms", n)?);
            }
            "--lenient" => config.lenient = true,
            "--reorder-window" => {
                let n = it.next().ok_or_else(|| missing("--reorder-window"))?;
                config.reorder_window = Some(nonneg("--reorder-window", n)?);
            }
            "--decode-workers" => {
                let n = it.next().ok_or_else(|| missing("--decode-workers"))?;
                config.decode_workers = parse_decode_workers(n)?;
            }
            "--overheads" => {
                overheads_path = Some(it.next().ok_or_else(|| missing("--overheads"))?);
            }
            "--log-format" => {
                let name = it.next().ok_or_else(|| missing("--log-format"))?;
                config.log_format = ppa::server::LogFormat::parse(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--log-format must be `text` or `json`, got {name:?}"
                    ))
                })?;
            }
            "--log-level" => {
                let name = it.next().ok_or_else(|| missing("--log-level"))?;
                config.log_level = ppa::server::LogLevel::parse(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--log-level must be `info` or `debug`, got {name:?}"
                    ))
                })?;
            }
            "--self-trace-dir" => {
                config.self_trace_dir =
                    Some(it.next().ok_or_else(|| missing("--self-trace-dir"))?.into());
            }
            "--metrics-every" => {
                let n = it.next().ok_or_else(|| missing("--metrics-every"))?;
                config.metrics_every = Some(std::time::Duration::from_secs(positive(
                    "--metrics-every",
                    n,
                )?));
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            extra => return Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
        }
    }
    // The checkpoint directory is the daemon's only durable state — no
    // sensible default exists, so it is the one required flag.
    config.checkpoint_dir = checkpoint_dir
        .ok_or_else(|| CliError::Usage(SERVE_USAGE.into()))?
        .into();
    config.overheads = match overheads_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| CliError::NoInput(format!("{p}: {e}")))?;
            serde_json::from_str(&text).map_err(|e| CliError::Data(format!("{p}: {e}")))?
        }
        None => ppa::trace::OverheadSpec::alliant_default(),
    };
    if config.listen.is_empty() && config.unix_socket.is_none() {
        config.listen.push("127.0.0.1:7223".to_string());
    }

    install_signal_handlers();
    let server = Server::bind(config).map_err(|e| CliError::Io(format!("bind: {e}")))?;
    let log = server.ctx().log();
    for addr in server.tcp_addrs() {
        let addr = addr.to_string();
        log.info(
            &format!("listening on tcp {addr}"),
            "listening_tcp",
            &[("addr", ppa::server::LogValue::Str(&addr))],
        );
    }
    if let Some(path) = server.ctx().config.unix_socket.as_ref() {
        let path = path.display().to_string();
        log.info(
            &format!("listening on unix {path}"),
            "listening_unix",
            &[("path", ppa::server::LogValue::Str(&path))],
        );
    }
    if let Some(addr) = server.metrics_addr() {
        let addr = addr.to_string();
        log.info(
            &format!("metrics on http://{addr}"),
            "metrics_listening",
            &[("addr", ppa::server::LogValue::Str(&addr))],
        );
    }
    log.info("ready", "ready", &[]);
    server
        .run()
        .map_err(|e| CliError::Io(format!("serve: {e}")))?;
    Ok(())
}

/// `ppa send`: upload one trace file to a running `ppa serve` daemon as
/// a `(tenant, stream)` session and print the server's final summary.
fn run_send(args: &[String]) -> Result<(), CliError> {
    use ppa::server::{send_trace, ClientError, SendOutcome, Target, DEFAULT_FRAME_BYTES};

    let mut trace: Option<&str> = None;
    let mut target: Option<Target> = None;
    let mut tenant: Option<&str> = None;
    let mut stream_id: Option<&str> = None;
    let mut frame_bytes = DEFAULT_FRAME_BYTES;
    let mut it = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs an argument"));
    while let Some(a) = it.next() {
        match a.as_str() {
            "--to" => {
                target = Some(Target::Tcp(
                    it.next().ok_or_else(|| missing("--to"))?.clone(),
                ));
            }
            "--unix" => {
                target = Some(Target::Unix(
                    it.next().ok_or_else(|| missing("--unix"))?.into(),
                ));
            }
            "--tenant" => tenant = Some(it.next().ok_or_else(|| missing("--tenant"))?),
            "--stream" => stream_id = Some(it.next().ok_or_else(|| missing("--stream"))?),
            "--frame-bytes" => {
                let n = it.next().ok_or_else(|| missing("--frame-bytes"))?;
                frame_bytes = n.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--frame-bytes must be a positive integer, got {n:?}"
                    ))
                })?;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            path if trace.is_none() => trace = Some(path),
            extra => return Err(CliError::Usage(format!("unexpected argument {extra:?}"))),
        }
    }
    let trace = trace.ok_or_else(|| CliError::Usage(SEND_USAGE.into()))?;
    let target = target.ok_or_else(|| CliError::Usage(SEND_USAGE.into()))?;
    let tenant = tenant.ok_or_else(|| CliError::Usage(SEND_USAGE.into()))?;
    let stream_id = stream_id.ok_or_else(|| CliError::Usage(SEND_USAGE.into()))?;
    // Distinguish "trace file missing" (66) from socket trouble (74)
    // before the upload mixes both into one I/O stream.
    if !std::path::Path::new(trace).is_file() {
        return Err(CliError::NoInput(format!("{trace}: no such file")));
    }

    match send_trace(
        &target,
        tenant,
        stream_id,
        std::path::Path::new(trace),
        frame_bytes,
    ) {
        Ok(SendOutcome::Done {
            resumed_from,
            summary,
        }) => {
            if resumed_from > 0 {
                println!("send: resumed {tenant}/{stream_id} from {resumed_from} events");
            }
            println!(
                "send: {tenant}/{stream_id} done ({} report events, {} awaits, {} barriers, \
                 last t={} ns, {} gaps, {} events lost)",
                summary.events,
                summary.awaits,
                summary.barriers,
                summary.last_time_ns,
                summary.gaps,
                summary.events_lost
            );
            Ok(())
        }
        Err(ClientError::Io(e)) => Err(CliError::Io(format!("{trace}: {e}"))),
        Err(e @ ClientError::Protocol(_)) => Err(CliError::Data(e.to_string())),
        Err(e @ ClientError::Server { .. }) => Err(CliError::Data(e.to_string())),
    }
}

impl CliError {
    /// Prefixes the message with the file it concerns (for input errors
    /// whose underlying message does not name the file).
    fn prefixed(self, path: &str) -> CliError {
        match self {
            CliError::Usage(m) => CliError::Usage(format!("{path}: {m}")),
            CliError::Data(m) => CliError::Data(format!("{path}: {m}")),
            CliError::NoInput(m) => CliError::NoInput(format!("{path}: {m}")),
            CliError::Io(m) => CliError::Io(format!("{path}: {m}")),
        }
    }
}
