//! End-to-end tests of the fault-tolerant streaming pipeline:
//! kill-and-resume must reproduce the uninterrupted report byte for
//! byte, `--lenient` must turn undecodable input into exit-0 runs with
//! every lost event accounted for, `--reorder-window` must absorb
//! almost-sorted input, and the new flags must map their misuse onto the
//! documented sysexits codes.

use ppa::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

/// A DOACROSS workload big enough that a mid-run kill is plausible and
/// checkpoint cadences divide it many times over.
fn measured_jsonl(dir: &std::path::Path, name: &str, iters: u64) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("fault-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, iters, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join(name);
    let file = fs::File::create(&path).expect("create measured trace");
    ppa::trace::write_jsonl(&measured.trace, file).expect("write measured trace");
    path
}

fn ppa_cmd(sub: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .arg(sub)
        .args(args)
        .output()
        .expect("run ppa")
}

fn to_bin(input: &std::path::Path, bin: &std::path::Path, block_events: &str) {
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--block-events",
            block_events,
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
}

#[test]
fn kill_and_resume_reproduces_the_report_byte_for_byte() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "kill_measured.jsonl", 512);
    let bin = dir.join("kill_measured.bin");
    to_bin(&input, &bin, "64");

    // The uninterrupted reference report.
    let reference = dir.join("kill_reference.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            bin.to_str().unwrap(),
            "--stream",
            "--out",
            reference.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Start a checkpointed run and kill it as soon as the first
    // checkpoint lands. Whether the kill strikes mid-run or after the
    // run finished, resume must converge to the same report: it
    // truncates the report to the checkpoint's flushed offset and
    // re-analyzes the rest of the input.
    let report = dir.join("kill_report.jsonl");
    let ckpt = dir.join("kill_state.ckpt");
    fs::remove_file(&ckpt).ok();
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppa"))
        .args([
            "analyze",
            bin.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "64",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed analyze");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !ckpt.exists() {
        if let Some(status) = child.try_wait().expect("poll child") {
            assert!(
                ckpt.exists(),
                "child exited ({status:?}) without writing a checkpoint"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().ok(); // SIGKILL — no flush, no atexit
    child.wait().expect("reap child");

    // The checkpoint on disk is complete and valid (atomic replace).
    let cp = ppa::analysis::read_checkpoint(&ckpt).expect("checkpoint validates");
    let flushed = fs::metadata(&report).expect("report exists").len();
    assert!(
        cp.sink.bytes_flushed <= flushed,
        "checkpoint claims more than was written"
    );

    let out = ppa_cmd(
        "analyze",
        &[
            bin.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "resumed report differs from the uninterrupted one"
    );
}

#[test]
fn resume_from_every_checkpoint_is_exact_without_a_kill() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "resume_measured.jsonl", 96);

    let reference = dir.join("resume_reference.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            reference.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Run to completion while checkpointing; the surviving file is the
    // last checkpoint taken. Resuming from it re-analyzes the final
    // stretch over the finished report — still byte-identical.
    let report = dir.join("resume_report.jsonl");
    let ckpt = dir.join("resume_state.ckpt");
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "100",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    assert_eq!(fs::read(&report).unwrap(), fs::read(&reference).unwrap());

    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "report after resume differs"
    );
}

#[test]
fn lenient_accounts_every_event_lost_to_a_corrupted_block() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "lenient_measured.jsonl", 128);
    let bin = dir.join("lenient_measured.bin");
    to_bin(&input, &bin, "32");

    // Corrupt one payload byte in the middle of the file.
    let mut bytes = fs::read(&bin).expect("read bin");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    let corrupt = dir.join("lenient_corrupt.bin");
    fs::write(&corrupt, &bytes).expect("write corrupt bin");

    // Strict: bad data, exit 65.
    let out = ppa_cmd("analyze", &[corrupt.to_str().unwrap(), "--stream"]);
    assert_eq!(out.status.code(), Some(65), "{:?}", out);

    // Lenient: exit 0, the gap is reported with its loss accounted.
    let out = ppa_cmd(
        "analyze",
        &[corrupt.to_str().unwrap(), "--stream", "--lenient"],
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("decode gaps:"), "stdout: {stdout}");
    assert!(stdout.contains("event(s) lost"), "stdout: {stdout}");
}

#[test]
fn lenient_jsonl_loses_exactly_the_wrecked_line() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "lenient_line.jsonl", 64);
    let mut bytes = fs::read(&input).expect("read measured");
    let newlines: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] == b'\n').collect();
    // Wreck the third event line (the header is line 1).
    for b in &mut bytes[newlines[2] + 1..newlines[3]] {
        *b = b'?';
    }
    let bad = dir.join("lenient_line_bad.jsonl");
    fs::write(&bad, &bytes).expect("write wrecked");

    let out = ppa_cmd("analyze", &[bad.to_str().unwrap(), "--stream", "--lenient"]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("decode gaps: 1 gap(s), 1 event(s) lost"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("malformed-line"), "stdout: {stdout}");
}

#[test]
fn reorder_window_absorbs_almost_sorted_input() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "reorder_measured.jsonl", 64);

    let reference = dir.join("reorder_reference.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            reference.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Swap two adjacent event lines: the stream is now out of order.
    let text = fs::read_to_string(&input).expect("read measured");
    let mut lines: Vec<&str> = text.lines().collect();
    let k = lines.len() / 2;
    lines.swap(k, k + 1);
    let shuffled = dir.join("reorder_shuffled.jsonl");
    fs::write(&shuffled, lines.join("\n") + "\n").expect("write shuffled");

    // Without tolerance: broken total order, exit 65.
    let out = ppa_cmd("analyze", &[shuffled.to_str().unwrap(), "--stream"]);
    assert_eq!(out.status.code(), Some(65), "{:?}", out);

    // With a window: re-sorted back into the reference analysis.
    let report = dir.join("reorder_report.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            shuffled.to_str().unwrap(),
            "--stream",
            "--reorder-window",
            "8",
            "--out",
            report.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("re-sorted"), "stdout: {stdout}");
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "reordered input must analyze to the reference report"
    );
}

#[test]
fn fault_flags_map_misuse_onto_exit_64() {
    // All fault-tolerance flags require the streaming pipeline.
    for args in [
        &["t.jsonl", "--lenient"][..],
        &["t.jsonl", "--reorder-window", "4"][..],
        &["t.jsonl", "--checkpoint", "c.ckpt"][..],
        &["t.jsonl", "--resume", "c.ckpt"][..],
    ] {
        let out = ppa_cmd("analyze", args);
        assert_eq!(out.status.code(), Some(64), "{args:?}: {out:?}");
    }
    // Checkpointing needs a resumable (JSONL) report to anchor to.
    let out = ppa_cmd(
        "analyze",
        &["t.jsonl", "--stream", "--checkpoint", "c.ckpt"],
    );
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
    let out = ppa_cmd(
        "analyze",
        &[
            "t.jsonl",
            "--stream",
            "--checkpoint",
            "c.ckpt",
            "--out",
            "r.bin",
            "--format",
            "bin",
        ],
    );
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
    // Cadence without checkpointing is meaningless.
    let out = ppa_cmd(
        "analyze",
        &["t.jsonl", "--stream", "--checkpoint-every", "10"],
    );
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
}

#[test]
fn degenerate_flag_values_are_usage_errors() {
    // `--checkpoint-every 0` would mean "never checkpoint" at best and
    // a divide-by-zero cadence at worst; it must be exit 64, not a
    // silently accepted u64.
    let out = ppa_cmd(
        "analyze",
        &[
            "t.jsonl",
            "--stream",
            "--checkpoint",
            "c.ckpt",
            "--checkpoint-every",
            "0",
        ],
    );
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--checkpoint-every"), "stderr: {stderr}");

    // Same for `--block-events 0`: a binary writer cannot frame
    // zero-event blocks.
    let out = ppa_cmd(
        "convert",
        &["t.jsonl", "t.bin", "--to", "bin", "--block-events", "0"],
    );
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--block-events"), "stderr: {stderr}");
}

/// The three fault-tolerance flags together: a corrupted, shuffled
/// binary trace analyzed under `--lenient --reorder-window`, killed
/// mid-run at the first checkpoint, and resumed with the same flags
/// must converge to the report of the uninterrupted run — which means
/// the reorder buffer's in-flight events and the gap accounting both
/// survive the checkpoint round-trip.
#[test]
fn kill_and_resume_with_lenient_and_reorder_window_is_byte_identical() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "trifecta_measured.jsonl", 512);

    // Shuffle: swap two adjacent event lines in the first quarter, so
    // the disorder lands before the first checkpoint cadence boundary
    // and the reorder buffer is non-trivially exercised early.
    let text = fs::read_to_string(&input).expect("read measured");
    let mut lines: Vec<&str> = text.lines().collect();
    let k = lines.len() / 4;
    lines.swap(k, k + 1);
    let shuffled = dir.join("trifecta_shuffled.jsonl");
    fs::write(&shuffled, lines.join("\n") + "\n").expect("write shuffled");

    // Binary, small blocks; then corrupt one payload byte at ~3/4 of
    // the file so the damaged block is far from the shuffled region.
    let bin = dir.join("trifecta.bin");
    to_bin(&shuffled, &bin, "64");
    let mut bytes = fs::read(&bin).expect("read bin");
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0xff;
    let corrupt = dir.join("trifecta_corrupt.bin");
    fs::write(&corrupt, &bytes).expect("write corrupt bin");

    let fault_flags = ["--lenient", "--reorder-window", "8"];

    // The uninterrupted reference run under the same fault flags.
    let reference = dir.join("trifecta_reference.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            &[
                corrupt.to_str().unwrap(),
                "--stream",
                "--out",
                reference.to_str().unwrap(),
            ],
            &fault_flags[..],
        ]
        .concat(),
    );
    assert!(out.status.success(), "{:?}", out);

    // Checkpointed run, killed as soon as the first checkpoint lands.
    let report = dir.join("trifecta_report.jsonl");
    let ckpt = dir.join("trifecta_state.ckpt");
    fs::remove_file(&ckpt).ok();
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppa"))
        .args([
            "analyze",
            corrupt.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "64",
        ])
        .args(fault_flags)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed analyze");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !ckpt.exists() {
        if let Some(status) = child.try_wait().expect("poll child") {
            assert!(
                ckpt.exists(),
                "child exited ({status:?}) without writing a checkpoint"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().ok(); // SIGKILL — no flush, no atexit
    child.wait().expect("reap child");

    // Resume with all three flags still in force.
    let out = ppa_cmd(
        "analyze",
        &[
            &[
                corrupt.to_str().unwrap(),
                "--stream",
                "--out",
                report.to_str().unwrap(),
                "--resume",
                ckpt.to_str().unwrap(),
            ],
            &fault_flags[..],
        ]
        .concat(),
    );
    assert!(out.status.success(), "{:?}", out);
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "resumed lenient+reorder report differs from the uninterrupted one"
    );
}

/// SIGKILL while the incremental checkpoint chain already holds delta
/// records: resume must reassemble the chain (full snapshot + deltas),
/// and a torn delta tail — the bytes a kill can leave mid-append — must
/// fall back to the longest valid prefix, both converging to the
/// uninterrupted report byte for byte.
#[test]
fn kill_mid_delta_chain_and_torn_tail_resume_byte_identical() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "delta_measured.jsonl", 512);
    let bin = dir.join("delta_measured.bin");
    to_bin(&input, &bin, "64");

    let reference = dir.join("delta_reference.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            bin.to_str().unwrap(),
            "--stream",
            "--out",
            reference.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Tight cadence and a compaction period large enough that the kill
    // lands while the chain is full-snapshot + deltas, not right after
    // a compaction.
    let report = dir.join("delta_report.jsonl");
    let ckpt = dir.join("delta_state.ckpt");
    fs::remove_file(&ckpt).ok();
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppa"))
        .args([
            "analyze",
            bin.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "32",
            "--checkpoint-compact-every",
            "64",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed analyze");
    // Wait until the chain holds at least one delta record (scan
    // tolerates a concurrent append as a torn tail), then SIGKILL.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        if let Ok(scan) = ppa::analysis::scan_checkpoint(&ckpt) {
            if scan.delta_records >= 1 {
                break;
            }
        }
        if child.try_wait().expect("poll child").is_some() {
            // Finished before we could kill it: the surviving chain must
            // still hold deltas for the test to mean anything.
            let scan = ppa::analysis::scan_checkpoint(&ckpt).expect("chain scans");
            assert!(scan.delta_records >= 1, "no deltas in finished chain");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no delta record within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    child.kill().ok(); // SIGKILL — no flush, no atexit
    child.wait().expect("reap child");

    // The chain on disk is a v2 file whose valid prefix reassembles.
    let bytes = fs::read(&ckpt).expect("read chain");
    assert!(bytes.starts_with(b"PPACKPT2"), "not a v2 chain");
    ppa::analysis::read_checkpoint(&ckpt).expect("chain reassembles");

    let out = ppa_cmd(
        "analyze",
        &[
            bin.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "resume from a delta chain differs from the uninterrupted report"
    );

    // Tear the tail mid-record — the shape a kill leaves when it lands
    // inside an append — and resume again over the finished report.
    // The torn suffix must be ignored, the prefix resumed from, and the
    // report re-converge.
    if bytes.len() > 8 + 13 {
        fs::write(&ckpt, &bytes[..bytes.len() - 7]).expect("write torn chain");
        let out = ppa_cmd(
            "analyze",
            &[
                bin.to_str().unwrap(),
                "--stream",
                "--out",
                report.to_str().unwrap(),
                "--resume",
                ckpt.to_str().unwrap(),
            ],
        );
        assert!(out.status.success(), "{:?}", out);
        assert_eq!(
            fs::read(&report).unwrap(),
            fs::read(&reference).unwrap(),
            "resume from a torn delta tail differs from the uninterrupted report"
        );
    }
}

/// `--progress` must stay silent when stderr is not a terminal — a
/// piped run's stderr is machine-read (CI logs, scripted captures) and
/// the ticker would pollute it. `--progress=force` is the escape hatch.
#[test]
fn progress_ticker_stays_silent_when_stderr_is_piped() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "progress_measured.jsonl", 64);

    // `Output` pipes stderr, so `IsTerminal` is false here by construction.
    let out = ppa_cmd(
        "analyze",
        &[input.to_str().unwrap(), "--stream", "--progress"],
    );
    assert!(out.status.success(), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("progress:"),
        "ticker leaked into piped stderr: {stderr}"
    );

    let out = ppa_cmd(
        "analyze",
        &[input.to_str().unwrap(), "--stream", "--progress=force"],
    );
    assert!(out.status.success(), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("progress:"),
        "--progress=force must tick even when piped: {stderr}"
    );
}

#[test]
fn resume_rejects_missing_and_corrupt_checkpoints() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "ckerr_measured.jsonl", 16);
    let report = dir.join("ckerr_report.jsonl");

    // Missing checkpoint file: missing input, exit 66.
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--resume",
            dir.join("ckerr_nonexistent.ckpt").to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(66), "{:?}", out);

    // Corrupt checkpoint: bad data, exit 65.
    let bad = dir.join("ckerr_corrupt.ckpt");
    fs::write(&bad, b"PPACKPT1 this is not a checkpoint payload").unwrap();
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--resume",
            bad.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(65), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt checkpoint"), "stderr: {stderr}");
}

/// A lock-bearing measured trace whose critical-section loop is
/// perfectly periodic, so redundancy suppression collapses both
/// processors' patterns into repeat records.
fn periodic_lock_jsonl(dir: &std::path::Path, name: &str, rounds: u64) -> PathBuf {
    use ppa::trace::{write_jsonl, LockId, StatementId};
    let mut events = Vec::new();
    for r in 0..rounds {
        let t = 1_000 + r * 400;
        let ev = |dt: u64, ds: u64, kind: EventKind| {
            Event::new(
                Time::from_nanos(t + dt),
                ProcessorId((ds == 3) as u16),
                4 * r + ds,
                kind,
            )
        };
        events.push(ev(0, 0, EventKind::LockAcquire { lock: LockId(7) }));
        events.push(ev(
            100,
            1,
            EventKind::Statement {
                stmt: StatementId(5),
            },
        ));
        events.push(ev(200, 2, EventKind::LockRelease { lock: LockId(7) }));
        events.push(ev(
            300,
            3,
            EventKind::Statement {
                stmt: StatementId(9),
            },
        ));
    }
    let trace = Trace::from_events(TraceKind::Measured, events);
    let path = dir.join(name);
    let file = fs::File::create(&path).expect("create lock trace");
    write_jsonl(&trace, file).expect("write lock trace");
    path
}

/// Satellite regression: a suppressed *and* shuffled lock-bearing binary
/// trace analyzed under `--reorder-window` must reproduce the plain
/// (unsuppressed, sorted) run byte for byte. The reorder buffer restores
/// total order *before* the expander replays record occurrences, so the
/// analyzer sees the exact original event sequence.
#[test]
fn suppressed_and_shuffled_lock_trace_analyzes_byte_identical_to_plain() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = periodic_lock_jsonl(&dir, "supshuf_plain.jsonl", 48);

    // Normalize the plain fixture through an identity slice: sliced
    // output carries an advisory header count of 0 (unknown), and the
    // suppressed leg below inherits the same container property — so
    // the two reports can be compared byte for byte, header included.
    let plain = dir.join("supshuf_plain0.jsonl");
    let out = ppa_cmd(
        "slice",
        &[input.to_str().unwrap(), plain.to_str().unwrap(), "--force"],
    );
    assert!(out.status.success(), "{:?}", out);

    // Reference: analyze the plain trace.
    let reference = dir.join("supshuf_reference.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            plain.to_str().unwrap(),
            "--stream",
            "--out",
            reference.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Suppress: the periodic critical-section loop must actually
    // collapse, or the regression would be vacuous.
    let suppressed = dir.join("supshuf_suppressed.jsonl");
    let out = ppa_cmd(
        "slice",
        &[
            input.to_str().unwrap(),
            suppressed.to_str().unwrap(),
            "--suppress",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("suppression: 2 repeat record(s)"),
        "stdout: {stdout}"
    );

    // Shuffle the suppressed stream: swap the first two event lines
    // (line 0 is the header) and the two trailing repeat records.
    let text = fs::read_to_string(&suppressed).expect("read suppressed");
    let mut lines: Vec<&str> = text.lines().collect();
    let last = lines.len() - 1;
    lines.swap(1, 2);
    lines.swap(last - 1, last);
    let shuffled = dir.join("supshuf_shuffled.jsonl");
    fs::write(&shuffled, lines.join("\n") + "\n").expect("write shuffled");
    let bin = dir.join("supshuf_shuffled.bin");
    to_bin(&shuffled, &bin, "64");

    // Without tolerance the broken total order is bad data (exit 65) —
    // expanded occurrences may not bypass the ordering contract.
    let out = ppa_cmd("analyze", &[bin.to_str().unwrap(), "--stream"]);
    assert_eq!(out.status.code(), Some(65), "{:?}", out);

    // With a window: re-sort, then expand, then analyze — byte-identical
    // to the plain run.
    let report = dir.join("supshuf_report.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            bin.to_str().unwrap(),
            "--stream",
            "--reorder-window",
            "8",
            "--out",
            report.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("re-sorted"), "stdout: {stdout}");
    assert!(
        stdout.contains("expanded 2 repeat record(s)"),
        "stdout: {stdout}"
    );
    assert_eq!(
        fs::read(&report).unwrap(),
        fs::read(&reference).unwrap(),
        "suppressed+shuffled run must match the plain run byte for byte"
    );
}

/// Satellite regression: a PPACKPT2 checkpoint stamped with a *newer*
/// snapshot version must refuse to resume with the typed, named error
/// (bad data, exit 65) instead of attempting a garbage restore.
#[test]
fn resume_from_future_snapshot_version_exits_65_with_named_error() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "future_measured.jsonl", 96);
    let report = dir.join("future_report.jsonl");
    let ckpt = dir.join("future_state.ckpt");
    fs::remove_file(&ckpt).ok();
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "100",
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Forward-version fixture: bump the snapshot version byte (offset 8,
    // right after the PPACKPT2 magic) to one this reader does not know.
    let mut bytes = fs::read(&ckpt).expect("read checkpoint");
    assert_eq!(bytes[8], 2, "snapshot version byte moved?");
    bytes[8] = 3;
    fs::write(&ckpt, &bytes).expect("write future checkpoint");

    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(65), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("snapshot version 3 is newer than the supported version 2"),
        "stderr: {stderr}"
    );
}
