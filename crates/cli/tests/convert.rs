//! End-to-end tests of `ppa convert` and the format-transparent
//! `ppa analyze`: a jsonl -> bin -> jsonl round trip must reproduce the
//! original file byte for byte, binary output must be much smaller than
//! the JSONL it came from, errors must map onto the documented sysexits
//! codes, and `analyze` (batch and `--stream`) must produce identical
//! analysis output whichever format carries the measured trace.

use ppa::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn measured_jsonl(dir: &std::path::Path) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("convert-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, 64, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join("convert_measured.jsonl");
    let file = fs::File::create(&path).expect("create measured.jsonl");
    ppa::trace::write_jsonl(&measured.trace, file).expect("write measured.jsonl");
    path
}

fn ppa_cmd(sub: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .arg(sub)
        .args(args)
        .output()
        .expect("run ppa")
}

#[test]
fn convert_round_trip_is_byte_identical() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let bin = dir.join("rt.bin");
    let back = dir.join("rt.jsonl");

    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let out = ppa_cmd(
        "convert",
        &[
            bin.to_str().unwrap(),
            back.to_str().unwrap(),
            "--to",
            "jsonl",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    let original = fs::read(&input).expect("read original");
    let round_tripped = fs::read(&back).expect("read round-tripped");
    assert!(!original.is_empty());
    assert_eq!(
        original, round_tripped,
        "jsonl -> bin -> jsonl byte identity"
    );

    // The binary encoding must be dramatically smaller (≤ 40% is the
    // acceptance bar; delta+varint encoding usually does far better).
    let bin_len = fs::metadata(&bin).expect("stat bin").len();
    assert!(
        bin_len * 5 <= original.len() as u64 * 2,
        "binary {} bytes vs jsonl {} bytes",
        bin_len,
        original.len()
    );
}

#[test]
fn convert_respects_block_events() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let bin = dir.join("small_blocks.bin");
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--block-events",
            "16",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    // Smaller blocks -> more frames, still the same decoded events.
    let decoded = ppa::trace::read_binary(fs::File::open(&bin).expect("open bin")).unwrap();
    let original = ppa::trace::read_jsonl(fs::File::open(&input).expect("open jsonl")).unwrap();
    assert_eq!(decoded, original);
}

#[test]
fn convert_reports_usage_errors_with_exit_64() {
    let out = ppa_cmd("convert", &[]);
    assert_eq!(out.status.code(), Some(64));
    // Missing --to.
    let out = ppa_cmd("convert", &["a.jsonl", "b.bin"]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_cmd("convert", &["a.jsonl", "b.bin", "--to", "csv"]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_cmd(
        "convert",
        &["a.jsonl", "b.jsonl", "--to", "jsonl", "--block-events", "8"],
    );
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn convert_maps_input_errors_onto_sysexits() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let out = ppa_cmd(
        "convert",
        &["/nonexistent/trace.jsonl", "out.bin", "--to", "bin"],
    );
    assert_eq!(out.status.code(), Some(66));

    // A corrupted binary block is bad data: exit 65, with the block index.
    let input = measured_jsonl(&dir);
    let bin = dir.join("corrupt_src.bin");
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let mut bytes = fs::read(&bin).expect("read bin");
    let n = bytes.len();
    bytes[n - 3] ^= 0xff;
    let corrupt = dir.join("corrupt.bin");
    fs::write(&corrupt, &bytes).expect("write corrupt bin");
    let sink = dir.join("corrupt_out.jsonl");
    let out = ppa_cmd(
        "convert",
        &[
            corrupt.to_str().unwrap(),
            sink.to_str().unwrap(),
            "--to",
            "jsonl",
            "--force",
        ],
    );
    assert_eq!(out.status.code(), Some(65), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("CRC"), "stderr: {stderr}");
}

#[test]
fn analyze_accepts_both_formats_with_identical_output() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let bin = dir.join("analyze_src.bin");
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    // Batch and streaming, from JSONL and from binary: four runs, one
    // approximated trace.
    let mut outputs = Vec::new();
    for (src, tag) in [(&input, "jsonl"), (&bin, "bin")] {
        for flags in [&[][..], &["--stream"][..]] {
            let approx = dir.join(format!(
                "approx_{tag}_{}.jsonl",
                if flags.is_empty() { "batch" } else { "stream" }
            ));
            let mut args = vec![src.to_str().unwrap()];
            args.extend_from_slice(flags);
            args.extend_from_slice(&["--out", approx.to_str().unwrap()]);
            let out = ppa_cmd("analyze", &args);
            assert!(out.status.success(), "{tag} {flags:?}: {:?}", out);
            outputs.push(fs::read(&approx).expect("read approx"));
        }
    }
    assert!(!outputs[0].is_empty());
    for o in &outputs[1..] {
        assert_eq!(&outputs[0], o, "same analysis whichever format/path");
    }
}

#[test]
fn analyze_writes_binary_output_on_request() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let approx_jl = dir.join("approx_fmt.jsonl");
    let approx_bin = dir.join("approx_fmt.bin");

    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--out",
            approx_jl.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--out",
            approx_bin.to_str().unwrap(),
            "--format",
            "bin",
        ],
    );
    assert!(out.status.success(), "{:?}", out);

    let from_jl = ppa::trace::read_jsonl(fs::File::open(&approx_jl).unwrap()).unwrap();
    let from_bin = ppa::trace::read_binary(fs::File::open(&approx_bin).unwrap()).unwrap();
    assert_eq!(from_jl, from_bin);
}

#[test]
fn convert_refuses_to_overwrite_without_force() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let target = dir.join("precious.bin");

    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            target.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
    let original = fs::read(&target).expect("read first conversion");

    // Second run without --force: refused, file untouched.
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            target.to_str().unwrap(),
            "--to",
            "bin",
        ],
    );
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("already exists"), "stderr: {stderr}");
    assert!(stderr.contains("--force"), "stderr: {stderr}");
    assert_eq!(
        fs::read(&target).unwrap(),
        original,
        "output must be untouched"
    );

    // With --force: overwritten.
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            target.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
}
