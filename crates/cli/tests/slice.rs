//! End-to-end tests of `ppa slice` and `ppa analyze --slice`: slicing
//! must agree with a naive in-memory filter on both container formats,
//! a time window on a large binary fixture must skip most blocks
//! undecoded (counted in the summary), suppression must round-trip
//! through `--expand`, and the documented sysexits codes must hold.

use ppa::prelude::*;
use ppa::slice::SliceSpec;
use ppa::trace::{
    read_trace, write_binary, write_jsonl, StatementId, SyncTag, SyncVarId, TraceFormat,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmpdir() -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
}

fn ppa_cmd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .args(args)
        .output()
        .expect("run ppa")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A synthetic multi-processor measured trace: statement-dominated with
/// periodic sync, irregular but monotone timestamps.
fn synthetic_trace(n: usize) -> Trace {
    let mut events = Vec::with_capacity(n);
    let mut time = 5u64;
    for i in 0..n {
        time += (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1500 + 1;
        let kind = match i % 61 {
            0 => EventKind::Advance {
                var: SyncVarId((i % 3) as u32),
                tag: SyncTag((i / 61) as i64),
            },
            1 => EventKind::AwaitBegin {
                var: SyncVarId((i % 3) as u32),
                tag: SyncTag((i / 61) as i64 - 1),
            },
            2 => EventKind::AwaitEnd {
                var: SyncVarId((i % 3) as u32),
                tag: SyncTag((i / 61) as i64 - 1),
            },
            _ => EventKind::Statement {
                stmt: StatementId((i % 23) as u32),
            },
        };
        events.push(Event::new(
            Time::from_nanos(time),
            ProcessorId((i % 8) as u16),
            i as u64,
            kind,
        ));
    }
    Trace::from_events(TraceKind::Measured, events)
}

fn write_fixture(path: &Path, trace: &Trace, format: TraceFormat) {
    let file = fs::File::create(path).expect("create fixture");
    match format {
        TraceFormat::Jsonl => write_jsonl(trace, file).expect("write fixture"),
        TraceFormat::Binary => write_binary(trace, file).expect("write fixture"),
    }
}

/// A measured trace from a real instrumented program, for `analyze`.
fn measured_jsonl(dir: &Path, name: &str) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("slice-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, 48, |body| {
            body.compute("head", 300)
                .await_var(v, -1)
                .compute("cs", 60)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join(name);
    let file = fs::File::create(&path).expect("create measured fixture");
    write_jsonl(&measured.trace, file).expect("write measured fixture");
    path
}

#[test]
fn slice_matches_naive_filter_on_both_formats() {
    let dir = tmpdir();
    let trace = synthetic_trace(20_000);
    let first = trace.events().first().unwrap().time.as_nanos();
    let last = trace.events().last().unwrap().time.as_nanos();
    let (lo, hi) = (first + (last - first) / 4, first + 3 * (last - first) / 4);
    let expr = format!("window={lo}ns..{hi}ns procs=0,2,4..5");
    let spec = SliceSpec::parse(&expr).expect("valid expression");

    for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
        let ext = match format {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "bin",
        };
        let input = dir.join(format!("filter_in.{ext}"));
        let output = dir.join(format!("filter_out.{ext}"));
        write_fixture(&input, &trace, format);
        let out = ppa_cmd(&[
            "slice",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--expr",
            &expr,
            "--force",
        ]);
        assert!(out.status.success(), "{out:?}");

        let sliced = read_trace(fs::File::open(&output).unwrap()).expect("readable slice");
        let expected: Vec<&Event> = trace.iter().filter(|e| spec.matches(e)).collect();
        assert_eq!(sliced.len(), expected.len(), "{ext}");
        for (got, want) in sliced.iter().zip(&expected) {
            assert_eq!(got, *want, "{ext}");
        }

        // The slice passes the projection lint, and only that lint: a
        // plain check must reject the seq holes the projection punched.
        let out = ppa_cmd(&["check", "--slice", output.to_str().unwrap()]);
        assert!(out.status.success(), "{out:?}");
        let out = ppa_cmd(&["check", output.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(65), "{ext}");
    }
}

#[test]
fn slice_identity_copies_and_converts() {
    let dir = tmpdir();
    let trace = synthetic_trace(4_000);
    let input = dir.join("identity_in.bin");
    let output = dir.join("identity_out.jsonl");
    write_fixture(&input, &trace, TraceFormat::Binary);
    let out = ppa_cmd(&[
        "slice",
        input.to_str().unwrap(),
        output.to_str().unwrap(),
        "--format",
        "jsonl",
        "--force",
    ]);
    assert!(out.status.success(), "{out:?}");
    let copied = read_trace(fs::File::open(&output).unwrap()).expect("readable copy");
    assert_eq!(copied.events(), trace.events());
}

/// Acceptance: a `--window --procs` slice of a 1M-event binary fixture
/// must skip at least half the blocks without CRC check or decode.
#[test]
fn slice_window_skips_majority_of_blocks_undecoded() {
    let dir = tmpdir();
    let n = 1 << 20;
    let trace = synthetic_trace(n);
    let input = dir.join("million.bin");
    let output = dir.join("million_sliced.bin");
    write_fixture(&input, &trace, TraceFormat::Binary);

    let first = trace.events().first().unwrap().time.as_nanos();
    let last = trace.events().last().unwrap().time.as_nanos();
    let span = last - first;
    // Middle ~quarter of the run: ~3/8 of the blocks fall entirely
    // before it and ~3/8 entirely after, all skippable from their frame
    // summaries alone.
    let window = format!("{}ns..{}ns", first + 3 * span / 8, first + 5 * span / 8);
    let out = ppa_cmd(&[
        "slice",
        input.to_str().unwrap(),
        output.to_str().unwrap(),
        "--window",
        &window,
        "--procs",
        "0..3",
        "--force",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = stdout_of(&out);
    let skipped: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("skip index: "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no skip-index line in {stdout:?}"));
    // DEFAULT_BLOCK_EVENTS is 4096, so the fixture spans n/4096 blocks.
    let total_blocks = n.div_ceil(4096);
    assert!(
        skipped * 2 >= total_blocks,
        "only {skipped} of {total_blocks} blocks skipped:\n{stdout}"
    );

    // The surviving slice is well-formed and matches the naive filter.
    let out = ppa_cmd(&["check", "--slice", output.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let spec = SliceSpec::parse(&format!("window={window} procs=0..3")).unwrap();
    let sliced = read_trace(fs::File::open(&output).unwrap()).expect("readable slice");
    let expected = trace.iter().filter(|e| spec.matches(e)).count();
    assert_eq!(sliced.len(), expected);
}

/// A per-processor periodic trace: each processor repeats the same
/// statement at a fixed stride, the shape the suppressor collapses.
fn periodic_trace(procs: u16, reps: usize) -> Trace {
    let mut events = Vec::new();
    let mut seq = 0u64;
    for r in 0..reps {
        for p in 0..procs {
            events.push(Event::new(
                Time::from_nanos(1_000 + (r as u64) * 100 + p as u64),
                ProcessorId(p),
                seq,
                EventKind::Statement {
                    stmt: StatementId(7),
                },
            ));
            seq += 1;
        }
    }
    Trace::from_events(TraceKind::Measured, events)
}

#[test]
fn slice_suppress_then_expand_round_trips() {
    let dir = tmpdir();
    let trace = periodic_trace(4, 200);
    let input = dir.join("periodic.bin");
    let suppressed = dir.join("periodic_sup.bin");
    let expanded = dir.join("periodic_exp.bin");
    write_fixture(&input, &trace, TraceFormat::Binary);

    let out = ppa_cmd(&[
        "slice",
        input.to_str().unwrap(),
        suppressed.to_str().unwrap(),
        "--suppress",
        "--force",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = stdout_of(&out);
    let sup_line = stdout
        .lines()
        .find(|l| l.starts_with("suppression: "))
        .unwrap_or_else(|| panic!("no suppression line in {stdout:?}"));
    assert!(
        !sup_line.starts_with("suppression: 0 "),
        "nothing suppressed on a periodic trace: {stdout}"
    );
    let sup_trace = read_trace(fs::File::open(&suppressed).unwrap()).expect("readable");
    assert!(sup_trace.len() < trace.len(), "no shrinkage");

    // A suppressed trace lints as a slice, but not as a complete trace.
    let out = ppa_cmd(&["check", "--slice", suppressed.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let out = ppa_cmd(&["check", suppressed.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(65));
    assert!(String::from_utf8_lossy(&out.stdout).contains("repeat-record"));

    let out = ppa_cmd(&[
        "slice",
        suppressed.to_str().unwrap(),
        expanded.to_str().unwrap(),
        "--expand",
        "--force",
    ]);
    assert!(out.status.success(), "{out:?}");
    let round = read_trace(fs::File::open(&expanded).unwrap()).expect("readable");
    assert_eq!(round.events(), trace.events(), "expand is not the inverse");
}

#[test]
fn slice_refuses_to_filter_suppressed_input_with_exit_65() {
    let dir = tmpdir();
    let trace = periodic_trace(2, 100);
    let input = dir.join("refuse_in.bin");
    let suppressed = dir.join("refuse_sup.bin");
    write_fixture(&input, &trace, TraceFormat::Binary);
    let out = ppa_cmd(&[
        "slice",
        input.to_str().unwrap(),
        suppressed.to_str().unwrap(),
        "--suppress",
        "--force",
    ]);
    assert!(out.status.success(), "{out:?}");

    let rejected = dir.join("refuse_out.bin");
    let out = ppa_cmd(&[
        "slice",
        suppressed.to_str().unwrap(),
        rejected.to_str().unwrap(),
        "--procs",
        "0",
        "--force",
    ]);
    assert_eq!(out.status.code(), Some(65), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--expand"));
}

#[test]
fn slice_usage_errors_exit_64() {
    let dir = tmpdir();
    // Missing operands.
    let out = ppa_cmd(&["slice"]);
    assert_eq!(out.status.code(), Some(64));
    // Contradictory modes.
    let out = ppa_cmd(&["slice", "a.bin", "b.bin", "--suppress", "--expand"]);
    assert_eq!(out.status.code(), Some(64));
    // Unknown clause keyword.
    let out = ppa_cmd(&["slice", "a.bin", "b.bin", "--expr", "bogus=1"]);
    assert_eq!(out.status.code(), Some(64));
    // Duplicate clause across a convenience flag and --expr.
    let out = ppa_cmd(&[
        "slice",
        "a.bin",
        "b.bin",
        "--window",
        "1ns..2ns",
        "--expr",
        "window=3ns..4ns",
    ]);
    assert_eq!(out.status.code(), Some(64));
    // Existing output without --force.
    let trace = synthetic_trace(64);
    let input = dir.join("force_in.bin");
    let output = dir.join("force_out.bin");
    write_fixture(&input, &trace, TraceFormat::Binary);
    fs::write(&output, b"occupied").unwrap();
    let out = ppa_cmd(&["slice", input.to_str().unwrap(), output.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(64), "{out:?}");
}

#[test]
fn analyze_slice_scopes_report_in_batch_and_stream() {
    let dir = tmpdir();
    let input = measured_jsonl(&dir, "analyze_slice_in.jsonl");
    let input = input.to_str().unwrap();
    let full = dir.join("analyze_full.jsonl");
    let batch = dir.join("analyze_slice_batch.jsonl");
    let stream = dir.join("analyze_slice_stream.jsonl");
    let expr = "kind=sync procs=0..3";

    let out = ppa_cmd(&["analyze", input, "--out", full.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let out = ppa_cmd(&[
        "analyze",
        input,
        "--slice",
        expr,
        "--out",
        batch.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let out = ppa_cmd(&[
        "analyze",
        input,
        "--stream",
        "--slice",
        expr,
        "--out",
        stream.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    // The slice scopes the report: both pipelines agree with the naive
    // filter of the full report, so slicing never changes the analysis.
    let spec = SliceSpec::parse(expr).unwrap();
    let full = read_trace(fs::File::open(&full).unwrap()).expect("readable");
    let want: Vec<&Event> = full.iter().filter(|e| spec.matches(e)).collect();
    assert!(!want.is_empty(), "degenerate slice");
    assert!(want.len() < full.len(), "slice filtered nothing");
    for path in [&batch, &stream] {
        let got = read_trace(fs::File::open(path).unwrap()).expect("readable");
        assert_eq!(got.len(), want.len(), "{}", path.display());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, *w, "{}", path.display());
        }
    }
}

#[test]
fn analyze_slice_contradicts_resume_with_exit_64() {
    let dir = tmpdir();
    let input = measured_jsonl(&dir, "analyze_resume_in.jsonl");
    let out = ppa_cmd(&[
        "analyze",
        input.to_str().unwrap(),
        "--stream",
        "--slice",
        "procs=0",
        "--resume",
        dir.join("no_such.ckpt").to_str().unwrap(),
        "--out",
        dir.join("resume_out.jsonl").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(64), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume"));
}

#[test]
fn help_documents_slicing_and_sniffing() {
    let out = ppa_cmd(&["help"]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    assert!(text.contains("slice"), "{text}");
    assert!(text.contains("auto-sniffed"), "{text}");
    assert!(text.contains("QUERIES.md"), "{text}");
}

/// Satellite regression: duplicate clauses across the two clause
/// sources — convenience flags and `--expr` — are a usage error (exit
/// 64) in *both* directions, exactly like duplicates within one source,
/// while either source alone still works.
#[test]
fn slice_duplicate_clauses_across_sources_exit_64_both_directions() {
    let dir = tmpdir();
    let trace = synthetic_trace(256);
    let input = dir.join("dupsrc_in.jsonl");
    write_fixture(&input, &trace, TraceFormat::Jsonl);
    let input = input.to_str().unwrap();
    let output = dir.join("dupsrc_out.jsonl");
    let output = output.to_str().unwrap();

    // Flag first, expression second.
    let out = ppa_cmd(&[
        "slice",
        input,
        output,
        "--force",
        "--window",
        "0ns..1ms",
        "--expr",
        "window=0ns..2ms",
    ]);
    assert_eq!(out.status.code(), Some(64), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "stderr: {stderr}");

    // Expression first, flag second.
    let out = ppa_cmd(&[
        "slice", input, output, "--force", "--expr", "procs=0", "--procs", "1",
    ]);
    assert_eq!(out.status.code(), Some(64), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "stderr: {stderr}");

    // Each source alone is accepted.
    let out = ppa_cmd(&["slice", input, output, "--force", "--window", "0ns..1ms"]);
    assert!(out.status.success(), "{out:?}");
    let out = ppa_cmd(&[
        "slice",
        input,
        output,
        "--force",
        "--expr",
        "window=0ns..1ms",
    ]);
    assert!(out.status.success(), "{out:?}");
}
