//! End-to-end tests of `ppa serve` + `ppa send` against the real
//! binary: many concurrent mixed-fault client streams must each produce
//! a report byte-identical to batch `ppa analyze`, quota refusals must
//! surface as typed exit-65 errors, and a daemon killed with SIGTERM
//! (graceful park) or SIGKILL (cadence checkpoint only) must resume
//! every session to the same bytes after a restart.

use ppa::prelude::*;
use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// A DOACROSS workload; `iters` varies per stream so no two streams
/// are byte-identical to each other.
fn measured_jsonl(dir: &Path, name: &str, iters: u64) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("serve-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, iters, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join(name);
    let file = fs::File::create(&path).expect("create measured trace");
    ppa::trace::write_jsonl(&measured.trace, file).expect("write measured trace");
    path
}

fn ppa_cmd(sub: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .arg(sub)
        .args(args)
        .output()
        .expect("run ppa")
}

fn to_bin(input: &Path, bin: &Path, block_events: &str) {
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--block-events",
            block_events,
            "--force",
        ],
    );
    assert!(out.status.success(), "{:?}", out);
}

/// The uninterrupted `ppa analyze --stream` report the daemon's
/// per-session report must match byte for byte.
fn reference_report(input: &Path, out_path: &Path, extra: &[&str]) {
    let out = ppa_cmd(
        "analyze",
        &[
            &[
                input.to_str().unwrap(),
                "--stream",
                "--out",
                out_path.to_str().unwrap(),
            ],
            extra,
        ]
        .concat(),
    );
    assert!(out.status.success(), "{:?}", out);
}

/// A running `ppa serve` child plus the addresses parsed from its
/// startup banner (ports are bound as `:0`, so the banner is the only
/// way to learn them).
struct Daemon {
    child: Child,
    tcp: String,
    unix: Option<PathBuf>,
}

fn start_daemon(state: &Path, unix: bool, extra: &[&str]) -> Daemon {
    let sock = state.join("ppa.sock");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ppa"));
    cmd.args(["serve", "--checkpoint-dir", state.to_str().unwrap()])
        .args(["--listen", "127.0.0.1:0"]);
    if unix {
        cmd.args(["--unix-socket", sock.to_str().unwrap()]);
    }
    cmd.args(extra).stdout(Stdio::null()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn ppa serve");
    let mut reader = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut tcp = None;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read daemon stderr");
        assert!(n > 0, "daemon exited before printing `ready`");
        let line = line.trim_end();
        if let Some(addr) = line.strip_prefix("ppa-serve: listening on tcp ") {
            tcp = Some(addr.to_string());
        }
        if line == "ppa-serve: ready" {
            break;
        }
    }
    // Keep draining so a chatty daemon can never block on a full pipe.
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    Daemon {
        child,
        tcp: tcp.expect("daemon printed its tcp address"),
        unix: unix.then_some(sock),
    }
}

impl Daemon {
    fn pid(&self) -> u32 {
        self.child.id()
    }

    fn wait(&mut self, secs: u64) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            if let Some(status) = self.child.try_wait().expect("poll daemon") {
                return status;
            }
            assert!(Instant::now() < deadline, "daemon did not exit in {secs}s");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn sigterm(pid: u32) {
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM {pid} failed");
}

fn send_args<'a>(
    trace: &'a str,
    daemon: &'a Daemon,
    via_unix: bool,
    tenant: &'a str,
    stream: &'a str,
) -> Vec<&'a str> {
    let mut args = vec![trace];
    if via_unix {
        args.extend(["--unix", daemon.unix.as_ref().unwrap().to_str().unwrap()]);
    } else {
        args.extend(["--to", daemon.tcp.as_str()]);
    }
    args.extend(["--tenant", tenant, "--stream", stream]);
    args
}

fn report_path(state: &Path, tenant: &str, stream: &str) -> PathBuf {
    state.join(tenant).join(format!("{stream}.report.jsonl"))
}

fn ckpt_path(state: &Path, tenant: &str, stream: &str) -> PathBuf {
    state.join(tenant).join(format!("{stream}.ckpt"))
}

fn wait_for(what: &str, secs: u64, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(
            Instant::now() < deadline,
            "{what} did not happen in {secs}s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

// --- raw protocol bytes (deliberately hand-rolled, not the library
// encoder, so these tests also cross-check the wire format) ---

fn frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![ty, 0, 0, 0];
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

fn hello_payload(tenant: &str, stream: &str) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(b"PPASERV1");
    p.push(1); // version
    p.push(0); // flags
    p.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
    p.extend_from_slice(tenant.as_bytes());
    p.extend_from_slice(&(stream.len() as u16).to_le_bytes());
    p.extend_from_slice(stream.as_bytes());
    p
}

/// Reads one `(type, payload)` frame off a blocking socket.
fn read_frame(sock: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; 8];
    sock.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    sock.read_exact(&mut payload).expect("frame payload");
    (header[0], payload)
}

/// Eight simultaneous client streams — clean, corrupted, and reordered,
/// over TCP and the unix socket, across three tenants — each must
/// produce exactly the bytes batch `ppa analyze` produces for its input
/// under the same fault flags, and every checkpoint must be gone once
/// its session completes.
#[test]
fn eight_mixed_concurrent_streams_match_batch_analyze() {
    let dir = tmp("serve_mixed");
    let state = dir.join("state");
    // `--decode-workers 2` routes the binary streams through the
    // pipelined decoder on both the daemon and the reference analyze,
    // so this test also pins pipelined-vs-batch byte identity under
    // corruption and reordering.
    let fault_flags = [
        "--lenient",
        "--reorder-window",
        "8",
        "--decode-workers",
        "2",
    ];

    // Streams 0-2: clean JSONL; 3-4: clean binary; 5-6: binary with one
    // corrupted payload byte (lenient gap); 7: JSONL with two adjacent
    // lines swapped (reorder window).
    let mut inputs = Vec::new();
    for i in 0..8u64 {
        let input = measured_jsonl(&dir, &format!("in_{i}.jsonl"), 64 + 16 * i);
        let input = match i {
            3 | 4 => {
                let bin = dir.join(format!("in_{i}.bin"));
                to_bin(&input, &bin, "32");
                bin
            }
            5 | 6 => {
                let bin = dir.join(format!("in_{i}.bin"));
                to_bin(&input, &bin, "32");
                let mut bytes = fs::read(&bin).expect("read bin");
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
                let corrupt = dir.join(format!("in_{i}_corrupt.bin"));
                fs::write(&corrupt, &bytes).expect("write corrupt");
                corrupt
            }
            7 => {
                let text = fs::read_to_string(&input).expect("read measured");
                let mut lines: Vec<&str> = text.lines().collect();
                let k = lines.len() / 2;
                lines.swap(k, k + 1);
                let shuffled = dir.join(format!("in_{i}_shuffled.jsonl"));
                fs::write(&shuffled, lines.join("\n") + "\n").expect("write shuffled");
                shuffled
            }
            _ => input,
        };
        let reference = dir.join(format!("ref_{i}.jsonl"));
        reference_report(&input, &reference, &fault_flags);
        inputs.push((input, reference));
    }

    let daemon = start_daemon(&state, true, &fault_flags);
    let tenants = [
        "acme", "beta", "acme", "gamma", "beta", "acme", "gamma", "beta",
    ];

    // All eight clients in flight at once, alternating TCP/unix.
    let clients: Vec<(usize, Child)> = inputs
        .iter()
        .enumerate()
        .map(|(i, (input, _))| {
            let stream = format!("run-{i}");
            let child = Command::new(env!("CARGO_BIN_EXE_ppa"))
                .arg("send")
                .args(send_args(
                    input.to_str().unwrap(),
                    &daemon,
                    i % 2 == 1,
                    tenants[i],
                    &stream,
                ))
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn ppa send");
            (i, child)
        })
        .collect();

    for (i, child) in clients {
        let out = child.wait_with_output().expect("reap ppa send");
        assert!(out.status.success(), "stream {i}: {out:?}");
        let stream = format!("run-{i}");
        assert_eq!(
            fs::read(report_path(&state, tenants[i], &stream)).expect("session report"),
            fs::read(&inputs[i].1).expect("reference report"),
            "stream {i}: daemon report differs from batch analyze"
        );
        assert!(
            !ckpt_path(&state, tenants[i], &stream).exists(),
            "stream {i}: completed session left its checkpoint behind"
        );
    }
}

/// Absurd `--decode-workers` values are usage errors (exit 64) before
/// the daemon binds anything.
#[test]
fn serve_rejects_absurd_decode_workers_with_exit_64() {
    let dir = tmp("serve_decode_workers_usage");
    for bad in ["-1", "4096", "many"] {
        let out = ppa_cmd(
            "serve",
            &[
                "--checkpoint-dir",
                dir.to_str().unwrap(),
                "--decode-workers",
                bad,
            ],
        );
        assert_eq!(out.status.code(), Some(64), "value {bad:?}: {out:?}");
    }
}

/// Quota refusals come back as typed protocol errors and `ppa send`
/// maps them onto exit 65 with the error's symbolic name in stderr.
#[test]
fn quota_rejections_are_typed_exit_65_errors() {
    let dir = tmp("serve_quota");
    let state = dir.join("state");
    let input = measured_jsonl(&dir, "quota_in.jsonl", 32);
    let daemon = start_daemon(&state, false, &["--tenant-max-sessions", "1"]);

    // Hold (acme, held) open by hand: HELLO, then silence.
    let mut held = TcpStream::connect(&daemon.tcp).expect("connect");
    held.write_all(&frame(0x01, &hello_payload("acme", "held")))
        .expect("send HELLO");
    let (ty, _) = read_frame(&mut held);
    assert_eq!(ty, 0x10, "expected OK for the held session");

    // Same (tenant, stream): the specific refusal, not the cap.
    let out = ppa_cmd(
        "send",
        &send_args(input.to_str().unwrap(), &daemon, false, "acme", "held"),
    );
    assert_eq!(out.status.code(), Some(65), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("session-busy"), "stderr: {stderr}");

    // Different stream, same tenant: the 1-session quota.
    let out = ppa_cmd(
        "send",
        &send_args(input.to_str().unwrap(), &daemon, false, "acme", "other"),
    );
    assert_eq!(out.status.code(), Some(65), "{:?}", out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tenant-sessions"), "stderr: {stderr}");

    // Another tenant is unaffected.
    let out = ppa_cmd(
        "send",
        &send_args(input.to_str().unwrap(), &daemon, false, "beta", "fine"),
    );
    assert!(out.status.success(), "{:?}", out);

    // Releasing the held slot frees the quota.
    drop(held);
    wait_for("held session release", 10, || {
        ppa_cmd(
            "send",
            &send_args(input.to_str().unwrap(), &daemon, false, "acme", "other"),
        )
        .status
        .success()
    });
}

/// An idle session is evicted with `ERROR idle-evicted` and its state
/// checkpointed; a later `ppa send` of the full trace resumes it and
/// converges to the batch-analyze bytes.
#[test]
fn idle_eviction_checkpoints_and_send_resumes() {
    let dir = tmp("serve_evict");
    let state = dir.join("state");
    let input = measured_jsonl(&dir, "evict_in.jsonl", 256);
    let reference = dir.join("evict_ref.jsonl");
    reference_report(&input, &reference, &[]);

    let daemon = start_daemon(
        &state,
        false,
        &["--idle-timeout-ms", "400", "--checkpoint-every", "64"],
    );

    // A client that sends half the trace (cut at a line boundary, so
    // whole events) and then stalls past the idle deadline.
    let bytes = fs::read(&input).expect("read trace");
    let mut cut = bytes.len() / 2;
    while bytes[cut] != b'\n' {
        cut += 1;
    }
    let mut sock = TcpStream::connect(&daemon.tcp).expect("connect");
    sock.write_all(&frame(0x01, &hello_payload("acme", "evict")))
        .expect("send HELLO");
    let (ty, _) = read_frame(&mut sock);
    assert_eq!(ty, 0x10, "expected OK");
    sock.write_all(&frame(0x02, &bytes[..=cut]))
        .expect("send DATA");
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (ty, payload) = read_frame(&mut sock);
    assert_eq!(ty, 0x1f, "expected ERROR after idling");
    let code = u16::from_le_bytes(payload[0..2].try_into().unwrap());
    assert_eq!(code, 9, "expected idle-evicted, got code {code}");
    drop(sock);

    let ckpt = ckpt_path(&state, "acme", "evict");
    assert!(ckpt.exists(), "eviction must leave a checkpoint");

    // Full resend resumes past the already-analyzed prefix.
    let out = ppa_cmd(
        "send",
        &send_args(input.to_str().unwrap(), &daemon, false, "acme", "evict"),
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("send: resumed acme/evict"),
        "stdout: {stdout}"
    );
    assert_eq!(
        fs::read(report_path(&state, "acme", "evict")).unwrap(),
        fs::read(&reference).unwrap(),
        "evict-then-resume report differs from batch analyze"
    );
    assert!(
        !ckpt.exists(),
        "completed resume must delete the checkpoint"
    );
}

/// Opens a raw session, sends the first half of `input` (cut at a line
/// boundary), and blocks until the daemon's first cadence checkpoint is
/// durably on disk — the daemon is now provably mid-session, with the
/// socket idle so a signal cannot race in-flight response bytes.
fn half_open_session(
    input: &Path,
    daemon: &Daemon,
    state: &Path,
    tenant: &str,
    stream: &str,
) -> TcpStream {
    let bytes = fs::read(input).expect("read trace");
    let mut cut = bytes.len() / 2;
    while bytes[cut] != b'\n' {
        cut += 1;
    }
    let mut sock = TcpStream::connect(&daemon.tcp).expect("connect");
    sock.write_all(&frame(0x01, &hello_payload(tenant, stream)))
        .expect("send HELLO");
    let (ty, _) = read_frame(&mut sock);
    assert_eq!(ty, 0x10, "expected OK");
    sock.write_all(&frame(0x02, &bytes[..=cut]))
        .expect("send DATA");
    let ckpt = ckpt_path(state, tenant, stream);
    wait_for("first cadence checkpoint", 60, || ckpt.exists());
    sock
}

/// SIGTERM mid-stream: the daemon parks the live session (checkpoint +
/// `ERROR shutting-down`, exit 0), and a restarted daemon resumes it to
/// bytes identical to batch `ppa analyze`.
#[test]
fn sigterm_parks_sessions_and_restart_resumes_byte_identical() {
    let dir = tmp("serve_sigterm");
    let state = dir.join("state");
    let input = measured_jsonl(&dir, "sigterm_in.jsonl", 512);
    let reference = dir.join("sigterm_ref.jsonl");
    reference_report(&input, &reference, &[]);

    let mut daemon = start_daemon(&state, false, &["--checkpoint-every", "64"]);
    let mut sock = half_open_session(&input, &daemon, &state, "acme", "big");

    sigterm(daemon.pid());

    // The parked client sees the typed shutdown error before the close.
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (ty, payload) = read_frame(&mut sock);
    assert_eq!(ty, 0x1f, "expected ERROR on shutdown");
    let code = u16::from_le_bytes(payload[0..2].try_into().unwrap());
    assert_eq!(code, 10, "expected shutting-down, got code {code}");
    drop(sock);

    let status = daemon.wait(30);
    assert!(
        status.success(),
        "graceful shutdown must exit 0: {status:?}"
    );
    assert!(
        ckpt_path(&state, "acme", "big").exists(),
        "no parked checkpoint"
    );

    // Restart on the same state dir; the full resend resumes.
    let daemon = start_daemon(&state, false, &["--checkpoint-every", "64"]);
    let out = ppa_cmd(
        "send",
        &send_args(input.to_str().unwrap(), &daemon, false, "acme", "big"),
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("send: resumed acme/big"),
        "stdout: {stdout}"
    );
    assert_eq!(
        fs::read(report_path(&state, "acme", "big")).unwrap(),
        fs::read(&reference).unwrap(),
        "post-SIGTERM resumed report differs from batch analyze"
    );
}

/// SIGKILL mid-stream: no parking, no flush — but the last cadence
/// checkpoint is atomic on disk, so a restarted daemon truncates the
/// torn report tail and still converges to the batch-analyze bytes.
#[test]
fn sigkill_recovers_from_the_last_cadence_checkpoint() {
    let dir = tmp("serve_sigkill");
    let state = dir.join("state");
    let input = measured_jsonl(&dir, "sigkill_in.jsonl", 512);
    let reference = dir.join("sigkill_ref.jsonl");
    reference_report(&input, &reference, &[]);

    let mut daemon = start_daemon(&state, false, &["--checkpoint-every", "64"]);
    let sock = half_open_session(&input, &daemon, &state, "acme", "hard");

    daemon.child.kill().expect("SIGKILL daemon"); // no flush, no atexit
    daemon.child.wait().expect("reap daemon");
    drop(sock); // the abandoned client just sees a dead socket

    // The cadence checkpoint survived and validates (atomic replace).
    let ckpt = ckpt_path(&state, "acme", "hard");
    let cp = ppa::analysis::read_checkpoint(&ckpt).expect("checkpoint validates");
    let torn = fs::metadata(report_path(&state, "acme", "hard"))
        .unwrap()
        .len();
    assert!(
        cp.sink.bytes_flushed <= torn,
        "checkpoint claims more than was written"
    );

    let daemon = start_daemon(&state, false, &["--checkpoint-every", "64"]);
    let out = ppa_cmd(
        "send",
        &send_args(input.to_str().unwrap(), &daemon, false, "acme", "hard"),
    );
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("send: resumed acme/hard"),
        "stdout: {stdout}"
    );
    assert_eq!(
        fs::read(report_path(&state, "acme", "hard")).unwrap(),
        fs::read(&reference).unwrap(),
        "post-SIGKILL resumed report differs from batch analyze"
    );
}
