//! End-to-end tests of `ppa check`: every clean trace/report in the
//! pipeline must pass (exit 0), every seeded violation fixture must be
//! flagged with its rule named on stdout (exit 65), misuse must map to
//! exit 64, and the differential oracle must pin the three analysis
//! paths against each other.

use ppa::prelude::*;
use ppa::trace::{write_jsonl, BarrierId, Event, EventKind, SyncTag, SyncVarId, Trace};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn ppa_cmd(sub: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .arg(sub)
        .args(args)
        .output()
        .expect("run ppa")
}

fn ev(time: u64, proc: u16, seq: u64, kind: EventKind) -> Event {
    Event::new(Time::from_nanos(time), ProcessorId(proc), seq, kind)
}

/// Writes `events` as JSONL in *exactly* the given stream order (a
/// violation fixture is often deliberately out of order, which
/// [`Trace::from_events`] would sort away). The header comes from a
/// sorted copy, so the declared kind and event count stay honest.
fn write_fixture(dir: &Path, name: &str, kind: TraceKind, events: &[Event]) -> PathBuf {
    let sorted = Trace::from_events(kind, events.to_vec());
    let mut buf = Vec::new();
    write_jsonl(&sorted, &mut buf).expect("serialize fixture");
    let text = String::from_utf8(buf).expect("jsonl is utf-8");
    let header = text.lines().next().expect("header line");
    let mut out = String::with_capacity(text.len());
    out.push_str(header);
    out.push('\n');
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("serialize event"));
        out.push('\n');
    }
    let path = dir.join(name);
    fs::write(&path, out).expect("write fixture");
    path
}

/// Runs `ppa check` on a fixture and asserts it is flagged (exit 65)
/// with `rule` named on stdout.
fn assert_flags(path: &Path, rule: &str) {
    let out = ppa_cmd("check", &[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(65), "{rule}: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(rule), "expected rule {rule} in: {stdout}");
}

fn measured_jsonl(dir: &Path, name: &str) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("check-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, 64, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join(name);
    let file = fs::File::create(&path).expect("create measured trace");
    write_jsonl(&measured.trace, file).expect("write measured trace");
    path
}

// --- clean inputs pass ---------------------------------------------

#[test]
fn check_passes_clean_measured_trace_and_its_report() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "check_clean.jsonl");

    // The measured trace lints clean.
    let out = ppa_cmd("check", &[input.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK: no invariant violations"), "{stdout}");
    assert!(stdout.contains("lint pass"), "{stdout}");

    // The analyzer's report passes lint + the §4.2.3 conservation laws.
    let report = dir.join("check_clean_report.jsonl");
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{out:?}");
    let out = ppa_cmd("check", &[report.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lint + report invariants"), "{stdout}");
}

#[test]
fn check_reads_binary_traces_too() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "check_bin_src.jsonl");
    let bin = dir.join("check_bin.bin");
    let out = ppa_cmd(
        "convert",
        &[
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ],
    );
    assert!(out.status.success(), "{out:?}");
    let out = ppa_cmd("check", &[bin.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
}

// --- seeded violation fixtures are flagged with their rule ----------

#[test]
fn flags_backwards_time_on_one_processor() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_backwards.jsonl",
        TraceKind::Measured,
        &[
            ev(100, 0, 0, EventKind::ProgramBegin),
            ev(50, 0, 1, EventKind::Statement { stmt: 0.into() }),
        ],
    );
    assert_flags(&f, "proc-time-monotone");
    assert_flags(&f, "trace-total-order");
}

#[test]
fn flags_sequence_hole() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_seq_hole.jsonl",
        TraceKind::Measured,
        &[
            ev(10, 0, 0, EventKind::ProgramBegin),
            ev(20, 0, 1, EventKind::Statement { stmt: 0.into() }),
            ev(30, 0, 3, EventKind::ProgramEnd),
        ],
    );
    assert_flags(&f, "seq-contiguity");
}

#[test]
fn flags_await_end_without_begin() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_await_pairing.jsonl",
        TraceKind::Measured,
        &[
            ev(
                10,
                0,
                0,
                EventKind::Advance {
                    var: SyncVarId(0),
                    tag: SyncTag(0),
                },
            ),
            ev(
                20,
                0,
                1,
                EventKind::AwaitEnd {
                    var: SyncVarId(0),
                    tag: SyncTag(0),
                },
            ),
        ],
    );
    assert_flags(&f, "await-pairing");
}

#[test]
fn flags_await_without_any_advance() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_no_advance.jsonl",
        TraceKind::Measured,
        &[
            ev(
                10,
                0,
                0,
                EventKind::AwaitBegin {
                    var: SyncVarId(0),
                    tag: SyncTag(3),
                },
            ),
            ev(
                20,
                0,
                1,
                EventKind::AwaitEnd {
                    var: SyncVarId(0),
                    tag: SyncTag(3),
                },
            ),
        ],
    );
    assert_flags(&f, "await-advance-order");
}

#[test]
fn flags_report_with_backwards_approximated_time() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_ta_backwards.jsonl",
        TraceKind::Approximated,
        &[
            ev(200, 0, 0, EventKind::ProgramBegin),
            ev(100, 0, 1, EventKind::Statement { stmt: 0.into() }),
        ],
    );
    assert_flags(&f, "report-ta-monotone");
}

#[test]
fn flags_report_where_await_completes_before_its_advance() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    // The advance resolves to ta = 500, but the dependent awaitE lands
    // at ta = 400: the measured dependence order was lost.
    let f = write_fixture(
        &dir,
        "viol_order_lost.jsonl",
        TraceKind::Approximated,
        &[
            ev(
                500,
                0,
                0,
                EventKind::Advance {
                    var: SyncVarId(0),
                    tag: SyncTag(0),
                },
            ),
            ev(
                300,
                1,
                1,
                EventKind::AwaitBegin {
                    var: SyncVarId(0),
                    tag: SyncTag(0),
                },
            ),
            ev(
                400,
                1,
                2,
                EventKind::AwaitEnd {
                    var: SyncVarId(0),
                    tag: SyncTag(0),
                },
            ),
        ],
    );
    assert_flags(&f, "await-order-preserved");
}

#[test]
fn flags_report_barrier_exit_before_latest_enter() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_barrier_order.jsonl",
        TraceKind::Approximated,
        &[
            ev(
                100,
                0,
                0,
                EventKind::BarrierEnter {
                    barrier: BarrierId(0),
                },
            ),
            ev(
                200,
                1,
                1,
                EventKind::BarrierEnter {
                    barrier: BarrierId(0),
                },
            ),
            ev(
                150,
                0,
                2,
                EventKind::BarrierExit {
                    barrier: BarrierId(0),
                },
            ),
            ev(
                250,
                1,
                3,
                EventKind::BarrierExit {
                    barrier: BarrierId(0),
                },
            ),
        ],
    );
    assert_flags(&f, "barrier-exit-order");
}

// --- metrics cross-check and export --------------------------------

#[test]
fn flags_unaccounted_clamps_from_a_metrics_snapshot() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "check_clamp_clean.jsonl");
    let snap = dir.join("check_clamp.prom");
    fs::write(
        &snap,
        "ppa_core_clamped_approx_total 3\nppa_events_pushed_total 100\n",
    )
    .unwrap();
    let out = ppa_cmd(
        "check",
        &[input.to_str().unwrap(), "--metrics", snap.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(65), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unaccounted-clamp"), "{stdout}");
}

#[test]
fn check_exports_per_rule_violation_counts() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let f = write_fixture(
        &dir,
        "viol_for_metrics.jsonl",
        TraceKind::Measured,
        &[
            ev(10, 0, 0, EventKind::ProgramBegin),
            ev(20, 0, 1, EventKind::Statement { stmt: 0.into() }),
            ev(30, 0, 3, EventKind::ProgramEnd),
        ],
    );
    let snap = dir.join("check_violations.prom");
    let out = ppa_cmd(
        "check",
        &[f.to_str().unwrap(), "--metrics-out", snap.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(65), "{out:?}");
    let prom = fs::read_to_string(&snap).expect("metrics snapshot written");
    assert!(
        prom.contains("ppa_check_violations_total{rule=\"seq-contiguity\"} 1"),
        "{prom}"
    );
}

// --- differential oracle --------------------------------------------

#[test]
fn differential_oracle_pins_the_three_paths_on_seeded_programs() {
    let out = ppa_cmd(
        "check",
        &["--differential", "--seed", "7", "--programs", "5"],
    );
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("differential oracle: 5 program(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("OK: no invariant violations"), "{stdout}");
}

// --- misuse maps onto the sysexits scheme ---------------------------

#[test]
fn check_misuse_maps_onto_exit_64() {
    for args in [
        &[][..],
        &["--differential", "t.jsonl"][..],
        &["--differential", "--programs", "0"][..],
        &["--differential", "--seed", "x"][..],
        &["t.jsonl", "--out-dir", "d"][..],
        &["t.jsonl", "--unknown-flag"][..],
    ] {
        let out = ppa_cmd("check", args);
        assert_eq!(out.status.code(), Some(64), "{args:?}: {out:?}");
    }
}

#[test]
fn check_missing_input_maps_onto_exit_66() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let missing = dir.join("check_nonexistent.jsonl");
    let out = ppa_cmd("check", &[missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(66), "{out:?}");
}

// --- checkpoint files route to the chain lint -----------------------

/// `ppa check` on a checkpoint file must validate the chain the way
/// `--resume` would read it: a healthy v2 chain passes with its record
/// count reported, a torn delta tail is flagged (resume tolerates it,
/// the lint must not), and a corrupted full record is flagged too.
#[test]
fn check_lints_checkpoint_chains() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir, "ckpt_lint_measured.jsonl");
    let report = dir.join("ckpt_lint_report.jsonl");
    let ckpt = dir.join("ckpt_lint_state.ckpt");
    fs::remove_file(&ckpt).ok();

    // Produce a chain with several delta records.
    let out = ppa_cmd(
        "analyze",
        &[
            input.to_str().unwrap(),
            "--stream",
            "--out",
            report.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "32",
            "--checkpoint-compact-every",
            "64",
        ],
    );
    assert!(out.status.success(), "{out:?}");

    let out = ppa_cmd("check", &[ckpt.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("v2 checkpoint"), "{stdout}");
    assert!(stdout.contains("delta record(s)"), "{stdout}");
    assert!(stdout.contains("OK: no invariant violations"), "{stdout}");

    // Torn tail: drop the last few bytes, as a kill mid-append would.
    let bytes = fs::read(&ckpt).expect("read chain");
    let torn = dir.join("ckpt_lint_torn.ckpt");
    fs::write(&torn, &bytes[..bytes.len() - 5]).expect("write torn chain");
    assert_flags(&torn, "checkpoint-torn-tail");

    // Corrupt full record: flip a payload byte inside the first record.
    let mut corrupt = bytes.clone();
    corrupt[8 + 13 + 8] ^= 0xff;
    let bad = dir.join("ckpt_lint_corrupt.ckpt");
    fs::write(&bad, &corrupt).expect("write corrupt chain");
    assert_flags(&bad, "checkpoint-corrupt");

    // A v1-magic file with a wrecked payload is also a lint failure,
    // not an I/O error.
    let v1 = dir.join("ckpt_lint_v1_bad.ckpt");
    fs::write(&v1, b"PPACKPT1 this is not a checkpoint payload").unwrap();
    assert_flags(&v1, "checkpoint-corrupt");
}
