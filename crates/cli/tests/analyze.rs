//! End-to-end tests of `ppa analyze`: the streaming pipeline and the
//! batch pipeline must produce byte-identical approximated JSONL, errors
//! must map onto the documented sysexits codes, and `--metrics-out` must
//! emit a parseable snapshot with nonzero pipeline counters.

use ppa::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn measured_jsonl(dir: &std::path::Path) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("analyze-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, 64, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join("measured.jsonl");
    let file = fs::File::create(&path).expect("create measured.jsonl");
    ppa::trace::write_jsonl(&measured.trace, file).expect("write measured.jsonl");
    path
}

fn ppa_analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .arg("analyze")
        .args(args)
        .output()
        .expect("run ppa analyze")
}

#[test]
fn analyze_stream_matches_batch() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let input = input.to_str().unwrap();
    let out_stream = dir.join("approx_stream.jsonl");
    let out_batch = dir.join("approx_batch.jsonl");

    let out = ppa_analyze(&[input, "--stream", "--out", out_stream.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
    let out = ppa_analyze(&[input, "--out", out_batch.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);

    let streamed = fs::read(&out_stream).expect("read streaming output");
    let batch = fs::read(&out_batch).expect("read batch output");
    assert!(!streamed.is_empty());
    assert_eq!(streamed, batch);
}

#[test]
fn analyze_rejects_missing_input_with_exit_66() {
    let out = ppa_analyze(&["/nonexistent/trace.jsonl"]);
    assert_eq!(out.status.code(), Some(66));
    let out = ppa_analyze(&["/nonexistent/trace.jsonl", "--stream"]);
    assert_eq!(out.status.code(), Some(66));
}

#[test]
fn analyze_reports_usage_errors_with_exit_64() {
    let out = ppa_analyze(&[]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_analyze(&["t.jsonl", "--bogus-flag"]);
    assert_eq!(out.status.code(), Some(64));
    // Metrics flags are only meaningful on the streaming pipeline.
    let out = ppa_analyze(&["t.jsonl", "--metrics-out", "m.prom"]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_analyze(&["t.jsonl", "--stream", "--metrics-format", "xml"]);
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn analyze_reports_malformed_line_with_exit_65() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let mut bytes = fs::read(&input).expect("read measured.jsonl");
    let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    bytes.splice(first_nl + 1..first_nl + 1, b"{not json}\n".iter().copied());
    let bad = dir.join("malformed.jsonl");
    fs::write(&bad, &bytes).expect("write malformed.jsonl");

    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec![bad.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = ppa_analyze(&args);
        assert_eq!(out.status.code(), Some(65), "{:?}", out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        // The garbage line sits right after the header, i.e. line 2.
        assert!(stderr.contains("line 2"), "stderr: {stderr}");
    }
}

#[test]
fn analyze_reports_truncated_input_with_exit_65() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let bytes = fs::read(&input).expect("read measured.jsonl");
    let newlines: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] == b'\n').collect();
    let cut = dir.join("truncated.jsonl");
    fs::write(&cut, &bytes[..newlines[newlines.len() - 4] + 1]).expect("write truncated.jsonl");

    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec![cut.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = ppa_analyze(&args);
        assert_eq!(out.status.code(), Some(65), "{:?}", out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("truncated"), "stderr: {stderr}");
    }
}

#[cfg(feature = "obs")]
#[test]
fn analyze_stream_exports_prometheus_metrics() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let snap = dir.join("snap.prom");
    let out = ppa_analyze(&[
        input.to_str().unwrap(),
        "--stream",
        "--progress",
        "--metrics-out",
        snap.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{:?}", out);

    let text = fs::read_to_string(&snap).expect("read snapshot");
    for needle in [
        "# TYPE ppa_events_pushed_total counter",
        "# TYPE ppa_watermark_lag gauge",
        "# TYPE ppa_resident_events gauge",
        "ppa_stream_bytes_total{dir=\"read\"}",
        "ppa_stream_bytes_total{dir=\"write\"}",
        "ppa_shard_events_total{shard=\"p0\"}",
        "ppa_shard_throughput_eps{shard=\"p0\"}",
        "ppa_obs_self_overhead_ns_per_probe",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // The pipeline really counted: events pushed is nonzero.
    let pushed = text
        .lines()
        .find(|l| l.starts_with("ppa_events_pushed_total "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("ppa_events_pushed_total sample");
    assert!(pushed > 0);
}

#[cfg(feature = "obs")]
#[test]
fn analyze_stream_exports_json_metrics() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let snap = dir.join("snap.json");
    let out = ppa_analyze(&[
        input.to_str().unwrap(),
        "--stream",
        "--metrics-out",
        snap.to_str().unwrap(),
        "--metrics-format",
        "json",
    ]);
    assert!(out.status.success(), "{:?}", out);

    let text = fs::read_to_string(&snap).expect("read snapshot");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("snapshot is valid JSON");
    let metrics = doc["metrics"].as_array().expect("metrics array");
    assert!(!metrics.is_empty());
    let pushed = metrics
        .iter()
        .find(|m| m["name"].as_str() == Some("ppa_events_pushed_total"))
        .expect("ppa_events_pushed_total present");
    assert!(pushed["value"].as_u64().unwrap() > 0);
}
