//! End-to-end tests of `ppa analyze`: the streaming pipeline and the
//! batch pipeline must produce byte-identical approximated JSONL, errors
//! must map onto the documented sysexits codes, and `--metrics-out` must
//! emit a parseable snapshot with nonzero pipeline counters.

use ppa::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn measured_jsonl(dir: &std::path::Path) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("analyze-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, 64, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join("measured.jsonl");
    let file = fs::File::create(&path).expect("create measured.jsonl");
    ppa::trace::write_jsonl(&measured.trace, file).expect("write measured.jsonl");
    path
}

fn ppa_analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppa"))
        .arg("analyze")
        .args(args)
        .output()
        .expect("run ppa analyze")
}

#[test]
fn analyze_stream_matches_batch() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let input = input.to_str().unwrap();
    let out_stream = dir.join("approx_stream.jsonl");
    let out_batch = dir.join("approx_batch.jsonl");

    let out = ppa_analyze(&[input, "--stream", "--out", out_stream.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
    let out = ppa_analyze(&[input, "--out", out_batch.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);

    let streamed = fs::read(&out_stream).expect("read streaming output");
    let batch = fs::read(&out_batch).expect("read batch output");
    assert!(!streamed.is_empty());
    assert_eq!(streamed, batch);
}

#[test]
fn analyze_rejects_missing_input_with_exit_66() {
    let out = ppa_analyze(&["/nonexistent/trace.jsonl"]);
    assert_eq!(out.status.code(), Some(66));
    let out = ppa_analyze(&["/nonexistent/trace.jsonl", "--stream"]);
    assert_eq!(out.status.code(), Some(66));
}

#[test]
fn analyze_reports_usage_errors_with_exit_64() {
    let out = ppa_analyze(&[]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_analyze(&["t.jsonl", "--bogus-flag"]);
    assert_eq!(out.status.code(), Some(64));
    // Metrics flags are only meaningful on the streaming pipeline.
    let out = ppa_analyze(&["t.jsonl", "--metrics-out", "m.prom"]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_analyze(&["t.jsonl", "--stream", "--metrics-format", "xml"]);
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn analyze_decode_workers_accepts_valid_and_rejects_absurd() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let bin = dir.join("decode_workers.bin");
    let out = Command::new(env!("CARGO_BIN_EXE_ppa"))
        .args([
            "convert",
            input.to_str().unwrap(),
            bin.to_str().unwrap(),
            "--to",
            "bin",
            "--force",
        ])
        .output()
        .expect("run ppa convert");
    assert!(out.status.success(), "{:?}", out);

    // 0 (serial), 1, and 4 workers must all produce byte-identical
    // approximated output from the same binary input.
    let mut outputs = Vec::new();
    for workers in ["0", "1", "4"] {
        let path = dir.join(format!("approx_w{workers}.jsonl"));
        let out = ppa_analyze(&[
            bin.to_str().unwrap(),
            "--stream",
            "--decode-workers",
            workers,
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "workers {workers}: {:?}", out);
        outputs.push(fs::read(&path).expect("read approximated output"));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);

    // Absurd values are usage errors, not silent clamps.
    for bad in ["-1", "4096", "lots", ""] {
        let out = ppa_analyze(&[bin.to_str().unwrap(), "--decode-workers", bad]);
        assert_eq!(out.status.code(), Some(64), "value {bad:?}: {:?}", out);
    }
    let out = ppa_analyze(&[bin.to_str().unwrap(), "--decode-workers"]);
    assert_eq!(out.status.code(), Some(64), "{:?}", out);
}

#[test]
fn analyze_reports_malformed_line_with_exit_65() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let mut bytes = fs::read(&input).expect("read measured.jsonl");
    let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    bytes.splice(first_nl + 1..first_nl + 1, b"{not json}\n".iter().copied());
    let bad = dir.join("malformed.jsonl");
    fs::write(&bad, &bytes).expect("write malformed.jsonl");

    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec![bad.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = ppa_analyze(&args);
        assert_eq!(out.status.code(), Some(65), "{:?}", out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        // The garbage line sits right after the header, i.e. line 2.
        assert!(stderr.contains("line 2"), "stderr: {stderr}");
    }
}

#[test]
fn analyze_reports_truncated_input_with_exit_65() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let bytes = fs::read(&input).expect("read measured.jsonl");
    let newlines: Vec<usize> = (0..bytes.len()).filter(|&i| bytes[i] == b'\n').collect();
    let cut = dir.join("truncated.jsonl");
    fs::write(&cut, &bytes[..newlines[newlines.len() - 4] + 1]).expect("write truncated.jsonl");

    for extra in [&[][..], &["--stream"][..]] {
        let mut args = vec![cut.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = ppa_analyze(&args);
        assert_eq!(out.status.code(), Some(65), "{:?}", out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("truncated"), "stderr: {stderr}");
    }
}

#[cfg(feature = "obs")]
#[test]
fn analyze_stream_exports_prometheus_metrics() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let snap = dir.join("snap.prom");
    let out = ppa_analyze(&[
        input.to_str().unwrap(),
        "--stream",
        "--progress",
        "--metrics-out",
        snap.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{:?}", out);

    let text = fs::read_to_string(&snap).expect("read snapshot");
    for needle in [
        "# TYPE ppa_events_pushed_total counter",
        "# TYPE ppa_watermark_lag gauge",
        "# TYPE ppa_resident_events gauge",
        "ppa_stream_bytes_total{dir=\"read\"}",
        "ppa_stream_bytes_total{dir=\"write\"}",
        "ppa_shard_events_total{shard=\"p0\"}",
        "ppa_shard_throughput_eps{shard=\"p0\"}",
        "ppa_obs_self_overhead_ns_per_probe",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // The pipeline really counted: events pushed is nonzero.
    let pushed = text
        .lines()
        .find(|l| l.starts_with("ppa_events_pushed_total "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("ppa_events_pushed_total sample");
    assert!(pushed > 0);
}

#[cfg(feature = "obs")]
#[test]
fn analyze_stream_exports_json_metrics() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let snap = dir.join("snap.json");
    let out = ppa_analyze(&[
        input.to_str().unwrap(),
        "--stream",
        "--metrics-out",
        snap.to_str().unwrap(),
        "--metrics-format",
        "json",
    ]);
    assert!(out.status.success(), "{:?}", out);

    let text = fs::read_to_string(&snap).expect("read snapshot");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("snapshot is valid JSON");
    let metrics = doc["metrics"].as_array().expect("metrics array");
    assert!(!metrics.is_empty());
    let pushed = metrics
        .iter()
        .find(|m| m["name"].as_str() == Some("ppa_events_pushed_total"))
        .expect("ppa_events_pushed_total present");
    assert!(pushed["value"].as_u64().unwrap() > 0);
}

/// The dogfood loop: a `--self-trace` of a streaming run must itself be
/// a valid ppa trace — `ppa check` lints it clean and `ppa analyze`
/// turns it into a well-formed report — in both container formats.
#[cfg(feature = "obs")]
#[test]
fn analyze_self_trace_dogfoods_through_analyze_and_check() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    for name in ["self_trace.jsonl", "self_trace.bin"] {
        let st = dir.join(name);
        let st = st.to_str().unwrap();
        let out = ppa_analyze(&[input.to_str().unwrap(), "--stream", "--self-trace", st]);
        assert!(out.status.success(), "{:?}", out);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("self-trace written to"), "stdout: {stdout}");

        let out = Command::new(env!("CARGO_BIN_EXE_ppa"))
            .args(["check", st])
            .output()
            .expect("run ppa check");
        assert!(out.status.success(), "check {name}: {:?}", out);

        let report = dir.join(format!("{name}.report.jsonl"));
        let out = ppa_analyze(&[st, "--stream", "--out", report.to_str().unwrap()]);
        assert!(out.status.success(), "re-analyze {name}: {:?}", out);
        let text = fs::read_to_string(&report).expect("read self-trace report");
        assert!(!text.trim().is_empty(), "empty report for {name}");
        for line in text.lines() {
            let _: serde_json::Value =
                serde_json::from_str(line).expect("report line is valid JSON");
        }
    }
}

/// The Chrome exporter writes one valid JSON document whose events all
/// carry complete-phase spans named after real pipeline stages.
#[cfg(feature = "obs")]
#[test]
fn analyze_self_trace_chrome_export_parses() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let chrome = dir.join("self_trace_chrome.json");
    let out = ppa_analyze(&[
        input.to_str().unwrap(),
        "--stream",
        "--self-trace",
        chrome.to_str().unwrap(),
        "--self-trace-format",
        "chrome",
    ]);
    assert!(out.status.success(), "{:?}", out);

    let text = fs::read_to_string(&chrome).expect("read chrome export");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("chrome export is valid JSON");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ns"));
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e["ph"].as_str(), Some("X"));
        assert!(e["dur"].as_f64().is_some());
        let name = e["name"].as_str().expect("span name");
        assert!(
            [
                "run",
                "decode",
                "crc_verify",
                "reorder",
                "merge",
                "analyze_push",
                "analyze_emit",
                "checkpoint_write",
                "frame_read",
                "ingest",
                "park"
            ]
            .contains(&name),
            "unknown stage name {name:?}"
        );
    }
    // The root span of the run is always recorded.
    assert!(events.iter().any(|e| e["name"].as_str() == Some("run")));
}

#[test]
fn analyze_self_trace_flags_reject_misuse_with_exit_64() {
    // Self-tracing instruments the streaming pipeline only.
    let out = ppa_analyze(&["t.jsonl", "--self-trace", "s.jsonl"]);
    assert_eq!(out.status.code(), Some(64));
    // The format selector is meaningless without an output path.
    let out = ppa_analyze(&["t.jsonl", "--stream", "--self-trace-format", "chrome"]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_analyze(&[
        "t.jsonl",
        "--stream",
        "--self-trace",
        "s.jsonl",
        "--self-trace-format",
        "xml",
    ]);
    assert_eq!(out.status.code(), Some(64));
    // Periodic re-export needs a snapshot path and a positive period.
    let out = ppa_analyze(&["t.jsonl", "--stream", "--metrics-every", "5"]);
    assert_eq!(out.status.code(), Some(64));
    let out = ppa_analyze(&[
        "t.jsonl",
        "--stream",
        "--metrics-out",
        "m.prom",
        "--metrics-every",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(64));
}
