//! End-to-end test of `ppa analyze`: the streaming pipeline and the batch
//! pipeline must produce byte-identical approximated JSONL.

use ppa::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn measured_jsonl(dir: &std::path::Path) -> PathBuf {
    let cfg = ppa::experiments::experiment_config();
    let mut b = ProgramBuilder::new("analyze-e2e");
    let v = b.sync_var();
    let program = b
        .doacross(1, 64, |body| {
            body.compute("head", 400)
                .await_var(v, -1)
                .compute("cs", 50)
                .advance(v)
        })
        .build()
        .expect("valid workload");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let path = dir.join("measured.jsonl");
    let file = fs::File::create(&path).expect("create measured.jsonl");
    ppa::trace::write_jsonl(&measured.trace, file).expect("write measured.jsonl");
    path
}

#[test]
fn analyze_stream_matches_batch() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let input = measured_jsonl(&dir);
    let out_stream = dir.join("approx_stream.jsonl");
    let out_batch = dir.join("approx_batch.jsonl");

    let bin = env!("CARGO_BIN_EXE_ppa");
    let status = Command::new(bin)
        .args(["analyze", input.to_str().unwrap(), "--stream", "--out"])
        .arg(&out_stream)
        .status()
        .expect("run ppa analyze --stream");
    assert!(status.success());
    let status = Command::new(bin)
        .args(["analyze", input.to_str().unwrap(), "--out"])
        .arg(&out_batch)
        .status()
        .expect("run ppa analyze");
    assert!(status.success());

    let streamed = fs::read(&out_stream).expect("read streaming output");
    let batch = fs::read(&out_batch).expect("read batch output");
    assert!(!streamed.is_empty());
    assert_eq!(streamed, batch);
}

#[test]
fn analyze_rejects_missing_input() {
    let bin = env!("CARGO_BIN_EXE_ppa");
    let status = Command::new(bin)
        .args(["analyze", "/nonexistent/trace.jsonl"])
        .status()
        .expect("run ppa analyze");
    assert!(!status.success());
}
