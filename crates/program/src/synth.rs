//! Seeded synthetic workload generation.
//!
//! Property tests, fuzz-style integration tests, and scaling benches all
//! need structurally valid programs with controlled randomness. The
//! generator here produces them deterministically from a seed, using a
//! local SplitMix64 stream (no external RNG dependency), covering the
//! space the simulator and analyses must handle: serial segments,
//! sequential/vector/DOALL loops, and DOACROSS loops with one or two
//! synchronization variables at varying distances, critical-section
//! shapes, and observability.

use crate::builder::ProgramBuilder;
use crate::program::Program;

/// Bounds for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Maximum top-level segments (at least 1 is generated).
    pub max_segments: usize,
    /// Maximum loop trip count.
    pub max_trip: u64,
    /// Maximum statement cost (ns at the experiment clock).
    pub max_cost: u64,
    /// Maximum DOACROSS dependence distance.
    pub max_distance: u64,
    /// Allow a second synchronization variable in DOACROSS bodies.
    pub two_variables: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_segments: 4,
            max_trip: 48,
            max_cost: 900,
            max_distance: 3,
            two_variables: true,
        }
    }
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo).max(1))
    }

    fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }
}

/// Generates a structurally valid program from a seed.
///
/// The output always validates (it is produced through the checked
/// builder) and always terminates under simulation: awaits use negative
/// offsets bounded by the loop's distance.
pub fn synthesize(seed: u64, config: &SynthConfig) -> Program {
    let mut rng = Rng(seed);
    let mut b = ProgramBuilder::new(format!("synth-{seed:#x}"));

    let segments = 1 + rng.below(config.max_segments.max(1) as u64) as usize;
    for s in 0..segments {
        match rng.below(5) {
            // Serial segment.
            0 => {
                let n = 1 + rng.below(4) as usize;
                let costs: Vec<(String, u64)> = (0..n)
                    .map(|i| (format!("ser{s}_{i}"), rng.range(1, config.max_cost)))
                    .collect();
                b = b.serial(costs);
            }
            // Sequential loop.
            1 => {
                let trip = rng.range(1, config.max_trip);
                let stmts = 1 + rng.below(3);
                let cost = rng.range(1, config.max_cost);
                b = b.sequential_loop(trip, |mut body| {
                    for i in 0..stmts {
                        body = body.compute(format!("sq{s}_{i}"), cost);
                    }
                    body
                });
            }
            // DOALL loop.
            2 => {
                let trip = rng.range(1, config.max_trip);
                let cost = rng.range(1, config.max_cost);
                b = b.doall(trip, |body| body.compute(format!("da{s}"), cost));
            }
            // DOACROSS loop (twice as likely as the others).
            _ => {
                let distance = rng.range(1, config.max_distance + 1);
                let trip = rng.range(1, config.max_trip);
                let head = rng.range(1, config.max_cost);
                let cs = rng.below(config.max_cost / 2);
                let tail = rng.below(config.max_cost);
                let head_stmts = 1 + rng.below(3);
                let unobservable_cs = rng.chance(400);
                let second_var = config.two_variables && rng.chance(300);
                let v1 = b.sync_var();
                let v2 = if second_var { Some(b.sync_var()) } else { None };
                b = b.doacross(distance, trip, |mut body| {
                    for i in 0..head_stmts {
                        body = body.compute(format!("h{s}_{i}"), head);
                    }
                    body = body.await_var(v1, -(distance as i64));
                    if let Some(v2) = v2 {
                        body = body.await_var(v2, -(distance as i64));
                    }
                    body = if unobservable_cs {
                        body.compute_unobservable(format!("cs{s}"), cs.max(1))
                    } else {
                        body.compute(format!("cs{s}"), cs.max(1))
                    };
                    body = body.advance(v1);
                    if let Some(v2) = v2 {
                        body = body.advance(v2);
                    }
                    if tail > 0 {
                        body = body.compute(format!("t{s}"), tail);
                    }
                    body
                });
            }
        }
    }
    b.build()
        .expect("generator output is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn many_seeds_validate() {
        let cfg = SynthConfig::default();
        for seed in 0..200 {
            let p = synthesize(seed, &cfg);
            validate(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!p.segments.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        assert_eq!(synthesize(42, &cfg), synthesize(42, &cfg));
        assert_ne!(synthesize(42, &cfg), synthesize(43, &cfg));
    }

    #[test]
    fn covers_the_construct_space() {
        // Over a few hundred seeds we must have seen every construct.
        let cfg = SynthConfig::default();
        let (mut serial, mut seq, mut doall, mut doacross, mut two_var, mut unobs) =
            (false, false, false, false, false, false);
        for seed in 0..300 {
            let p = synthesize(seed, &cfg);
            for seg in &p.segments {
                match seg {
                    crate::Segment::Serial(_) => serial = true,
                    crate::Segment::Loop(l) => match l.kind {
                        crate::LoopKind::Sequential => seq = true,
                        crate::LoopKind::Doall => doall = true,
                        crate::LoopKind::Doacross { .. } => {
                            doacross = true;
                            let vars: std::collections::BTreeSet<_> = l
                                .sync_statements()
                                .filter_map(|s| s.kind.sync_var())
                                .collect();
                            if vars.len() == 2 {
                                two_var = true;
                            }
                            if l.body.iter().any(|s| !s.observable) {
                                unobs = true;
                            }
                        }
                        _ => {}
                    },
                }
            }
        }
        assert!(
            serial && seq && doall && doacross,
            "basic constructs missing"
        );
        assert!(two_var, "no two-variable DOACROSS generated");
        assert!(unobs, "no unobservable critical section generated");
    }
}
