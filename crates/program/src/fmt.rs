//! Program pretty-printing: Figure-3-style structure dumps.
//!
//! Renders a program's statement graph the way the paper's Figure 3 draws
//! the Livermore loops: numbered statements, loop headers with their
//! classification and dependence distance, synchronization operations
//! called out, and unobservable (fused) statements marked.

use crate::loops::LoopKind;
use crate::program::{Program, Segment};
use crate::statement::{Statement, StatementKind};
use std::fmt::Write;

fn statement_line(out: &mut String, s: &Statement, indent: &str) {
    let desc = match s.kind {
        StatementKind::Compute { cost } => {
            format!(
                "{}  [{} ns{}]",
                s.label,
                cost,
                if s.observable { "" } else { ", fused" }
            )
        }
        StatementKind::Advance { var } => format!("advance({var}, i)"),
        StatementKind::Await { var, offset } => format!("await({var}, i{offset})"),
    };
    let marker = match s.kind {
        StatementKind::Advance { .. } | StatementKind::Await { .. } => "◆",
        StatementKind::Compute { .. } if !s.observable => "░",
        _ => "•",
    };
    let _ = writeln!(out, "{indent}{marker} {}  {desc}", s.id);
}

/// Renders the program structure as indented text.
pub fn format_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {:?}", program.name);
    for seg in &program.segments {
        match seg {
            Segment::Serial(stmts) => {
                let _ = writeln!(out, "  serial:");
                for s in stmts {
                    statement_line(&mut out, s, "    ");
                }
            }
            Segment::Loop(l) => {
                let kind = match l.kind {
                    LoopKind::Sequential => "do (sequential)".to_string(),
                    LoopKind::Vector { speedup_permille } => {
                        format!("do (vector, {:.1}x)", speedup_permille as f64 / 1000.0)
                    }
                    LoopKind::Doall => "doall".to_string(),
                    LoopKind::Doacross { distance } => {
                        format!("doacross (distance {distance})")
                    }
                };
                let _ = writeln!(out, "  {} {} for i in 0..{}:", l.id, kind, l.trip_count);
                for s in &l.body {
                    statement_line(&mut out, s, "    ");
                }
                if l.kind.is_concurrent() {
                    let _ = writeln!(out, "    ▬ barrier {}", l.barrier);
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "  ({} dynamic statements, serial cost {} units)",
        program.dynamic_statement_count(),
        program.serial_cost()
    );
    out.push_str("  legend: • statement  ░ fused (unobservable)  ◆ synchronization  ▬ barrier\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn renders_the_figure3_shape() {
        let mut b = ProgramBuilder::new("lfk03-like");
        let v = b.sync_var();
        let p = b
            .serial([("q = 0", 100u64)])
            .doacross(1, 8, |body| {
                body.compute("t = z[k]*x[k]", 650)
                    .await_var(v, -1)
                    .compute_unobservable("q = q + t", 566)
                    .advance(v)
            })
            .build()
            .unwrap();
        let s = format_program(&p);
        assert!(s.contains("program \"lfk03-like\""));
        assert!(s.contains("serial:"));
        assert!(s.contains("doacross (distance 1)"));
        assert!(s.contains("await(A0, i-1)"));
        assert!(s.contains("advance(A0, i)"));
        assert!(s.contains("fused"));
        assert!(s.contains("barrier B0"));
        assert!(s.contains("legend"));
    }

    #[test]
    fn renders_vector_and_doall() {
        let p = ProgramBuilder::new("mixed")
            .vector_loop(4, 4000, |b| b.compute("x", 10))
            .doall(4, |b| b.compute("y", 10))
            .build()
            .unwrap();
        let s = format_program(&p);
        assert!(s.contains("vector, 4.0x"));
        assert!(s.contains("doall"));
    }
}
