//! Fluent program construction.
//!
//! Ids (statements, loops, barriers, sync variables) are assigned
//! automatically in encounter order; the builder validates the finished
//! program.

use crate::loops::{Loop, LoopKind};
use crate::program::{Program, Segment};
use crate::statement::Statement;
use crate::validate::{validate, ProgramError};
use ppa_trace::{BarrierId, LoopId, StatementId, SyncVarId};

/// Builds a [`Program`] segment by segment.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    segments: Vec<Segment>,
    next_stmt: u32,
    next_loop: u32,
    next_barrier: u32,
    next_var: u32,
}

/// Builds one loop body inside [`ProgramBuilder::doacross`] and friends.
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    owner: &'a mut ProgramBuilder,
    body: Vec<Statement>,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            segments: Vec::new(),
            next_stmt: 0,
            next_loop: 0,
            next_barrier: 0,
            next_var: 0,
        }
    }

    fn fresh_stmt(&mut self) -> StatementId {
        let id = StatementId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Allocates a fresh synchronization variable for use inside loop
    /// bodies built later.
    pub fn sync_var(&mut self) -> SyncVarId {
        let id = SyncVarId(self.next_var);
        self.next_var += 1;
        id
    }

    /// Adds a serial segment of compute statements given as
    /// `(label, cost)` pairs.
    pub fn serial<L: Into<String>>(mut self, stmts: impl IntoIterator<Item = (L, u64)>) -> Self {
        let stmts = stmts
            .into_iter()
            .map(|(label, cost)| {
                let id = self.fresh_stmt();
                Statement::compute(id, label, cost)
            })
            .collect();
        self.segments.push(Segment::Serial(stmts));
        self
    }

    fn push_loop(
        mut self,
        kind: LoopKind,
        trip_count: u64,
        f: impl FnOnce(BodyBuilder<'_>) -> BodyBuilder<'_>,
    ) -> Self {
        let body = {
            let bb = BodyBuilder {
                owner: &mut self,
                body: Vec::new(),
            };
            f(bb).body
        };
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        let barrier = BarrierId(self.next_barrier);
        self.next_barrier += 1;
        self.segments.push(Segment::Loop(Loop {
            id,
            kind,
            trip_count,
            body,
            barrier,
        }));
        self
    }

    /// Adds a sequential loop.
    pub fn sequential_loop(
        self,
        trip_count: u64,
        f: impl FnOnce(BodyBuilder<'_>) -> BodyBuilder<'_>,
    ) -> Self {
        self.push_loop(LoopKind::Sequential, trip_count, f)
    }

    /// Adds a vector loop with the given speedup (per mille).
    pub fn vector_loop(
        self,
        trip_count: u64,
        speedup_permille: u32,
        f: impl FnOnce(BodyBuilder<'_>) -> BodyBuilder<'_>,
    ) -> Self {
        self.push_loop(LoopKind::Vector { speedup_permille }, trip_count, f)
    }

    /// Adds a DOALL loop.
    pub fn doall(
        self,
        trip_count: u64,
        f: impl FnOnce(BodyBuilder<'_>) -> BodyBuilder<'_>,
    ) -> Self {
        self.push_loop(LoopKind::Doall, trip_count, f)
    }

    /// Adds a DOACROSS loop with dependence distance `distance`.
    pub fn doacross(
        self,
        distance: u64,
        trip_count: u64,
        f: impl FnOnce(BodyBuilder<'_>) -> BodyBuilder<'_>,
    ) -> Self {
        self.push_loop(LoopKind::Doacross { distance }, trip_count, f)
    }

    /// Finishes and validates the program.
    pub fn build(self) -> Result<Program, ProgramError> {
        let program = Program {
            name: self.name,
            segments: self.segments,
        };
        validate(&program)?;
        Ok(program)
    }
}

impl BodyBuilder<'_> {
    /// Appends a compute statement.
    pub fn compute(mut self, label: impl Into<String>, cost: u64) -> Self {
        let id = self.owner.fresh_stmt();
        self.body.push(Statement::compute(id, label, cost));
        self
    }

    /// Appends a compute statement invisible to source-level statement
    /// instrumentation (e.g. an update fused with compiler-inserted
    /// synchronization at the assembly level).
    pub fn compute_unobservable(mut self, label: impl Into<String>, cost: u64) -> Self {
        let id = self.owner.fresh_stmt();
        self.body
            .push(Statement::compute_unobservable(id, label, cost));
        self
    }

    /// Appends an `await(var, i + offset)` statement (`offset < 0`).
    pub fn await_var(mut self, var: SyncVarId, offset: i64) -> Self {
        let id = self.owner.fresh_stmt();
        self.body.push(Statement::await_on(
            id,
            format!("await({var},{offset})"),
            var,
            offset,
        ));
        self
    }

    /// Appends an `advance(var, i)` statement.
    pub fn advance(mut self, var: SyncVarId) -> Self {
        let id = self.owner.fresh_stmt();
        self.body
            .push(Statement::advance(id, format!("advance({var})"), var));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::StatementKind;

    #[test]
    fn builds_the_canonical_doacross_shape() {
        let mut b = ProgramBuilder::new("canon");
        let v = b.sync_var();
        let p = b
            .serial([("init", 100u64)])
            .doacross(1, 8, |body| {
                body.compute("head", 50)
                    .await_var(v, -1)
                    .compute("cs", 20)
                    .advance(v)
                    .compute("tail", 30)
            })
            .serial([("fini", 40u64)])
            .build()
            .unwrap();

        assert_eq!(p.segments.len(), 3);
        assert_eq!(p.loops().count(), 1);
        let l = p.loops().next().unwrap();
        assert_eq!(l.kind, LoopKind::Doacross { distance: 1 });
        assert_eq!(l.trip_count, 8);
        assert_eq!(l.body.len(), 5);
        // Ids are dense and unique.
        let ids: Vec<u32> = p.statements().map(|s| s.id.0).collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn build_validates() {
        let mut b = ProgramBuilder::new("bad");
        let v = b.sync_var();
        // An await on a variable that is never advanced.
        let err = b
            .doacross(1, 4, |body| body.await_var(v, -1))
            .build()
            .unwrap_err();
        assert!(matches!(err, ProgramError::AwaitWithoutAdvance { .. }));
    }

    #[test]
    fn sync_vars_are_distinct() {
        let mut b = ProgramBuilder::new("vars");
        let v1 = b.sync_var();
        let v2 = b.sync_var();
        assert_ne!(v1, v2);
    }

    #[test]
    fn body_builder_labels_sync_statements() {
        let mut b = ProgramBuilder::new("labels");
        let v = b.sync_var();
        let p = b
            .doacross(2, 4, |body| {
                body.await_var(v, -2).compute("x", 1).advance(v)
            })
            .build()
            .unwrap();
        let l = p.loops().next().unwrap();
        assert!(matches!(
            l.body[0].kind,
            StatementKind::Await { offset: -2, .. }
        ));
        assert!(l.body[0].label.starts_with("await("));
        assert!(l.body[2].label.starts_with("advance("));
    }
}
