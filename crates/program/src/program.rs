//! Whole-program structure.
//!
//! The experiment workloads have the shape the paper's Figure 4 displays:
//! a serial prologue, one (or more) parallel loop, and a serial epilogue.
//! [`Program`] generalizes that to any sequence of serial segments and
//! loops.

use crate::loops::Loop;
use crate::statement::Statement;
use serde::{Deserialize, Serialize};

/// One top-level program segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// Straight-line serial statements (run on processor 0).
    Serial(Vec<Statement>),
    /// A loop construct.
    Loop(Loop),
}

/// A complete program: named, segmented, analyzable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (e.g. `"lfk03"`).
    pub name: String,
    /// Segments in execution order.
    pub segments: Vec<Segment>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            segments: Vec::new(),
        }
    }

    /// All statements, in segment order (loop bodies once each).
    pub fn statements(&self) -> impl Iterator<Item = &Statement> + '_ {
        self.segments.iter().flat_map(|seg| match seg {
            Segment::Serial(stmts) => stmts.iter(),
            Segment::Loop(l) => l.body.iter(),
        })
    }

    /// The loops, in order.
    pub fn loops(&self) -> impl Iterator<Item = &Loop> + '_ {
        self.segments.iter().filter_map(|seg| match seg {
            Segment::Loop(l) => Some(l),
            Segment::Serial(_) => None,
        })
    }

    /// Total statement *executions* in one run (loop bodies multiplied by
    /// trip count) — the number of potential statement events.
    pub fn dynamic_statement_count(&self) -> u64 {
        self.segments
            .iter()
            .map(|seg| match seg {
                Segment::Serial(stmts) => stmts.len() as u64,
                Segment::Loop(l) => l.body.len() as u64 * l.trip_count,
            })
            .sum()
    }

    /// Total serial compute cost in cycles if run on one processor.
    pub fn serial_cost(&self) -> u64 {
        self.segments
            .iter()
            .map(|seg| match seg {
                Segment::Serial(stmts) => stmts.iter().map(Statement::cost).sum::<u64>(),
                Segment::Loop(l) => l.iteration_cost() * l.trip_count,
            })
            .sum()
    }

    /// True if any loop is concurrent.
    pub fn has_concurrency(&self) -> bool {
        self.loops().any(|l| l.kind.is_concurrent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopKind;
    use ppa_trace::{BarrierId, LoopId, StatementId};

    fn two_segment_program() -> Program {
        Program {
            name: "p".into(),
            segments: vec![
                Segment::Serial(vec![Statement::compute(StatementId(0), "init", 10)]),
                Segment::Loop(Loop {
                    id: LoopId(0),
                    kind: LoopKind::Doall,
                    trip_count: 5,
                    body: vec![
                        Statement::compute(StatementId(1), "a", 20),
                        Statement::compute(StatementId(2), "b", 30),
                    ],
                    barrier: BarrierId(0),
                }),
            ],
        }
    }

    #[test]
    fn counting() {
        let p = two_segment_program();
        assert_eq!(p.statements().count(), 3);
        assert_eq!(p.loops().count(), 1);
        assert_eq!(p.dynamic_statement_count(), 1 + 2 * 5);
        assert_eq!(p.serial_cost(), 10 + 50 * 5);
        assert!(p.has_concurrency());
    }

    #[test]
    fn empty_program() {
        let p = Program::new("empty");
        assert_eq!(p.dynamic_statement_count(), 0);
        assert_eq!(p.serial_cost(), 0);
        assert!(!p.has_concurrency());
    }
}
