//! Loop constructs.
//!
//! The Alliant FX/Fortran compiler classified loops as scalar, vector, or
//! concurrent; concurrent loops without cross-iteration dependencies run
//! as DOALL, those with dependencies as DOACROSS with advance/await
//! synchronization (Cytron's construct, §4.3). The model mirrors that
//! classification.

use crate::statement::{Statement, StatementKind};
use ppa_trace::{BarrierId, LoopId};
use serde::{Deserialize, Serialize};

/// How a loop's iterations may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    /// Iterations run in order on one processor.
    Sequential,
    /// Vector-mode execution: in-order on one processor with hardware
    /// pipelining, modeled as a per-iteration cost scale (per mille).
    /// `Vector { speedup_permille: 4000 }` runs each iteration at a quarter
    /// of its scalar cost.
    Vector {
        /// Scalar-to-vector speedup, in thousandths (1000 = no speedup).
        speedup_permille: u32,
    },
    /// Fully independent concurrent iterations.
    Doall,
    /// Concurrent iterations with constant-distance cross-iteration
    /// dependencies enforced by advance/await.
    Doacross {
        /// The constant data dependence distance `d`: iteration `i + d`
        /// depends on iteration `i`.
        distance: u64,
    },
}

impl LoopKind {
    /// True for DOALL/DOACROSS (multi-processor) loops.
    pub fn is_concurrent(&self) -> bool {
        matches!(self, LoopKind::Doall | LoopKind::Doacross { .. })
    }

    /// The dependence distance, if this is a DOACROSS loop.
    pub fn distance(&self) -> Option<u64> {
        match self {
            LoopKind::Doacross { distance } => Some(*distance),
            _ => None,
        }
    }
}

/// A (non-nested) loop: a body of statements executed `trip_count` times.
///
/// Concurrent loops end at an implicit barrier (`barrier`), matching the
/// paper's treatment: "the end of the DOACROSS loops are handled as
/// barriers" (§5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// Unique loop id.
    pub id: LoopId,
    /// Iteration semantics.
    pub kind: LoopKind,
    /// Number of iterations.
    pub trip_count: u64,
    /// The loop body, executed once per iteration.
    pub body: Vec<Statement>,
    /// The barrier closing the loop (meaningful for concurrent loops).
    pub barrier: BarrierId,
}

impl Loop {
    /// Sum of body compute costs for one iteration, in cycles.
    pub fn iteration_cost(&self) -> u64 {
        self.body.iter().map(Statement::cost).sum()
    }

    /// Compute cost of the body *before* the first await statement — the
    /// independent-phase length, which controls critical-section
    /// contention.
    pub fn pre_await_cost(&self) -> u64 {
        self.body
            .iter()
            .take_while(|s| !matches!(s.kind, StatementKind::Await { .. }))
            .map(Statement::cost)
            .sum()
    }

    /// Compute cost of statements between the first await and the first
    /// subsequent advance — the critical-section length.
    pub fn critical_cost(&self) -> u64 {
        let mut in_cs = false;
        let mut cost = 0;
        for s in &self.body {
            match s.kind {
                StatementKind::Await { .. } if !in_cs => in_cs = true,
                StatementKind::Advance { .. } if in_cs => return cost,
                _ if in_cs => cost += s.cost(),
                _ => {}
            }
        }
        cost
    }

    /// The synchronization statements in the body, in order.
    pub fn sync_statements(&self) -> impl Iterator<Item = &Statement> + '_ {
        self.body.iter().filter(|s| s.kind.is_sync())
    }

    /// Number of statement events one iteration emits under full statement
    /// instrumentation (sync statements excluded — those emit sync events).
    pub fn compute_statement_count(&self) -> usize {
        self.body.iter().filter(|s| !s.kind.is_sync()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{StatementId, SyncVarId};

    fn doacross_body() -> Vec<Statement> {
        vec![
            Statement::compute(StatementId(0), "head", 100),
            Statement::await_on(StatementId(1), "await", SyncVarId(0), -1),
            Statement::compute(StatementId(2), "cs", 30),
            Statement::advance(StatementId(3), "advance", SyncVarId(0)),
            Statement::compute(StatementId(4), "tail", 70),
        ]
    }

    fn sample_loop() -> Loop {
        Loop {
            id: LoopId(0),
            kind: LoopKind::Doacross { distance: 1 },
            trip_count: 10,
            body: doacross_body(),
            barrier: BarrierId(0),
        }
    }

    #[test]
    fn cost_partitions() {
        let l = sample_loop();
        assert_eq!(l.iteration_cost(), 200);
        assert_eq!(l.pre_await_cost(), 100);
        assert_eq!(l.critical_cost(), 30);
        assert_eq!(l.sync_statements().count(), 2);
        assert_eq!(l.compute_statement_count(), 3);
    }

    #[test]
    fn kind_predicates() {
        assert!(LoopKind::Doall.is_concurrent());
        assert!(LoopKind::Doacross { distance: 2 }.is_concurrent());
        assert!(!LoopKind::Sequential.is_concurrent());
        assert!(!LoopKind::Vector {
            speedup_permille: 4000
        }
        .is_concurrent());
        assert_eq!(LoopKind::Doacross { distance: 2 }.distance(), Some(2));
        assert_eq!(LoopKind::Doall.distance(), None);
    }

    #[test]
    fn critical_cost_without_cs_is_zero() {
        let l = Loop {
            id: LoopId(1),
            kind: LoopKind::Doall,
            trip_count: 4,
            body: vec![Statement::compute(StatementId(0), "only", 50)],
            barrier: BarrierId(1),
        };
        assert_eq!(l.critical_cost(), 0);
        assert_eq!(l.pre_await_cost(), 50);
    }
}
