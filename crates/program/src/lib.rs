//! # ppa-program — the statement-graph program model
//!
//! Programs in this reproduction are explicit statement sequences, the
//! paper's `P = S1..Sn` (§2): each statement has an abstract cycle cost,
//! loops are classified Sequential / Vector / DOALL / DOACROSS (the Alliant
//! FX/Fortran classification), and DOACROSS bodies contain explicit
//! `advance`/`await` statements with constant-distance tags — the
//! structures Figure 3 of the paper shows for Livermore loops 3, 4, and 17.
//!
//! The same [`Program`] value drives both execution backends: the
//! deterministic discrete-event simulator (`ppa-sim`) and the real-thread
//! executor (`ppa-native`). [`InstrumentationPlan`] selects which event
//! classes a run records, mirroring the paper's two experimental
//! configurations (statement-only vs. statement+synchronization
//! instrumentation).

#![warn(missing_docs)]

mod builder;
mod fmt;
mod instr;
mod loops;
mod program;
mod statement;
pub mod synth;
mod validate;

pub use builder::{BodyBuilder, ProgramBuilder};
pub use fmt::format_program;
pub use instr::InstrumentationPlan;
pub use loops::{Loop, LoopKind};
pub use program::{Program, Segment};
pub use statement::{Statement, StatementKind};
pub use validate::{validate, ProgramError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a random but structurally valid DOACROSS program.
    fn arb_program() -> impl Strategy<Value = Program> {
        (
            1u64..4,   // distance
            1u64..32,  // trip count
            1u64..200, // head cost
            0u64..100, // cs cost
            0u64..200, // tail cost
            0usize..4, // serial statements before
        )
            .prop_map(|(d, n, head, cs, tail, serial_n)| {
                let mut b = ProgramBuilder::new("arb");
                let v = b.sync_var();
                let mut b = b.serial((0..serial_n).map(|i| (format!("s{i}"), 10u64)));
                b = b.doacross(d, n, |body| {
                    body.compute("head", head)
                        .await_var(v, -(d as i64))
                        .compute("cs", cs)
                        .advance(v)
                        .compute("tail", tail)
                });
                b.build().expect("builder output is valid by construction")
            })
    }

    proptest! {
        /// Builder output always validates.
        #[test]
        fn builder_output_validates(p in arb_program()) {
            prop_assert!(validate(&p).is_ok());
        }

        /// Cost accounting is consistent: serial cost equals the sum over
        /// dynamic statement executions.
        #[test]
        fn serial_cost_matches_manual_sum(p in arb_program()) {
            let mut manual = 0u64;
            for seg in &p.segments {
                match seg {
                    Segment::Serial(stmts) => {
                        manual += stmts.iter().map(Statement::cost).sum::<u64>();
                    }
                    Segment::Loop(l) => {
                        manual += l.trip_count * l.body.iter().map(Statement::cost).sum::<u64>();
                    }
                }
            }
            prop_assert_eq!(p.serial_cost(), manual);
        }

        /// The pre-await + critical-section costs never exceed the full
        /// iteration cost.
        #[test]
        fn cost_partition_sums(p in arb_program()) {
            for l in p.loops() {
                let partitioned = l.pre_await_cost() + l.critical_cost();
                prop_assert!(partitioned <= l.iteration_cost());
            }
        }

        /// Serde round-trip over the whole program structure.
        #[test]
        fn program_serde_round_trip(p in arb_program()) {
            let json = serde_json::to_string(&p).unwrap();
            let back: Program = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(p, back);
        }
    }
}
