//! Instrumentation plans.
//!
//! An instrumentation of `P = S1..Sn` chooses which points `Ij` are
//! non-null (§2). The plan distinguishes the classes of events the paper's
//! two experiments used: Table 1's runs traced every statement but did
//! *not* treat synchronization operations specially; Table 2's runs added
//! advance/awaitB/awaitE instrumentation (the sync operations were
//! compiler-inserted and had to be instrumented at the assembly level,
//! §5.1 fn. 5).

use ppa_trace::StatementId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which event classes an instrumented run records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentationPlan {
    /// Record statement events. If `selected` is `Some`, only those
    /// statements; otherwise every compute statement.
    pub statements: bool,
    /// Restrict statement tracing to this set.
    pub selected: Option<BTreeSet<StatementId>>,
    /// Record `advance` / `awaitB` / `awaitE` synchronization events.
    pub sync_ops: bool,
    /// Record program-boundary and loop begin/end markers.
    pub markers: bool,
    /// Record per-iteration begin/end markers. Off in the paper-style
    /// plans: a marker pair per iteration would dominate the per-statement
    /// overhead the experiments calibrate, and the analyses identify
    /// iterations through the synchronization tags instead (paper §5.1
    /// fn. 6).
    pub iteration_markers: bool,
    /// Record barrier enter/exit events.
    pub barriers: bool,
}

impl InstrumentationPlan {
    /// No instrumentation at all: the run produces the *actual* trace (the
    /// simulator still emits events so the ground truth is observable, but
    /// charges no overhead for them).
    pub fn none() -> Self {
        InstrumentationPlan {
            statements: false,
            selected: None,
            sync_ops: false,
            markers: false,
            iteration_markers: false,
            barriers: false,
        }
    }

    /// Full statement-level instrumentation *without* special treatment of
    /// synchronization operations — the Table 1 configuration.
    pub fn full_statements() -> Self {
        InstrumentationPlan {
            statements: true,
            selected: None,
            sync_ops: false,
            markers: true,
            iteration_markers: false,
            barriers: false,
        }
    }

    /// Full statement-level instrumentation *plus* synchronization-event
    /// instrumentation — the Table 2 configuration ("it was necessary to
    /// instrument loops 3, 4, and 17 more heavily in order to capture
    /// synchronization execution", §5.2).
    pub fn full_with_sync() -> Self {
        InstrumentationPlan {
            statements: true,
            selected: None,
            sync_ops: true,
            markers: true,
            iteration_markers: false,
            barriers: true,
        }
    }

    /// Statement tracing restricted to a chosen set (partial
    /// instrumentation), with sync events on.
    pub fn selective(stmts: impl IntoIterator<Item = StatementId>) -> Self {
        InstrumentationPlan {
            statements: true,
            selected: Some(stmts.into_iter().collect()),
            sync_ops: true,
            markers: true,
            iteration_markers: false,
            barriers: true,
        }
    }

    /// True if the given statement's execution should emit a statement
    /// event.
    pub fn traces_statement(&self, id: StatementId) -> bool {
        self.statements
            && self
                .selected
                .as_ref()
                .map(|set| set.contains(&id))
                .unwrap_or(true)
    }

    /// True if the plan records anything at all.
    pub fn is_active(&self) -> bool {
        self.statements || self.sync_ops || self.markers || self.iteration_markers || self.barriers
    }
}

impl Default for InstrumentationPlan {
    fn default() -> Self {
        InstrumentationPlan::full_with_sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!InstrumentationPlan::none().is_active());
        let full = InstrumentationPlan::full_statements();
        assert!(full.is_active());
        assert!(full.traces_statement(StatementId(9)));
        assert!(!full.sync_ops);
        let sync = InstrumentationPlan::full_with_sync();
        assert!(sync.sync_ops && sync.barriers);
    }

    #[test]
    fn selective_plan_filters() {
        let plan = InstrumentationPlan::selective([StatementId(1), StatementId(3)]);
        assert!(plan.traces_statement(StatementId(1)));
        assert!(!plan.traces_statement(StatementId(2)));
        assert!(plan.sync_ops);
    }

    #[test]
    fn statements_flag_gates_selection() {
        let mut plan = InstrumentationPlan::selective([StatementId(1)]);
        plan.statements = false;
        assert!(!plan.traces_statement(StatementId(1)));
    }
}
