//! Program well-formedness checks.
//!
//! The simulator and the native executor both assume these invariants;
//! validating up front turns malformed workloads into typed errors instead
//! of deadlocks or nonsense traces.

use crate::loops::{Loop, LoopKind};
use crate::program::{Program, Segment};
use crate::statement::StatementKind;
use ppa_trace::{LoopId, StatementId, SyncVarId};
use std::collections::BTreeSet;
use std::fmt;

/// Program validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named after the id types they hold
pub enum ProgramError {
    /// Two statements share an id.
    DuplicateStatementId(StatementId),
    /// Two loops share an id.
    DuplicateLoopId(LoopId),
    /// A sync statement appears outside a DOACROSS loop.
    SyncOutsideDoacross(StatementId),
    /// An `await` has a non-negative offset (it would await itself or a
    /// future iteration — guaranteed deadlock).
    NonNegativeAwaitOffset { stmt: StatementId, offset: i64 },
    /// A loop body advances the same variable twice in one iteration
    /// (duplicate tags at run time).
    DoubleAdvance { loop_id: LoopId, var: SyncVarId },
    /// A variable is awaited in a loop that never advances it and no other
    /// segment does either — every non-pre-advanced await would deadlock.
    AwaitWithoutAdvance { loop_id: LoopId, var: SyncVarId },
    /// An `await` follows the `advance` of the same variable in the body.
    /// With self-referential tags this deadlocks once the pipeline drains:
    /// iteration `i` would hold its advance hostage to a wait that only a
    /// *later* statement of an *earlier* iteration satisfies.
    AwaitAfterAdvance { loop_id: LoopId, var: SyncVarId },
    /// A loop with zero iterations.
    EmptyLoop(LoopId),
    /// A DOACROSS loop with distance zero (iteration depends on itself).
    ZeroDistance(LoopId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateStatementId(id) => write!(f, "duplicate statement id {id}"),
            ProgramError::DuplicateLoopId(id) => write!(f, "duplicate loop id {id}"),
            ProgramError::SyncOutsideDoacross(id) => {
                write!(f, "sync statement {id} outside a DOACROSS loop")
            }
            ProgramError::NonNegativeAwaitOffset { stmt, offset } => {
                write!(f, "await {stmt} has non-negative offset {offset}")
            }
            ProgramError::DoubleAdvance { loop_id, var } => {
                write!(f, "{loop_id} advances {var} twice per iteration")
            }
            ProgramError::AwaitWithoutAdvance { loop_id, var } => {
                write!(f, "{loop_id} awaits {var} which is never advanced")
            }
            ProgramError::AwaitAfterAdvance { loop_id, var } => {
                write!(f, "{loop_id} awaits {var} after advancing it")
            }
            ProgramError::EmptyLoop(id) => write!(f, "{id} has zero iterations"),
            ProgramError::ZeroDistance(id) => write!(f, "{id} is DOACROSS with distance 0"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Validates a program; returns it untouched on success.
pub fn validate(program: &Program) -> Result<(), ProgramError> {
    let mut stmt_ids = BTreeSet::new();
    let mut loop_ids = BTreeSet::new();

    for seg in &program.segments {
        match seg {
            Segment::Serial(stmts) => {
                for s in stmts {
                    if !stmt_ids.insert(s.id) {
                        return Err(ProgramError::DuplicateStatementId(s.id));
                    }
                    if s.kind.is_sync() {
                        return Err(ProgramError::SyncOutsideDoacross(s.id));
                    }
                }
            }
            Segment::Loop(l) => {
                if !loop_ids.insert(l.id) {
                    return Err(ProgramError::DuplicateLoopId(l.id));
                }
                for s in &l.body {
                    if !stmt_ids.insert(s.id) {
                        return Err(ProgramError::DuplicateStatementId(s.id));
                    }
                }
                validate_loop(l)?;
            }
        }
    }
    Ok(())
}

fn validate_loop(l: &Loop) -> Result<(), ProgramError> {
    if l.trip_count == 0 {
        return Err(ProgramError::EmptyLoop(l.id));
    }
    if l.kind == (LoopKind::Doacross { distance: 0 }) {
        return Err(ProgramError::ZeroDistance(l.id));
    }

    let is_doacross = matches!(l.kind, LoopKind::Doacross { .. });
    let mut advanced: BTreeSet<SyncVarId> = BTreeSet::new();
    let mut awaited: BTreeSet<SyncVarId> = BTreeSet::new();

    for s in &l.body {
        match s.kind {
            StatementKind::Advance { var } => {
                if !is_doacross {
                    return Err(ProgramError::SyncOutsideDoacross(s.id));
                }
                if !advanced.insert(var) {
                    return Err(ProgramError::DoubleAdvance { loop_id: l.id, var });
                }
            }
            StatementKind::Await { var, offset } => {
                if !is_doacross {
                    return Err(ProgramError::SyncOutsideDoacross(s.id));
                }
                if offset >= 0 {
                    return Err(ProgramError::NonNegativeAwaitOffset { stmt: s.id, offset });
                }
                if advanced.contains(&var) {
                    return Err(ProgramError::AwaitAfterAdvance { loop_id: l.id, var });
                }
                awaited.insert(var);
            }
            StatementKind::Compute { .. } => {}
        }
    }

    for var in awaited {
        if !advanced.contains(&var) {
            return Err(ProgramError::AwaitWithoutAdvance { loop_id: l.id, var });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::Statement;
    use ppa_trace::BarrierId;

    fn doacross(body: Vec<Statement>) -> Program {
        Program {
            name: "t".into(),
            segments: vec![Segment::Loop(Loop {
                id: LoopId(0),
                kind: LoopKind::Doacross { distance: 1 },
                trip_count: 4,
                body,
                barrier: BarrierId(0),
            })],
        }
    }

    #[test]
    fn valid_doacross_passes() {
        let p = doacross(vec![
            Statement::compute(StatementId(0), "a", 10),
            Statement::await_on(StatementId(1), "w", SyncVarId(0), -1),
            Statement::compute(StatementId(2), "cs", 5),
            Statement::advance(StatementId(3), "adv", SyncVarId(0)),
        ]);
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn duplicate_statement_id_rejected() {
        let p = doacross(vec![
            Statement::compute(StatementId(0), "a", 10),
            Statement::compute(StatementId(0), "b", 10),
        ]);
        assert_eq!(
            validate(&p),
            Err(ProgramError::DuplicateStatementId(StatementId(0)))
        );
    }

    #[test]
    fn sync_in_serial_rejected() {
        let p = Program {
            name: "t".into(),
            segments: vec![Segment::Serial(vec![Statement::advance(
                StatementId(0),
                "adv",
                SyncVarId(0),
            )])],
        };
        assert_eq!(
            validate(&p),
            Err(ProgramError::SyncOutsideDoacross(StatementId(0)))
        );
    }

    #[test]
    fn sync_in_doall_rejected() {
        let mut p = doacross(vec![Statement::advance(
            StatementId(0),
            "adv",
            SyncVarId(0),
        )]);
        if let Segment::Loop(l) = &mut p.segments[0] {
            l.kind = LoopKind::Doall;
        }
        assert_eq!(
            validate(&p),
            Err(ProgramError::SyncOutsideDoacross(StatementId(0)))
        );
    }

    #[test]
    fn non_negative_offset_rejected() {
        let p = doacross(vec![
            Statement::await_on(StatementId(0), "w", SyncVarId(0), 0),
            Statement::advance(StatementId(1), "adv", SyncVarId(0)),
        ]);
        assert_eq!(
            validate(&p),
            Err(ProgramError::NonNegativeAwaitOffset {
                stmt: StatementId(0),
                offset: 0
            })
        );
    }

    #[test]
    fn double_advance_rejected() {
        let p = doacross(vec![
            Statement::advance(StatementId(0), "a1", SyncVarId(0)),
            Statement::advance(StatementId(1), "a2", SyncVarId(0)),
        ]);
        assert_eq!(
            validate(&p),
            Err(ProgramError::DoubleAdvance {
                loop_id: LoopId(0),
                var: SyncVarId(0)
            })
        );
    }

    #[test]
    fn await_without_advance_rejected() {
        let p = doacross(vec![Statement::await_on(
            StatementId(0),
            "w",
            SyncVarId(7),
            -1,
        )]);
        assert_eq!(
            validate(&p),
            Err(ProgramError::AwaitWithoutAdvance {
                loop_id: LoopId(0),
                var: SyncVarId(7)
            })
        );
    }

    #[test]
    fn await_after_advance_rejected() {
        let p = doacross(vec![
            Statement::advance(StatementId(0), "adv", SyncVarId(0)),
            Statement::await_on(StatementId(1), "w", SyncVarId(0), -1),
        ]);
        assert_eq!(
            validate(&p),
            Err(ProgramError::AwaitAfterAdvance {
                loop_id: LoopId(0),
                var: SyncVarId(0)
            })
        );
    }

    #[test]
    fn empty_and_zero_distance_loops_rejected() {
        let mut p = doacross(vec![Statement::compute(StatementId(0), "a", 1)]);
        if let Segment::Loop(l) = &mut p.segments[0] {
            l.trip_count = 0;
        }
        assert_eq!(validate(&p), Err(ProgramError::EmptyLoop(LoopId(0))));

        let mut p = doacross(vec![Statement::compute(StatementId(0), "a", 1)]);
        if let Segment::Loop(l) = &mut p.segments[0] {
            l.kind = LoopKind::Doacross { distance: 0 };
        }
        assert_eq!(validate(&p), Err(ProgramError::ZeroDistance(LoopId(0))));
    }
}
