//! Statements — the unit of instrumentation.
//!
//! The paper's formal model (§2) treats a program as a statement sequence
//! `S1..Sn` with instrumentation points between them; an event is the
//! execution of a statement. Statements here carry an abstract *cost* in
//! processor cycles plus, for synchronization statements, the advance/await
//! operation they perform. Inside a loop of iteration `i`, sync statements
//! name tag `i + offset` (so `await` with offset `-d` expresses a
//! constant-distance-`d` DOACROSS dependence, Wolfe's notion referenced in
//! §4.3).

use ppa_trace::{StatementId, SyncVarId};
use serde::{Deserialize, Serialize};

/// What a statement does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatementKind {
    /// Pure computation taking `cost` processor cycles.
    Compute {
        /// Execution cost in cycles.
        cost: u64,
    },
    /// `advance(var, i + offset)` where `i` is the enclosing loop
    /// iteration. Offset must be zero — an iteration advances its own tag.
    Advance {
        /// The synchronization variable.
        var: SyncVarId,
    },
    /// `await(var, i + offset)`; `offset` is negative (`-d` for a
    /// distance-`d` dependence).
    Await {
        /// The synchronization variable.
        var: SyncVarId,
        /// Tag offset relative to the current iteration (negative).
        offset: i64,
    },
}

impl StatementKind {
    /// True for advance/await statements.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            StatementKind::Advance { .. } | StatementKind::Await { .. }
        )
    }

    /// The synchronization variable, if any.
    pub fn sync_var(&self) -> Option<SyncVarId> {
        match self {
            StatementKind::Advance { var } | StatementKind::Await { var, .. } => Some(*var),
            StatementKind::Compute { .. } => None,
        }
    }
}

/// One program statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// Unique id; events reference statements by it.
    pub id: StatementId,
    /// Human-readable label (source line, kernel name...).
    pub label: String,
    /// What the statement does.
    pub kind: StatementKind,
    /// Whether source-level statement instrumentation can observe this
    /// statement. On the Alliant, the synchronized shared-variable update
    /// of Livermore loops 3/4 is fused with compiler-inserted advance/await
    /// at the assembly level (paper §5.1 fn. 5), so source-level tracing
    /// adds no code inside that critical section — modeled by
    /// `observable: false`. Unobservable statements never emit statement
    /// events and are never charged statement-instrumentation overhead.
    pub observable: bool,
}

impl Statement {
    /// Creates a compute statement.
    pub fn compute(id: StatementId, label: impl Into<String>, cost: u64) -> Self {
        Statement {
            id,
            label: label.into(),
            kind: StatementKind::Compute { cost },
            observable: true,
        }
    }

    /// Creates a compute statement invisible to source-level statement
    /// instrumentation (see the `observable` field).
    pub fn compute_unobservable(id: StatementId, label: impl Into<String>, cost: u64) -> Self {
        Statement {
            id,
            label: label.into(),
            kind: StatementKind::Compute { cost },
            observable: false,
        }
    }

    /// Creates an `advance` statement.
    pub fn advance(id: StatementId, label: impl Into<String>, var: SyncVarId) -> Self {
        Statement {
            id,
            label: label.into(),
            kind: StatementKind::Advance { var },
            observable: true,
        }
    }

    /// Creates an `await` statement with a (negative) iteration offset.
    pub fn await_on(
        id: StatementId,
        label: impl Into<String>,
        var: SyncVarId,
        offset: i64,
    ) -> Self {
        Statement {
            id,
            label: label.into(),
            kind: StatementKind::Await { var, offset },
            observable: true,
        }
    }

    /// The computation cost in cycles (zero for sync statements, whose cost
    /// is modeled by the synchronization overheads instead).
    pub fn cost(&self) -> u64 {
        match self.kind {
            StatementKind::Compute { cost } => cost,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let c = Statement::compute(StatementId(0), "x = y + z", 40);
        assert_eq!(c.cost(), 40);
        assert!(!c.kind.is_sync());
        assert_eq!(c.kind.sync_var(), None);

        let a = Statement::advance(StatementId(1), "advance", SyncVarId(2));
        assert!(a.kind.is_sync());
        assert_eq!(a.kind.sync_var(), Some(SyncVarId(2)));
        assert_eq!(a.cost(), 0);

        let u = Statement::compute_unobservable(StatementId(3), "fused update", 8);
        assert!(!u.observable);
        assert!(c.observable);

        let w = Statement::await_on(StatementId(2), "await", SyncVarId(2), -1);
        assert!(w.kind.is_sync());
        assert_eq!(w.cost(), 0);
        match w.kind {
            StatementKind::Await { offset, .. } => assert_eq!(offset, -1),
            _ => unreachable!(),
        }
    }
}
