//! Experiment drivers — one function per paper artifact.
//!
//! Each driver runs the full pipeline on the simulator substrate:
//! simulate *actual* (uninstrumented), simulate *measured* (instrumented),
//! apply perturbation analysis to the measured trace, and report ratios
//! against the actual run. The CLI, the Criterion benches, and the
//! integration tests all call these.
//!
//! The default experiment machine is 8 processors at a 1 GHz simulator
//! clock (statement costs are in nanoseconds), self-scheduled DOACROSS
//! dispatch, ±15 % workload jitter, and the calibrated Alliant overhead
//! set — see DESIGN.md §5 for why each choice reproduces the paper's
//! regime.

use ppa_core::{event_based, liberal_reschedule, time_based, EventBasedResult};
use ppa_lfk::{doacross_kernels, fig1_kernels, DoacrossParams};
use ppa_metrics::{
    build_timeline, parallelism_profile, waiting_table, ParallelismProfile, RatioRow, Timeline,
    WaitingTable,
};
use ppa_program::InstrumentationPlan;
use ppa_sim::{run_actual, run_measured, SchedulePolicy, SimConfig};
use ppa_trace::{ClockRate, EventKind, OverheadSpec, Span, Time};

/// The deterministic seed every experiment uses.
pub const EXPERIMENT_SEED: u64 = 1991;

/// The reference experiment configuration (8 processors, self-scheduled
/// dispatch, ±15 % jitter).
pub fn experiment_config() -> SimConfig {
    SimConfig {
        processors: 8,
        clock: ClockRate::GHZ_1,
        overheads: OverheadSpec::alliant_default(),
        schedule: SchedulePolicy::SelfScheduled,
        dispatch_cycles: 50,
        jitter: None,
    }
    .with_jitter(EXPERIMENT_SEED, 150)
}

/// Single-processor variant for the sequential (Figure 1) experiment.
pub fn sequential_config() -> SimConfig {
    SimConfig {
        processors: 1,
        ..experiment_config()
    }
}

/// One Figure-1 bar pair.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig1Row {
    /// Kernel number.
    pub kernel: u8,
    /// Reproduced measured/actual.
    pub measured_ratio: f64,
    /// Reproduced time-based approximated/actual.
    pub approx_ratio: f64,
    /// The paper's measured/actual bar.
    pub paper_measured: Option<f64>,
}

/// Figure 1: sequential loop execution, full statement instrumentation,
/// time-based analysis.
pub fn fig1() -> Vec<Fig1Row> {
    let cfg = sequential_config();
    let plan = InstrumentationPlan::full_statements();
    fig1_kernels()
        .map(|meta| {
            let program = ppa_lfk::sequential_graph(meta.id).expect("fig1 kernel has a graph");
            let actual = run_actual(&program, &cfg).expect("valid program");
            let measured = run_measured(&program, &plan, &cfg).expect("valid program");
            let approx = time_based(&measured.trace, &cfg.overheads);
            Fig1Row {
                kernel: meta.id,
                measured_ratio: measured.trace.total_time().ratio(actual.trace.total_time()),
                approx_ratio: approx.total_time().ratio(actual.trace.total_time()),
                paper_measured: meta.fig1_measured_ratio,
            }
        })
        .collect()
}

/// Table 1: concurrent loops 3/4/17 under statement-only instrumentation,
/// analyzed with the (inadequate) time-based model.
pub fn table1() -> Vec<RatioRow> {
    let cfg = experiment_config();
    let plan = InstrumentationPlan::full_statements();
    doacross_kernels()
        .map(|meta| {
            let program = ppa_lfk::doacross_graph(meta.id).expect("doacross kernel has a graph");
            let actual = run_actual(&program, &cfg).expect("valid program");
            let measured = run_measured(&program, &plan, &cfg).expect("valid program");
            let approx = time_based(&measured.trace, &cfg.overheads);
            RatioRow::from_times(
                format!("lfk{:02}", meta.id),
                actual.trace.total_time(),
                measured.trace.total_time(),
                approx.total_time(),
            )
            .with_paper(meta.table1_measured, meta.table1_approx)
        })
        .collect()
}

/// Table 2: the same loops under statement+synchronization
/// instrumentation, analyzed with the event-based model.
pub fn table2() -> Vec<RatioRow> {
    let cfg = experiment_config();
    let plan = InstrumentationPlan::full_with_sync();
    doacross_kernels()
        .map(|meta| {
            let program = ppa_lfk::doacross_graph(meta.id).expect("doacross kernel has a graph");
            let actual = run_actual(&program, &cfg).expect("valid program");
            let measured = run_measured(&program, &plan, &cfg).expect("valid program");
            let approx =
                event_based(&measured.trace, &cfg.overheads).expect("measured trace is feasible");
            RatioRow::from_times(
                format!("lfk{:02}", meta.id),
                actual.trace.total_time(),
                measured.trace.total_time(),
                approx.total_time(),
            )
            .with_paper(meta.table2_measured, meta.table2_approx)
        })
        .collect()
}

/// Everything §5.3 derives from loop 17's approximated execution:
/// Table 3's waiting percentages, Figure 4's timeline, Figure 5's
/// parallelism profile.
#[derive(Debug, Clone)]
pub struct Loop17Analysis {
    /// The event-based analysis result.
    pub result: EventBasedResult,
    /// Table 3: per-processor waiting percentages.
    pub waiting: WaitingTable,
    /// Figure 4: the per-processor timeline.
    pub timeline: Timeline,
    /// Figure 5: parallelism over time.
    pub profile: ParallelismProfile,
    /// The parallel-loop window (approximated loop begin/end), used to
    /// exclude the serial portions from the average.
    pub loop_window: (Time, Time),
    /// Average parallelism over the loop window (paper: 7.5).
    pub avg_parallelism: f64,
    /// Ground-truth per-processor waiting percentages from the actual run
    /// (what the paper could not observe).
    pub ground_truth_pct: Vec<f64>,
}

/// Runs the loop-17 pipeline behind Table 3 and Figures 4–5.
pub fn loop17_analysis() -> Loop17Analysis {
    let cfg = experiment_config();
    let program = ppa_lfk::doacross_graph(17).expect("loop 17 graph");
    let actual = run_actual(&program, &cfg).expect("valid program");
    let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
        .expect("valid program");
    let result = event_based(&measured.trace, &cfg.overheads).expect("feasible trace");

    let waiting = waiting_table(&result, cfg.processors);
    let timeline = build_timeline(&result, cfg.processors);
    let profile = parallelism_profile(&timeline);

    let loop_begin = result
        .trace
        .iter()
        .find(|e| matches!(e.kind, EventKind::LoopBegin { .. }))
        .map(|e| e.time)
        .unwrap_or(Time::ZERO);
    let loop_end = result
        .trace
        .events()
        .iter()
        .rev()
        .find(|e| matches!(e.kind, EventKind::LoopEnd { .. }))
        .map(|e| e.time)
        .unwrap_or_else(|| result.trace.end_time().unwrap_or(Time::ZERO));
    let avg_parallelism = profile.average(loop_begin, loop_end);

    let truth = &actual.stats.loops[0];
    let total = actual.trace.total_time();
    let ground_truth_pct = truth
        .per_proc
        .iter()
        .map(|ps| {
            if total.is_zero() {
                0.0
            } else {
                100.0 * ps.sync_wait.ratio(total)
            }
        })
        .collect();

    Loop17Analysis {
        result,
        waiting,
        timeline,
        profile,
        loop_window: (loop_begin, loop_end),
        avg_parallelism,
        ground_truth_pct,
    }
}

/// One point of the overhead-sensitivity ablation: the analysis is given a
/// *mis-specified* overhead spec (scaled by `factor`) while the
/// measurement used the true one.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadSweepPoint {
    /// The misestimation factor applied to the analyst's overhead spec.
    pub factor: f64,
    /// Event-based approximated/actual under the misestimated spec.
    pub approx_ratio: f64,
}

/// Ablation A2: approximation accuracy vs. overhead misestimation, for one
/// DOACROSS kernel.
pub fn ablation_overhead_sweep(kernel: u8, factors: &[f64]) -> Vec<OverheadSweepPoint> {
    let cfg = experiment_config();
    let program = ppa_lfk::doacross_graph(kernel).expect("doacross kernel");
    let actual = run_actual(&program, &cfg)
        .expect("valid")
        .trace
        .total_time();
    let measured =
        run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
    factors
        .iter()
        .map(|&factor| {
            let spec = cfg.overheads.scale_instrumentation(factor);
            let approx = event_based(&measured.trace, &spec).expect("feasible");
            OverheadSweepPoint {
                factor,
                approx_ratio: approx.total_time().ratio(actual),
            }
        })
        .collect()
}

/// One row of the scheduling ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAblationRow {
    /// Dispatch policy the *execution* used.
    pub policy: SchedulePolicy,
    /// Conservative event-based approximated/actual.
    pub conservative_ratio: f64,
    /// Liberal (rescheduling) approximated/actual, analyzed with the
    /// *correct* policy.
    pub liberal_ratio: f64,
    /// Liberal approximated/actual when the analyst assumes the *wrong*
    /// dispatch policy (A3: scheduling-policy mismatch).
    pub liberal_wrong_policy_ratio: f64,
    /// The wrong policy used for the mismatch column.
    pub wrong_policy: SchedulePolicy,
    /// Fraction of iterations whose measured-run processor differs from
    /// the actual run's (the work reassignment conservative analysis
    /// cannot see).
    pub assignment_divergence: f64,
}

/// Ablation A1/A3: conservative vs. liberal analysis across dispatch
/// policies, for one DOACROSS kernel.
///
/// Runs with strong (±40 %) workload jitter so that dynamic dispatch
/// decisions actually differ between the instrumented and uninstrumented
/// executions.
pub fn ablation_schedule(kernel: u8) -> Vec<ScheduleAblationRow> {
    let params = DoacrossParams::for_kernel(kernel).expect("doacross kernel");
    let tail: u64 = params.tail.iter().sum();
    let head: u64 = params.head.iter().sum();
    let tail_fraction = tail as f64 / (tail + head + 50).max(1) as f64;

    [
        SchedulePolicy::StaticCyclic,
        SchedulePolicy::StaticBlock,
        SchedulePolicy::SelfScheduled,
    ]
    .into_iter()
    .map(|policy| {
        let cfg = experiment_config()
            .with_schedule(policy)
            .with_jitter(EXPERIMENT_SEED, 400);
        let program = ppa_lfk::doacross_graph(kernel).expect("doacross kernel");
        let actual = run_actual(&program, &cfg).expect("valid");
        let actual_total = actual.trace.total_time();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
        let conservative = event_based(&measured.trace, &cfg.overheads)
            .expect("feasible")
            .total_time();
        let liberal = |p: SchedulePolicy| {
            liberal_reschedule(
                &measured.trace,
                &cfg.overheads,
                cfg.processors,
                p,
                tail_fraction,
            )
            .expect("structured trace")
            .total
        };
        let wrong_policy = match policy {
            SchedulePolicy::StaticCyclic => SchedulePolicy::StaticBlock,
            _ => SchedulePolicy::StaticCyclic,
        };

        let divergence = {
            let a = &actual.stats.loops[0].assignment;
            let m = &measured.stats.loops[0].assignment;
            let differing = a.iter().zip(m).filter(|(x, y)| x != y).count();
            differing as f64 / a.len().max(1) as f64
        };

        ScheduleAblationRow {
            policy,
            conservative_ratio: conservative.ratio(actual_total),
            liberal_ratio: liberal(policy).ratio(actual_total),
            liberal_wrong_policy_ratio: liberal(wrong_policy).ratio(actual_total),
            wrong_policy,
            assignment_divergence: divergence,
        }
    })
    .collect()
}

/// One row of the all-kernel intrusion survey.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct IntrusionRow {
    /// Kernel number.
    pub kernel: u8,
    /// Kernel name.
    pub name: &'static str,
    /// Execution classification.
    pub class: ppa_lfk::KernelClass,
    /// Events recorded under full statement instrumentation.
    pub events: usize,
    /// Measured/actual slowdown.
    pub slowdown: f64,
    /// Best-model approximated/actual (event-based where sync events
    /// exist, time-based otherwise).
    pub approx_ratio: f64,
}

/// Extension: the Figure-1 experiment widened to all 24 Livermore kernels
/// (the paper ran all of them; the figure shows a subset). DOACROSS
/// kernels are measured under sync instrumentation and analyzed
/// event-based; everything else statement-only and time-based.
pub fn all_kernel_intrusion() -> Vec<IntrusionRow> {
    (1u8..=24)
        .map(|id| {
            let meta = ppa_lfk::kernel_meta(id).expect("1..=24");
            let program = ppa_lfk::generic_graph(id).expect("all kernels have graphs");
            let cfg = if program.has_concurrency() {
                experiment_config()
            } else {
                sequential_config()
            };
            let actual = run_actual(&program, &cfg).expect("valid");
            // Kernels with synchronization structure (DOACROSS chains or
            // DOALL barriers) need the event-based model; purely
            // sequential/vector kernels are the time-based regime.
            let concurrent = matches!(
                meta.class,
                ppa_lfk::KernelClass::Doacross | ppa_lfk::KernelClass::Parallel
            );
            let (plan, use_event_based) = if concurrent {
                (InstrumentationPlan::full_with_sync(), true)
            } else {
                (InstrumentationPlan::full_statements(), false)
            };
            let measured = run_measured(&program, &plan, &cfg).expect("valid");
            let approx = if use_event_based {
                event_based(&measured.trace, &cfg.overheads)
                    .expect("feasible")
                    .total_time()
            } else {
                time_based(&measured.trace, &cfg.overheads).total_time()
            };
            IntrusionRow {
                kernel: id,
                name: meta.name,
                class: meta.class,
                events: measured.trace.len(),
                slowdown: measured.trace.total_time().ratio(actual.trace.total_time()),
                approx_ratio: approx.ratio(actual.trace.total_time()),
            }
        })
        .collect()
}

/// Per-event accuracy of each model on one DOACROSS kernel (the paper's
/// §3 remark that individual event timings were as accurate as totals,
/// made measurable).
#[derive(Debug, Clone, PartialEq)]
pub struct PerEventAccuracy {
    /// Kernel number.
    pub kernel: u8,
    /// Per-event report for the raw measured trace against actual.
    pub measured: ppa_core::AccuracyReport,
    /// Per-event report for the time-based approximation.
    pub time_based: ppa_core::AccuracyReport,
    /// Per-event report for the event-based approximation.
    pub event_based: ppa_core::AccuracyReport,
}

/// Computes per-event accuracy for a DOACROSS kernel under sync
/// instrumentation, with a 1 µs tolerance band.
pub fn per_event_accuracy(kernel: u8) -> PerEventAccuracy {
    let cfg = experiment_config();
    let program = ppa_lfk::doacross_graph(kernel).expect("doacross kernel");
    let actual = run_actual(&program, &cfg).expect("valid");
    let measured =
        run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
    let tolerance = Span::from_micros(1);

    let tb = time_based(&measured.trace, &cfg.overheads);
    let eb = event_based(&measured.trace, &cfg.overheads).expect("feasible");

    PerEventAccuracy {
        kernel,
        measured: ppa_core::compare_traces(&actual.trace, &measured.trace, tolerance),
        time_based: ppa_core::compare_traces(&actual.trace, &tb.trace, tolerance),
        event_based: ppa_core::compare_traces(&actual.trace, &eb.trace, tolerance),
    }
}

/// One row of the execution-mode study (paper §3 measured scalar, vector,
/// and concurrent executions).
#[derive(Debug, Clone, PartialEq)]
pub struct ModeRow {
    /// Kernel number.
    pub kernel: u8,
    /// Mode label (`"scalar"` / `"vector"`).
    pub mode: &'static str,
    /// Actual total execution time.
    pub actual: Span,
    /// Measured/actual under full statement tracing.
    pub slowdown: f64,
    /// Time-based approximated/actual.
    pub approx_ratio: f64,
}

/// Scalar-vs-vector mode study for the vectorizable Figure-1 kernels:
/// the vector twin runs ~4x faster, the *relative* intrusion grows
/// accordingly (tracing cost is per event, compute shrinks), and
/// time-based analysis stays exact in both modes — the paper's §3
/// observation that sequential and vector approximations were "extremely
/// accurate".
pub fn mode_comparison() -> Vec<ModeRow> {
    let cfg = sequential_config();
    let plan = InstrumentationPlan::full_statements();
    let mut rows = Vec::new();
    for meta in fig1_kernels() {
        let Some(vector) = ppa_lfk::vector_twin(meta.id) else {
            continue;
        };
        let scalar = ppa_lfk::sequential_graph(meta.id).expect("fig1 kernel");
        for (mode, program) in [("scalar", scalar), ("vector", vector)] {
            let actual = run_actual(&program, &cfg).expect("valid");
            let measured = run_measured(&program, &plan, &cfg).expect("valid");
            let approx = time_based(&measured.trace, &cfg.overheads);
            rows.push(ModeRow {
                kernel: meta.id,
                mode,
                actual: actual.trace.total_time(),
                slowdown: measured.trace.total_time().ratio(actual.trace.total_time()),
                approx_ratio: approx.total_time().ratio(actual.trace.total_time()),
            });
        }
    }
    rows
}

/// Order-perturbation study for one DOACROSS kernel: how much the
/// instrumentation reorders events, and how much of that the event-based
/// approximation repairs.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderStudy {
    /// Kernel number.
    pub kernel: u8,
    /// Actual → measured order perturbation.
    pub measured: ppa_metrics::OrderPerturbation,
    /// Actual → approximated order perturbation.
    pub approximated: ppa_metrics::OrderPerturbation,
}

/// Runs the order-perturbation study (§2's "possibly, event order").
pub fn order_study(kernel: u8) -> OrderStudy {
    let cfg = experiment_config();
    let program = ppa_lfk::doacross_graph(kernel).expect("doacross kernel");
    let actual = run_actual(&program, &cfg).expect("valid");
    let measured =
        run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
    let approx = event_based(&measured.trace, &cfg.overheads).expect("feasible");
    OrderStudy {
        kernel,
        measured: ppa_metrics::order_perturbation(&actual.trace, &measured.trace),
        approximated: ppa_metrics::order_perturbation(&actual.trace, &approx.trace),
    }
}

/// One row of the trace-buffer exhaustion study.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BufferStudyRow {
    /// Per-processor buffer capacity (events).
    pub capacity: usize,
    /// Events dropped across all processors.
    pub dropped: u64,
    /// Whether the surviving trace still validates for event-based
    /// analysis.
    pub analyzable: bool,
    /// Approximated/actual when analyzable.
    pub approx_ratio: Option<f64>,
}

/// Extension: what finite trace memory does to the analysis. Each
/// processor records through a bounded buffer (keep-oldest policy, as a
/// fixed trace memory behaves). Two failure shapes appear: a cut that
/// severs synchronization pairs makes the trace invalid (the analysis
/// fails loudly), while a *clean prefix* cut — every kept await still has
/// its partner — yields a trace that validates and analyzes but covers
/// only the measured prefix, so the "approximated total" silently shrinks
/// toward the prefix length. The drop count in each row is the signal an
/// experimenter must check; the paper's volume/accuracy tension in one
/// more guise.
pub fn buffer_study(kernel: u8, capacities: &[usize]) -> Vec<BufferStudyRow> {
    use ppa_trace::{apply_buffers, OverflowPolicy, Trace, TraceKind};
    let cfg = experiment_config();
    let program = ppa_lfk::doacross_graph(kernel).expect("doacross kernel");
    let actual = run_actual(&program, &cfg)
        .expect("valid")
        .trace
        .total_time();
    let measured =
        run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).expect("valid");
    capacities
        .iter()
        .map(|&capacity| {
            let (events, dropped) =
                apply_buffers(&measured.trace, capacity, OverflowPolicy::DropNewest);
            let truncated = Trace::from_events(TraceKind::Measured, events);
            match event_based(&truncated, &cfg.overheads) {
                Ok(a) if dropped == 0 => BufferStudyRow {
                    capacity,
                    dropped,
                    analyzable: true,
                    approx_ratio: Some(a.total_time().ratio(actual)),
                },
                Ok(a) => BufferStudyRow {
                    // Survived truncation (drops happened after the last
                    // synchronization event).
                    capacity,
                    dropped,
                    analyzable: true,
                    approx_ratio: Some(a.total_time().ratio(actual)),
                },
                Err(_) => BufferStudyRow {
                    capacity,
                    dropped,
                    analyzable: false,
                    approx_ratio: None,
                },
            }
        })
        .collect()
}

/// The complete campaign: every reproduced artifact in one serializable
/// report (written by `ppa campaign` for downstream tooling).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Campaign {
    /// Deterministic seed the experiments used.
    pub seed: u64,
    /// Figure 1 rows.
    pub fig1: Vec<Fig1Row>,
    /// Table 1 rows.
    pub table1: Vec<ppa_metrics::RatioRow>,
    /// Table 2 rows.
    pub table2: Vec<ppa_metrics::RatioRow>,
    /// Table 3 waiting table (loop 17).
    pub table3: WaitingTable,
    /// Figure 5's average parallelism over the loop window.
    pub avg_parallelism: f64,
    /// All-kernel intrusion survey.
    pub intrusion: Vec<IntrusionRow>,
    /// Buffer-exhaustion study for loop 3.
    pub buffers: Vec<BufferStudyRow>,
}

/// Runs every experiment and bundles the results.
pub fn run_campaign() -> Campaign {
    let l17 = loop17_analysis();
    Campaign {
        seed: EXPERIMENT_SEED,
        fig1: fig1(),
        table1: table1(),
        table2: table2(),
        table3: l17.waiting,
        avg_parallelism: l17.avg_parallelism,
        intrusion: all_kernel_intrusion(),
        buffers: buffer_study(3, &[64, 256, 1024, 4096]),
    }
}

/// Intrusion accounting for one kernel under a plan: events recorded and
/// total overhead charged.
#[derive(Debug, Clone, PartialEq)]
pub struct IntrusionReport {
    /// Events in the measured trace.
    pub events: usize,
    /// Total instrumentation overhead charged.
    pub overhead: Span,
    /// Measured/actual slowdown.
    pub slowdown: f64,
}

/// Measures intrusion for a kernel under a plan (used by the volume vs.
/// accuracy discussion in EXPERIMENTS.md).
pub fn intrusion(kernel: u8, plan: &InstrumentationPlan) -> IntrusionReport {
    let cfg = experiment_config();
    let program = ppa_lfk::graph(kernel).expect("kernel has a graph");
    let cfg = if program.has_concurrency() {
        cfg
    } else {
        sequential_config()
    };
    let actual = run_actual(&program, &cfg).expect("valid");
    let measured = run_measured(&program, plan, &cfg).expect("valid");
    IntrusionReport {
        events: measured.trace.len(),
        overhead: measured.stats.instr_overhead,
        slowdown: measured.trace.total_time().ratio(actual.trace.total_time()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_covers_ten_kernels_with_real_slowdowns() {
        let rows = fig1();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(
                r.measured_ratio > 2.0,
                "kernel {}: slowdown {}",
                r.kernel,
                r.measured_ratio
            );
            assert!(
                (r.approx_ratio - 1.0).abs() < 0.01,
                "kernel {}: time-based sequential approx should be ~exact, got {}",
                r.kernel,
                r.approx_ratio
            );
        }
    }

    #[test]
    fn fig1_ratios_track_paper_values() {
        for r in fig1() {
            let paper = r.paper_measured.expect("fig1 kernels carry paper values");
            let rel = (r.measured_ratio - paper).abs() / paper;
            assert!(
                rel < 0.15,
                "kernel {}: measured ratio {} vs paper {} ({}% off)",
                r.kernel,
                r.measured_ratio,
                paper,
                (rel * 100.0) as u32
            );
        }
    }

    #[test]
    fn table1_directions_match_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].approx_over_actual < 1.0,
            "loop 3: {}",
            rows[0].approx_over_actual
        );
        assert!(
            rows[1].approx_over_actual < 1.0,
            "loop 4: {}",
            rows[1].approx_over_actual
        );
        assert!(
            rows[2].approx_over_actual > 1.0,
            "loop 17: {}",
            rows[2].approx_over_actual
        );
        for r in &rows {
            assert!(r.same_direction_as_paper(), "{}: wrong direction", r.label);
        }
    }

    #[test]
    fn table2_event_based_is_accurate() {
        for r in table2() {
            assert!(
                (r.approx_over_actual - 1.0).abs() < 0.10,
                "{}: event-based error too large: {}",
                r.label,
                r.approx_over_actual
            );
            // And more intrusive than Table 1 measured the same loop.
        }
    }

    #[test]
    fn loop17_products_are_consistent() {
        let a = loop17_analysis();
        assert_eq!(a.waiting.rows.len(), 8);
        assert_eq!(a.timeline.rows.len(), 8);
        // Waiting percentages should be small (paper: 2.7-8.1 %).
        for r in &a.waiting.rows {
            assert!(r.sync_pct < 25.0, "proc {} waits {}%", r.proc, r.sync_pct);
        }
        // Average parallelism high but below the processor count
        // (paper: 7.5 of 8).
        assert!(
            a.avg_parallelism > 5.0 && a.avg_parallelism <= 8.0,
            "avg parallelism {}",
            a.avg_parallelism
        );
    }

    #[test]
    fn overhead_sweep_is_best_at_true_spec() {
        let points = ablation_overhead_sweep(3, &[0.5, 0.9, 1.0, 1.1, 1.5]);
        let err_at = |f: f64| {
            points
                .iter()
                .find(|p| (p.factor - f).abs() < 1e-9)
                .map(|p| (p.approx_ratio - 1.0).abs())
                .unwrap()
        };
        assert!(err_at(1.0) <= err_at(0.5));
        assert!(err_at(1.0) <= err_at(1.5));
    }

    #[test]
    fn all_kernel_intrusion_covers_24() {
        let rows = all_kernel_intrusion();
        assert_eq!(rows.len(), 24);
        for r in &rows {
            assert!(
                r.slowdown > 1.5,
                "kernel {}: slowdown {}",
                r.kernel,
                r.slowdown
            );
            assert!(
                (r.approx_ratio - 1.0).abs() < 0.05,
                "kernel {}: approx {}",
                r.kernel,
                r.approx_ratio
            );
        }
    }

    #[test]
    fn per_event_accuracy_ranks_the_models() {
        for kernel in [3u8, 17] {
            let a = per_event_accuracy(kernel);
            // Event-based beats time-based beats the raw measurement, per
            // event and not only in totals.
            assert!(
                a.event_based.mean_abs_error < a.time_based.mean_abs_error,
                "kernel {kernel}: event {} !< time {}",
                a.event_based.mean_abs_error,
                a.time_based.mean_abs_error
            );
            assert!(
                a.time_based.mean_abs_error < a.measured.mean_abs_error,
                "kernel {kernel}: time {} !< measured {}",
                a.time_based.mean_abs_error,
                a.measured.mean_abs_error
            );
            // Event-based is per-event exact on this substrate.
            assert!(a.event_based.is_exact_within_tolerance());
        }
    }

    #[test]
    fn mode_comparison_shapes() {
        let rows = mode_comparison();
        assert!(!rows.is_empty());
        // Pair up scalar/vector rows per kernel.
        for pair in rows.chunks(2) {
            let (s, v) = (&pair[0], &pair[1]);
            assert_eq!(s.kernel, v.kernel);
            assert!(
                v.actual < s.actual,
                "kernel {}: vector should be faster",
                s.kernel
            );
            assert!(
                v.slowdown > s.slowdown,
                "kernel {}: relative intrusion should grow in vector mode",
                s.kernel
            );
            assert!((s.approx_ratio - 1.0).abs() < 0.01);
            assert!((v.approx_ratio - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn order_study_shows_repair() {
        for kernel in [3u8, 17] {
            let s = order_study(kernel);
            assert!(
                s.measured.inversions > 0,
                "kernel {kernel}: instrumentation should reorder events"
            );
            assert!(
                s.approximated.inversions * 10 <= s.measured.inversions,
                "kernel {kernel}: approximation should repair most reordering \
                 (measured {} vs approximated {})",
                s.measured.inversions,
                s.approximated.inversions
            );
        }
    }

    #[test]
    fn buffer_study_degrades_gracefully() {
        let rows = buffer_study(3, &[32, 100_000]);
        // Tiny buffers drop events; the result is either rejected (severed
        // pairs) or covers only the prefix (ratio far below 1) — never a
        // silently "complete" answer.
        assert!(rows[0].dropped > 0);
        match rows[0].approx_ratio {
            None => assert!(!rows[0].analyzable),
            Some(r) => assert!(r < 0.5, "prefix analysis should cover a fraction, got {r}"),
        }
        // A generous buffer keeps everything and the analysis is intact.
        assert_eq!(rows[1].dropped, 0);
        assert!(rows[1].analyzable);
        assert!((rows[1].approx_ratio.unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn campaign_serializes() {
        let c = run_campaign();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("table2"));
        assert!(json.contains("avg_parallelism"));
        // Structurally valid JSON with all top-level sections.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        for key in [
            "seed",
            "fig1",
            "table1",
            "table2",
            "table3",
            "intrusion",
            "buffers",
        ] {
            assert!(value.get(key).is_some(), "missing campaign section {key}");
        }
        assert_eq!(value["fig1"].as_array().unwrap().len(), 10);
        assert_eq!(value["intrusion"].as_array().unwrap().len(), 24);
    }

    #[test]
    fn intrusion_grows_with_plan_scope() {
        let small = intrusion(3, &InstrumentationPlan::full_statements());
        let large = intrusion(3, &InstrumentationPlan::full_with_sync());
        assert!(large.events > small.events);
        assert!(large.overhead > small.overhead);
    }
}
