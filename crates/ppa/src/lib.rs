//! # ppa — event-based performance perturbation analysis
//!
//! A reproduction of Allen D. Malony, *"Event-Based Performance
//! Perturbation: A Case Study"* (PPoPP 1991): recovering actual parallel
//! execution behavior from intrusive trace measurements.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`trace`] — events, traces, overheads, validation, I/O;
//! - [`sync`] — native advance/await, barrier, lock primitives;
//! - [`program`] — statement-graph workload model;
//! - [`sim`] — deterministic Alliant-FX/80-style multiprocessor simulator;
//! - [`native`] — real-thread traced execution backend;
//! - [`lfk`] — the Livermore loops (numeric + statement-graph forms);
//! - [`analysis`] — time-based and event-based perturbation analysis;
//! - [`mod@slice`] — trace slicing, query expressions, redundancy suppression;
//! - [`check`] — trace/report invariant checker and differential oracle;
//! - [`server`] — multi-tenant streaming ingest daemon (`ppa serve`);
//! - [`metrics`] — ratios, waiting tables, timelines, parallelism;
//! - [`obs`] — self-observability: pipeline metrics, span timers,
//!   Prometheus/JSON export, self-overhead calibration;
//! - [`experiments`] — one driver per paper table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use ppa::prelude::*;
//!
//! // A DOACROSS loop with a critical section.
//! let mut b = ProgramBuilder::new("demo");
//! let v = b.sync_var();
//! let program = b
//!     .doacross(1, 64, |body| {
//!         body.compute("head", 800)
//!             .await_var(v, -1)
//!             .compute("update", 60)
//!             .advance(v)
//!     })
//!     .build()
//!     .unwrap();
//!
//! // Actual vs measured vs approximated.
//! let cfg = ppa::experiments::experiment_config();
//! let actual = run_actual(&program, &cfg).unwrap();
//! let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
//! let approx = event_based(&measured.trace, &cfg.overheads).unwrap();
//!
//! let slowdown = measured.trace.total_time().ratio(actual.trace.total_time());
//! let accuracy = approx.total_time().ratio(actual.trace.total_time());
//! assert!(slowdown > 1.5);           // instrumentation really intrudes
//! assert!((accuracy - 1.0).abs() < 0.1); // analysis recovers the truth
//! ```

#![warn(missing_docs)]

pub use ppa_check as check;
pub use ppa_core as analysis;
pub use ppa_lfk as lfk;
pub use ppa_metrics as metrics;
pub use ppa_native as native;
pub use ppa_obs as obs;
pub use ppa_program as program;
pub use ppa_server as server;
pub use ppa_sim as sim;
pub use ppa_slice as slice;
pub use ppa_sync as sync;
pub use ppa_trace as trace;

pub mod experiments;

/// Compiles and runs the README's Rust snippets under `cargo test --doc`.
#[doc = include_str!("../../../README.md")]
mod readme_doctests {}

/// The most commonly used items, in one import.
pub mod prelude {
    pub use ppa_core::{
        event_based, event_based_reference, event_based_sharded, liberal_reschedule, time_based,
        AnalysisError, EventBasedAnalyzer, StreamOutput, StreamStats,
    };
    pub use ppa_metrics::{
        build_timeline, format_ratio_table, format_waiting_table, parallelism_profile,
        render_parallelism, render_timeline, waiting_table, RatioRow,
    };
    pub use ppa_program::{InstrumentationPlan, Program, ProgramBuilder};
    pub use ppa_sim::{run_actual, run_measured, SchedulePolicy, SimConfig};
    pub use ppa_trace::{
        pair_sync_events, ClockRate, Event, EventKind, OverheadSpec, ProcessorId, Span, Time,
        Trace, TraceKind,
    };
}
