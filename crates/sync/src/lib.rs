//! # ppa-sync — native synchronization substrate
//!
//! Software recreations of the synchronization machinery the paper's
//! testbed provided in hardware, used by the `ppa-native` real-thread
//! executor:
//!
//! - [`AdvanceAwait`] — the Alliant-style advance/await variable
//!   (generalized per §4.2.1 of the paper: a history of advanced tags,
//!   each advance/await pair acting as a unique semaphore);
//! - [`SenseBarrier`] — sense-reversing barrier for DOACROSS loop ends;
//! - [`SpinLock`] — TTAS spin lock for short critical sections;
//! - [`Semaphore`] — the general primitive advance/await specializes.
//!
//! All primitives spin briefly before parking, matching the regime the
//! paper measures (waits of a few statement-execution lengths).

#![warn(missing_docs)]

mod advance_await;
mod barrier;
mod semaphore;
mod spinlock;

pub use advance_await::{AdvanceAwait, WaitOutcome};
pub use barrier::{BarrierRole, SenseBarrier};
pub use semaphore::Semaphore;
pub use spinlock::{SpinGuard, SpinLock};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Advancing tags in any order leaves the variable with every tag
        /// advanced and the high-water mark + sparse set covering exactly
        /// the advanced tags.
        #[test]
        fn advance_order_is_irrelevant(perm in proptest::sample::subsequence((0i64..32).collect::<Vec<_>>(), 0..32)) {
            // `perm` is an ordered subsequence; reverse it to get an
            // out-of-order schedule.
            let mut order = perm.clone();
            order.reverse();
            let a = AdvanceAwait::new();
            for &t in &order {
                a.advance(t);
            }
            for &t in &perm {
                prop_assert!(a.is_advanced(t));
            }
            let hwm = a.high_water_mark();
            let contiguous = if hwm >= 0 { (hwm + 1) as usize } else { 0 };
            prop_assert_eq!(contiguous + a.sparse_len(), perm.len());
        }

        /// A randomly sized chain of waiters is always released in
        /// dependency order, regardless of thread scheduling.
        #[test]
        fn chained_waiters_release_in_order(n in 1usize..24) {
            let a = Arc::new(AdvanceAwait::new());
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let threads: Vec<_> = (0..n)
                .map(|i| {
                    let a = Arc::clone(&a);
                    let log = Arc::clone(&log);
                    std::thread::spawn(move || {
                        a.await_tag(i as i64 - 1);
                        log.lock().push(i);
                        a.advance(i as i64);
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let log = log.lock();
            prop_assert_eq!(&*log, &(0..n).collect::<Vec<_>>());
        }
    }
}
