//! A test-and-test-and-set spin lock.
//!
//! Used by the native executor for the short critical sections of the
//! Livermore DOACROSS loops, where the hold time (one shared-variable
//! update) is far below the cost of parking a thread. The implementation
//! follows the classic TTAS shape: spin on a relaxed load, attempt the
//! acquiring swap only when the lock looks free, and yield to the scheduler
//! after a bounded number of spins so oversubscribed test environments make
//! progress.

use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, Ordering};

/// A mutual-exclusion spin lock protecting a `T`.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to the inner value; sharing
// the lock across threads is sound whenever sending T is.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

/// RAII guard; the lock is released on drop.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Creates an unlocked spin lock.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning (with periodic yields) until free.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: only attempt the RMW when the relaxed
            // read says the lock looks free, keeping the cache line shared
            // while waiting.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return SpinGuard { lock: self };
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Attempts to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`, hence
    /// exclusive by the borrow checker).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_exclusive_access() {
        let lock = Arc::new(SpinLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = SpinLock::new(5);
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 6);
    }
}
