//! A sense-reversing centralized barrier.
//!
//! DOACROSS loop ends on the Alliant synchronize all computational elements
//! before the serial code after the loop resumes; the native executor uses
//! this barrier for the same purpose. Sense reversal lets the barrier be
//! reused across episodes without a second synchronization: each episode
//! flips the global sense, and threads wait for the flip.

use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use parking_lot::{Condvar, Mutex};

/// Outcome of a barrier wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierRole {
    /// This thread arrived last and released the others.
    Leader,
    /// This thread waited for the leader.
    Follower,
}

impl BarrierRole {
    /// True for the releasing (last-arriving) thread.
    pub fn is_leader(self) -> bool {
        matches!(self, BarrierRole::Leader)
    }
}

/// A reusable sense-reversing barrier for a fixed number of participants.
#[derive(Debug)]
pub struct SenseBarrier {
    participants: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    // Park support for oversubscribed hosts: waiters fall back to a
    // condvar keyed on the sense flip after a bounded spin.
    park: Mutex<()>,
    wakeup: Condvar,
}

impl SenseBarrier {
    /// Spin iterations before parking (see `AdvanceAwait::SPIN_LIMIT` for
    /// the rationale).
    const SPIN_LIMIT: u32 = 8_000;

    /// Creates a barrier for `participants` threads.
    ///
    /// # Panics
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        SenseBarrier {
            participants,
            remaining: AtomicUsize::new(participants),
            sense: AtomicBool::new(false),
            park: Mutex::new(()),
            wakeup: Condvar::new(),
        }
    }

    /// The configured participant count.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Waits until all participants arrive; returns this thread's role.
    pub fn wait(&self) -> BarrierRole {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the count and flip the sense.
            self.remaining.store(self.participants, Ordering::Relaxed);
            let _guard = self.park.lock();
            self.sense.store(my_sense, Ordering::Release);
            drop(_guard);
            self.wakeup.notify_all();
            return BarrierRole::Leader;
        }
        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) != my_sense {
            spins += 1;
            if spins < Self::SPIN_LIMIT {
                if spins % 256 == 255 {
                    std::thread::yield_now();
                } else {
                    core::hint::spin_loop();
                }
            } else {
                let mut guard = self.park.lock();
                if self.sense.load(Ordering::Acquire) != my_sense {
                    self.wakeup.wait(&mut guard);
                }
            }
        }
        BarrierRole::Follower
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn single_participant_is_always_leader() {
        let b = SenseBarrier::new(1);
        assert_eq!(b.wait(), BarrierRole::Leader);
        assert_eq!(b.wait(), BarrierRole::Leader);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const P: usize = 8;
        const EPISODES: usize = 50;
        let b = Arc::new(SenseBarrier::new(P));
        let leaders = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..P)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..EPISODES {
                        if b.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), EPISODES as u64);
    }

    #[test]
    fn barrier_separates_phases() {
        // Phase counter: every thread increments in phase 1, then after the
        // barrier each must observe the full phase-1 total.
        const P: usize = 6;
        let b = Arc::new(SenseBarrier::new(P));
        let count = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..P)
            .map(|_| {
                let b = Arc::clone(&b);
                let count = Arc::clone(&count);
                std::thread::spawn(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    assert_eq!(count.load(Ordering::SeqCst), P as u64);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
