//! The `advance`/`await` synchronization variable.
//!
//! This is the Alliant FX/80's concurrency-control primitive recreated in
//! software, with the paper's generalized semantics (§4.2.1):
//!
//! ```text
//! advance(A, i): mark in A that i was advanced
//! await(A, i):   if (i has not been advanced in A) wait until it has
//! ```
//!
//! Each tag is advanced at most once, so each `advance`/`await` pair acts
//! as a unique binary semaphore. Negative tags are *pre-advanced* by
//! convention (a DOACROSS iteration `i < d` has no predecessor iteration).
//!
//! The implementation keeps a *high-water mark* `hwm` — all tags `<= hwm`
//! are advanced — plus a sparse set for out-of-order advances, which is
//! drained into the mark as it becomes contiguous. DOACROSS loops advance
//! nearly in order, so the sparse set stays tiny and the common `await`
//! fast path is one atomic load. Waiters spin briefly, then park on a
//! mutex/condvar pair.

use core::sync::atomic::{AtomicI64, Ordering};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;

/// How an `await` completed — the distinction the paper's `s_nowait` /
/// `s_wait` overheads model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The tag was already advanced at entry.
    AlreadyAdvanced,
    /// The caller blocked (spun and/or parked) before the tag was advanced.
    Waited,
}

impl WaitOutcome {
    /// True if the await had to wait.
    pub fn waited(self) -> bool {
        matches!(self, WaitOutcome::Waited)
    }
}

#[derive(Debug, Default)]
struct Sparse {
    /// Advanced tags above the high-water mark.
    tags: BTreeSet<i64>,
}

/// An advance/await synchronization variable (the paper's `A`).
///
/// # Examples
///
/// ```
/// use ppa_sync::AdvanceAwait;
/// use std::sync::Arc;
///
/// let a = Arc::new(AdvanceAwait::new());
/// let waiter = {
///     let a = Arc::clone(&a);
///     std::thread::spawn(move || a.await_tag(0))
/// };
/// a.advance(0);
/// waiter.join().unwrap();
/// assert!(a.is_advanced(0));
/// ```
#[derive(Debug)]
pub struct AdvanceAwait {
    /// All tags `<= hwm` are advanced. Starts at −1: every negative tag is
    /// pre-advanced, tag 0 is not.
    hwm: AtomicI64,
    sparse: Mutex<Sparse>,
    wakeup: Condvar,
}

impl Default for AdvanceAwait {
    fn default() -> Self {
        Self::new()
    }
}

impl AdvanceAwait {
    /// Iterations of the await spin loop before parking. DOACROSS waits
    /// are typically a few statement lengths (microseconds), while a
    /// park/unpark round trip costs tens of microseconds — so spin long
    /// enough to absorb common waits before sleeping. The spin yields
    /// periodically so an advancer sharing the core (oversubscribed or
    /// single-CPU hosts) can make progress.
    const SPIN_LIMIT: u32 = 8_000;

    /// Creates a variable with no tag advanced (all negative tags are
    /// pre-advanced by convention).
    pub fn new() -> Self {
        AdvanceAwait {
            hwm: AtomicI64::new(-1),
            sparse: Mutex::new(Sparse::default()),
            wakeup: Condvar::new(),
        }
    }

    /// Marks `tag` advanced and wakes any waiters.
    ///
    /// # Panics
    /// Panics if `tag` is negative (reserved pre-advanced range) or already
    /// advanced — each advance/await pair operates on a unique semaphore,
    /// so a double advance is a program bug.
    pub fn advance(&self, tag: i64) {
        assert!(tag >= 0, "advance on reserved pre-advanced tag {tag}");
        let mut sparse = self.sparse.lock();
        let hwm = self.hwm.load(Ordering::Relaxed);
        assert!(
            tag > hwm && !sparse.tags.contains(&tag),
            "tag {tag} advanced twice"
        );
        if tag == hwm + 1 {
            // Extend the mark through any now-contiguous sparse tags.
            let mut new_hwm = tag;
            while sparse.tags.remove(&(new_hwm + 1)) {
                new_hwm += 1;
            }
            self.hwm.store(new_hwm, Ordering::Release);
        } else {
            sparse.tags.insert(tag);
        }
        drop(sparse);
        self.wakeup.notify_all();
    }

    /// True if `tag` has been advanced (negative tags always are).
    pub fn is_advanced(&self, tag: i64) -> bool {
        if tag <= self.hwm.load(Ordering::Acquire) {
            return true;
        }
        if tag < 0 {
            return true;
        }
        self.sparse.lock().tags.contains(&tag)
    }

    /// Blocks until `tag` is advanced; returns whether it had to wait.
    pub fn await_tag(&self, tag: i64) -> WaitOutcome {
        if self.is_advanced(tag) {
            return WaitOutcome::AlreadyAdvanced;
        }
        // Spin phase: DOACROSS waits are usually a few statement lengths.
        for spins in 0..Self::SPIN_LIMIT {
            if spins % 256 == 255 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
            if self.is_advanced(tag) {
                return WaitOutcome::Waited;
            }
        }
        // Park phase.
        let mut sparse = self.sparse.lock();
        loop {
            if tag <= self.hwm.load(Ordering::Acquire) || sparse.tags.contains(&tag) {
                return WaitOutcome::Waited;
            }
            self.wakeup.wait(&mut sparse);
        }
    }

    /// The current high-water mark (every tag at or below it is advanced).
    pub fn high_water_mark(&self) -> i64 {
        self.hwm.load(Ordering::Acquire)
    }

    /// Number of out-of-order advanced tags currently above the mark.
    pub fn sparse_len(&self) -> usize {
        self.sparse.lock().tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn negative_tags_are_pre_advanced() {
        let a = AdvanceAwait::new();
        assert!(a.is_advanced(-1));
        assert!(a.is_advanced(-100));
        assert!(!a.is_advanced(0));
        assert_eq!(a.await_tag(-5), WaitOutcome::AlreadyAdvanced);
    }

    #[test]
    fn in_order_advances_extend_the_mark() {
        let a = AdvanceAwait::new();
        a.advance(0);
        a.advance(1);
        a.advance(2);
        assert_eq!(a.high_water_mark(), 2);
        assert_eq!(a.sparse_len(), 0);
        assert!(a.is_advanced(2));
        assert!(!a.is_advanced(3));
    }

    #[test]
    fn out_of_order_advances_drain_when_contiguous() {
        let a = AdvanceAwait::new();
        a.advance(2);
        a.advance(1);
        assert_eq!(a.high_water_mark(), -1);
        assert_eq!(a.sparse_len(), 2);
        a.advance(0); // 0,1,2 now contiguous
        assert_eq!(a.high_water_mark(), 2);
        assert_eq!(a.sparse_len(), 0);
    }

    #[test]
    #[should_panic(expected = "advanced twice")]
    fn double_advance_panics() {
        let a = AdvanceAwait::new();
        a.advance(0);
        a.advance(0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn negative_advance_panics() {
        AdvanceAwait::new().advance(-1);
    }

    #[test]
    fn await_already_advanced_does_not_wait() {
        let a = AdvanceAwait::new();
        a.advance(0);
        assert_eq!(a.await_tag(0), WaitOutcome::AlreadyAdvanced);
    }

    #[test]
    fn await_blocks_until_advanced() {
        let a = Arc::new(AdvanceAwait::new());
        let waiter = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || a.await_tag(3))
        };
        std::thread::sleep(Duration::from_millis(20));
        a.advance(0);
        a.advance(1);
        a.advance(2);
        a.advance(3);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Waited);
    }

    #[test]
    fn doacross_chain_of_threads() {
        // Each of 8 workers handles iterations i, i+8, ... of a distance-1
        // DOACROSS: await(i-1); update; advance(i). The shared counter must
        // observe iterations strictly in order.
        const P: usize = 8;
        const N: i64 = 400;
        let a = Arc::new(AdvanceAwait::new());
        let order = Arc::new(Mutex::new(Vec::<i64>::new()));
        let workers: Vec<_> = (0..P)
            .map(|p| {
                let a = Arc::clone(&a);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let mut i = p as i64;
                    while i < N {
                        a.await_tag(i - 1);
                        order.lock().push(i);
                        a.advance(i);
                        i += P as i64;
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let order = order.lock();
        assert_eq!(order.len(), N as usize);
        assert!(
            order.windows(2).all(|w| w[0] + 1 == w[1]),
            "iterations ran out of order"
        );
    }

    #[test]
    fn many_waiters_on_one_tag() {
        let a = Arc::new(AdvanceAwait::new());
        let waiters: Vec<_> = (0..16)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || a.await_tag(0))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        a.advance(0);
        for w in waiters {
            assert_eq!(w.join().unwrap(), WaitOutcome::Waited);
        }
    }
}
