//! A counting semaphore.
//!
//! The paper observes that advance/await "is a special case of the general
//! semaphore"; the native substrate provides the general primitive too, so
//! workloads beyond DOACROSS loops (and the event-based barrier/semaphore
//! perturbation models discussed in [18]) have something to run on.

use parking_lot::{Condvar, Mutex};

/// A counting semaphore with blocking and non-blocking acquire.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Creates a semaphore holding `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Acquires one permit, blocking while none are available.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.available.wait(&mut permits);
        }
        *permits -= 1;
    }

    /// Attempts to acquire one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    /// Releases one permit, waking one waiter if any.
    pub fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    /// The number of currently available permits.
    pub fn available_permits(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn try_acquire_counts_down() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        assert_eq!(s.available_permits(), 0);
    }

    #[test]
    fn bounds_concurrency() {
        const LIMIT: usize = 3;
        let s = Arc::new(Semaphore::new(LIMIT));
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..12)
            .map(|_| {
                let s = Arc::clone(&s);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.acquire();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        s.release();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= LIMIT);
        assert_eq!(s.available_permits(), LIMIT);
    }
}
