//! Logical expansion of repeat records.
//!
//! Redundancy suppression (`ppa-slice`) collapses runs of repeated
//! per-processor event patterns into counted
//! [`EventKind::Repeat`] records. This module is the inverse: a
//! streaming [`RepeatExpander`] that replays each record's suppressed
//! occurrences back into the stream, in total order, using
//! [`Event::repeat_shifted`] — the same occurrence arithmetic the
//! suppressor used — so suppress-then-expand is an identity.
//!
//! A record's pattern is the [`REPEAT_MAX_PATTERN`]-bounded window of
//! logical events immediately preceding it on its processor, so the
//! expander keeps exactly that much per-processor history; expanded
//! occurrences enter the history themselves, which is what lets
//! back-to-back records on one processor chain correctly.

use ppa_trace::{Event, EventKind, Trace, REPEAT_MAX_PATTERN};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Why expansion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// A record's processor has fewer preceding logical events than the
    /// record's pattern length — the record is orphaned (e.g. the trace
    /// was window-sliced or resumed mid-stream after suppression).
    MissingPattern {
        /// Sequence number of the orphaned record.
        seq: u64,
        /// Pattern length the record declares.
        needed: u32,
        /// Logical events actually available on that processor.
        have: usize,
    },
    /// A record declares a zero pattern length or occurrence count.
    EmptyRecord {
        /// Sequence number of the malformed record.
        seq: u64,
    },
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::MissingPattern { seq, needed, have } => write!(
                f,
                "repeat record at seq {seq} needs a {needed}-event pattern \
                 but only {have} preceding events are available (trace \
                 sliced or resumed after suppression?)"
            ),
            ExpandError::EmptyRecord { seq } => {
                write!(f, "repeat record at seq {seq} has a zero length or count")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// One record mid-expansion: replays occurrence `r`, position `j`.
struct RunCursor {
    pattern: Vec<Event>,
    dt_ns: u64,
    dseq: u64,
    dfield: i64,
    count: u32,
    r: u64,
    j: usize,
}

impl RunCursor {
    fn peek(&self) -> Event {
        self.pattern[self.j].repeat_shifted(self.r, self.dt_ns, self.dseq, self.dfield)
    }

    /// Steps to the next occurrence position; false when exhausted.
    fn advance(&mut self) -> bool {
        self.j += 1;
        if self.j == self.pattern.len() {
            self.j = 0;
            self.r += 1;
        }
        self.r <= self.count as u64
    }
}

/// Streaming repeat-record expander.
///
/// Feed physical events (the suppressed stream) in total order via
/// [`RepeatExpander::push`]; logical events come out in total order.
/// Call [`RepeatExpander::finish`] once at the end to drain occurrences
/// that extend past the last physical event.
#[derive(Default)]
pub struct RepeatExpander {
    history: BTreeMap<u16, VecDeque<Event>>,
    cursors: Vec<RunCursor>,
    records: u64,
    expanded: u64,
}

impl RepeatExpander {
    /// A fresh expander with no history.
    pub fn new() -> RepeatExpander {
        RepeatExpander::default()
    }

    /// Repeat records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Logical events reproduced from records so far.
    pub fn expanded(&self) -> u64 {
        self.expanded
    }

    fn remember(history: &mut BTreeMap<u16, VecDeque<Event>>, event: Event) {
        let h = history.entry(event.proc.0).or_default();
        h.push_back(event);
        if h.len() > REPEAT_MAX_PATTERN {
            h.pop_front();
        }
    }

    /// Emits every pending occurrence ordering before `limit` (all of
    /// them when `limit` is `None`).
    fn drain(
        &mut self,
        limit: Option<(ppa_trace::Time, u64, ppa_trace::ProcessorId)>,
        out: &mut Vec<Event>,
    ) {
        while let Some((idx, next)) = self
            .cursors
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.peek()))
            .min_by_key(|(_, e)| e.order_key())
        {
            if limit.is_some_and(|key| next.order_key() > key) {
                break;
            }
            Self::remember(&mut self.history, next);
            out.push(next);
            self.expanded += 1;
            if !self.cursors[idx].advance() {
                self.cursors.swap_remove(idx);
            }
        }
    }

    /// Accepts the next physical event; appends the logical events it
    /// (and any pending occurrences ordering before it) stands for.
    pub fn push(&mut self, event: Event, out: &mut Vec<Event>) -> Result<(), ExpandError> {
        self.drain(Some(event.order_key()), out);
        match event.kind {
            EventKind::Repeat {
                len,
                count,
                dt_ns,
                dseq,
                dfield,
            } => {
                if len == 0 || count == 0 {
                    return Err(ExpandError::EmptyRecord { seq: event.seq });
                }
                let history = self.history.entry(event.proc.0).or_default();
                if history.len() < len as usize {
                    return Err(ExpandError::MissingPattern {
                        seq: event.seq,
                        needed: len,
                        have: history.len(),
                    });
                }
                let pattern: Vec<Event> = history
                    .iter()
                    .skip(history.len() - len as usize)
                    .copied()
                    .collect();
                self.records += 1;
                self.cursors.push(RunCursor {
                    pattern,
                    dt_ns,
                    dseq,
                    dfield,
                    count,
                    r: 1,
                    j: 0,
                });
                // The record's own position is its first occurrence's
                // first event: emit everything up to and including it.
                self.drain(Some(event.order_key()), out);
            }
            _ => {
                Self::remember(&mut self.history, event);
                out.push(event);
            }
        }
        Ok(())
    }

    /// Drains every remaining occurrence. The expander is reusable (but
    /// history-free) afterwards.
    pub fn finish(&mut self, out: &mut Vec<Event>) {
        self.drain(None, out);
        self.history.clear();
    }
}

/// Expands an in-memory event sequence (total order assumed).
pub fn expand_events(events: &[Event]) -> Result<Vec<Event>, ExpandError> {
    let mut x = RepeatExpander::new();
    let mut out = Vec::with_capacity(events.len());
    for &e in events {
        x.push(e, &mut out)?;
    }
    x.finish(&mut out);
    Ok(out)
}

/// Expands a whole trace, preserving its kind. Traces without repeat
/// records come back unchanged (one pass, no copy avoided — callers on
/// a hot path should check for records first).
pub fn expand_trace(trace: &Trace) -> Result<Trace, ExpandError> {
    let events = expand_events(trace.events())?;
    Ok(Trace::from_events(trace.kind(), events))
}

/// True if any event is a repeat record (i.e. expansion would change
/// the trace).
pub fn has_repeat_records(events: &[Event]) -> bool {
    events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Repeat { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{EventKind, ProcessorId, StatementId, SyncTag, SyncVarId, Time};

    fn stmt(t: u64, proc: u16, seq: u64, s: u32) -> Event {
        Event::new(
            Time::from_nanos(t),
            ProcessorId(proc),
            seq,
            EventKind::Statement {
                stmt: StatementId(s),
            },
        )
    }

    #[test]
    fn expands_single_event_pattern() {
        // [stmt, repeat(1x3, dt=10, dseq=1)] -> 4 statements.
        let events = vec![
            stmt(0, 0, 0, 7),
            Event::new(
                Time::from_nanos(10),
                ProcessorId(0),
                1,
                EventKind::Repeat {
                    len: 1,
                    count: 3,
                    dt_ns: 10,
                    dseq: 1,
                    dfield: 0,
                },
            ),
        ];
        let out = expand_events(&events).unwrap();
        let want: Vec<Event> = (0..4).map(|i| stmt(i * 10, 0, i, 7)).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn field_stride_shifts_tags() {
        let adv = |t: u64, seq: u64, tag: i64| {
            Event::new(
                Time::from_nanos(t),
                ProcessorId(0),
                seq,
                EventKind::Advance {
                    var: SyncVarId(0),
                    tag: SyncTag(tag),
                },
            )
        };
        let events = vec![
            adv(0, 0, 5),
            Event::new(
                Time::from_nanos(100),
                ProcessorId(0),
                1,
                EventKind::Repeat {
                    len: 1,
                    count: 2,
                    dt_ns: 100,
                    dseq: 1,
                    dfield: 1,
                },
            ),
        ];
        let out = expand_events(&events).unwrap();
        assert_eq!(out, vec![adv(0, 0, 5), adv(100, 1, 6), adv(200, 2, 7)]);
    }

    #[test]
    fn interleaves_occurrences_with_other_processors() {
        // Proc 0's record expands across times where proc 1 has events;
        // the output must stay totally ordered.
        let mut events = vec![
            stmt(0, 0, 0, 1),
            Event::new(
                Time::from_nanos(100),
                ProcessorId(0),
                2,
                EventKind::Repeat {
                    len: 1,
                    count: 5,
                    dt_ns: 100,
                    dseq: 2,
                    dfield: 0,
                },
            ),
        ];
        for i in 0..6u64 {
            events.push(stmt(50 + i * 100, 1, 1 + 2 * i, 9));
        }
        events.sort_by_key(Event::order_key);
        let out = expand_events(&events).unwrap();
        assert_eq!(out.len(), 1 + 5 + 6);
        assert!(out.windows(2).all(|w| w[0].order_key() <= w[1].order_key()));
    }

    #[test]
    fn orphaned_record_errors() {
        let events = vec![
            stmt(0, 0, 0, 1),
            Event::new(
                Time::from_nanos(10),
                ProcessorId(0),
                1,
                EventKind::Repeat {
                    len: 2,
                    count: 1,
                    dt_ns: 10,
                    dseq: 1,
                    dfield: 0,
                },
            ),
        ];
        assert_eq!(
            expand_events(&events),
            Err(ExpandError::MissingPattern {
                seq: 1,
                needed: 2,
                have: 1
            })
        );
    }

    #[test]
    fn record_free_stream_is_untouched() {
        let events: Vec<Event> = (0..50).map(|i| stmt(i * 7, (i % 3) as u16, i, 2)).collect();
        assert_eq!(expand_events(&events).unwrap(), events);
        assert!(!has_repeat_records(&events));
    }
}
