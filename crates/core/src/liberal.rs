//! Liberal perturbation analysis: rescheduling re-simulation.
//!
//! Conservative event-based analysis must preserve the measured
//! iteration-to-processor assignment, but instrumentation can change that
//! assignment when iterations are dynamically dispatched — "a condition
//! that conservative analysis cannot detect or resolve. The use of
//! external execution information to reassign the work bounded by advance
//! and await events … can lead to significant differences in approximated
//! execution behavior" (§4.2.3).
//!
//! [`liberal_reschedule`] is that extension: it takes the *declared*
//! scheduling policy as external knowledge, extracts each iteration's
//! phase durations from the conservatively approximated trace (head =
//! work before the await, critical section = await-to-advance, tail =
//! work after the advance), and re-simulates the dispatch, letting
//! iterations land on different processors than the measurement used.
//!
//! Scope: programs with one concurrent DOACROSS loop over a single
//! synchronization variable — the shape of the paper's three case-study
//! loops. Anything else is rejected with
//! [`AnalysisError::UnrecognizedStructure`].

use crate::error::AnalysisError;
use crate::event_based::event_based;
use ppa_sim::SchedulePolicy;
use ppa_trace::{EventKind, OverheadSpec, ProcessorId, Span, Time, Trace};
use std::collections::BTreeMap;

/// One iteration's extracted phase durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IterationProfile {
    /// Tag advanced by this iteration (== iteration index).
    tag: i64,
    /// Tag awaited (`iteration − distance`).
    awaited: i64,
    /// Work before the await.
    head: Span,
    /// Await-to-advance span (critical section + advance operation).
    critical: Span,
    /// Work after the advance.
    tail: Span,
}

/// The product of liberal analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LiberalResult {
    /// Approximated total execution time under the re-simulated schedule.
    pub total: Span,
    /// The re-simulated iteration-to-processor assignment (by tag order).
    pub assignment: Vec<ProcessorId>,
    /// Re-simulated per-processor synchronization waiting inside the loop.
    pub sync_wait: Vec<Span>,
    /// Loop span under the re-simulated schedule.
    pub loop_span: Span,
}

/// Applies liberal (rescheduling) perturbation analysis.
///
/// `policy` and `processors` are the external scheduling knowledge;
/// `tail_fraction` apportions the unobservable boundary between one
/// iteration's tail and the next iteration's head within a processor's
/// inter-synchronization gap (pass the program's nominal
/// `tail / (tail + head)` ratio, or 0.0 when loop bodies end at the
/// advance).
pub fn liberal_reschedule(
    measured: &Trace,
    overheads: &OverheadSpec,
    processors: usize,
    policy: SchedulePolicy,
    tail_fraction: f64,
) -> Result<LiberalResult, AnalysisError> {
    if processors == 0 {
        return Err(AnalysisError::UnrecognizedStructure {
            detail: "zero processors".to_string(),
        });
    }
    if measured.sync_event_count() == 0 {
        return Err(AnalysisError::NoSyncEvents);
    }
    let conservative = event_based(measured, overheads)?;
    let approx = &conservative.trace;

    // Locate the loop boundaries and the serial prologue/epilogue.
    let loop_begin = approx
        .iter()
        .find(|e| matches!(e.kind, EventKind::LoopBegin { .. }))
        .ok_or_else(|| AnalysisError::UnrecognizedStructure {
            detail: "no LoopBegin marker (liberal analysis needs loop markers)".to_string(),
        })?
        .time;
    let loop_end = approx
        .events()
        .iter()
        .rev()
        .find(|e| matches!(e.kind, EventKind::LoopEnd { .. }))
        .ok_or_else(|| AnalysisError::UnrecognizedStructure {
            detail: "no LoopEnd marker".to_string(),
        })?
        .time;
    let trace_start = approx.start_time().expect("nonempty");
    let trace_end = approx.end_time().expect("nonempty");
    let serial_pre = loop_begin.saturating_since(trace_start);
    let serial_post = trace_end.saturating_since(loop_end);

    // Collect per-processor sync event sequences from the approximated
    // trace: (awaitB, awaitE, advance) triples in thread order.
    #[derive(Debug)]
    struct ProcSeq {
        // (tag awaited, ta(awaitB), ta(awaitE))
        awaits: Vec<(i64, Time, Time)>,
        // (tag advanced, ta(advance))
        advances: Vec<(i64, Time)>,
        barrier_enter: Option<Time>,
    }
    let mut seqs: BTreeMap<ProcessorId, ProcSeq> = BTreeMap::new();
    let mut vars = std::collections::BTreeSet::new();
    for e in approx.iter() {
        let seq = seqs.entry(e.proc).or_insert_with(|| ProcSeq {
            awaits: Vec::new(),
            advances: Vec::new(),
            barrier_enter: None,
        });
        match e.kind {
            EventKind::AwaitBegin { var, tag } => {
                vars.insert(var);
                seq.awaits.push((tag.0, e.time, e.time));
            }
            EventKind::AwaitEnd { tag, .. } => {
                if let Some(last) = seq.awaits.last_mut() {
                    if last.0 == tag.0 {
                        last.2 = e.time;
                    }
                }
            }
            EventKind::Advance { var, tag } => {
                vars.insert(var);
                seq.advances.push((tag.0, e.time));
            }
            EventKind::BarrierEnter { .. } if seq.barrier_enter.is_none() => {
                seq.barrier_enter = Some(e.time);
            }
            _ => {}
        }
    }
    if vars.len() > 1 {
        return Err(AnalysisError::UnrecognizedStructure {
            detail: format!(
                "{} sync variables; liberal analysis handles one",
                vars.len()
            ),
        });
    }

    // Build iteration profiles.
    let mut profiles: Vec<IterationProfile> = Vec::new();
    let frac = tail_fraction.clamp(0.0, 1.0);
    for seq in seqs.values() {
        if seq.awaits.len() != seq.advances.len() {
            return Err(AnalysisError::UnrecognizedStructure {
                detail: "await/advance counts differ within a processor".to_string(),
            });
        }
        for k in 0..seq.awaits.len() {
            let (awaited, tb, te) = seq.awaits[k];
            let (tag, tadv) = seq.advances[k];
            // Head: from this iteration's start. The start is the loop
            // begin for the first iteration on the processor; afterwards
            // the previous advance plus the estimated previous tail.
            let head = if k == 0 {
                tb.saturating_since(loop_begin)
            } else {
                let gap = tb.saturating_since(seq.advances[k - 1].1);
                gap.saturating_sub(gap.scale_f64(frac))
            };
            // Tail: the estimated share of the following gap; the last
            // iteration's tail is exactly the advance-to-barrier span.
            let tail = if k + 1 < seq.awaits.len() {
                let gap = seq.awaits[k + 1].1.saturating_since(tadv);
                gap.scale_f64(frac)
            } else {
                seq.barrier_enter
                    .map(|b| b.saturating_since(tadv))
                    .unwrap_or(Span::ZERO)
            };
            profiles.push(IterationProfile {
                tag,
                awaited,
                head,
                critical: tadv.saturating_since(te),
                tail,
            });
        }
    }
    if profiles.is_empty() {
        return Err(AnalysisError::UnrecognizedStructure {
            detail: "no complete iterations found".to_string(),
        });
    }
    profiles.sort_by_key(|p| p.tag);

    // --- Re-simulate dispatch under the declared policy -----------------
    let n = profiles.len();
    let mut ready = vec![Time::ZERO; processors];
    let mut sync_wait = vec![Span::ZERO; processors];
    let mut advance_time: BTreeMap<i64, Time> = BTreeMap::new();
    let mut assignment = Vec::with_capacity(n);
    let chunk = (n as u64).div_ceil(processors as u64).max(1);

    for (i, prof) in profiles.iter().enumerate() {
        let q = match policy {
            SchedulePolicy::StaticCyclic => i % processors,
            SchedulePolicy::StaticBlock => ((i as u64 / chunk) as usize).min(processors - 1),
            SchedulePolicy::SelfScheduled => (0..processors)
                .min_by_key(|&q| (ready[q], q))
                .expect("processors > 0"),
        };
        assignment.push(ProcessorId(q as u16));
        let await_b = ready[q] + prof.head;
        let await_e = if prof.awaited < 0 {
            await_b + overheads.s_nowait
        } else {
            match advance_time.get(&prof.awaited) {
                Some(&t) if t > await_b => {
                    sync_wait[q] += t - await_b;
                    t + overheads.s_wait
                }
                Some(_) => await_b + overheads.s_nowait,
                None => {
                    return Err(AnalysisError::UnrecognizedStructure {
                        detail: format!(
                            "iteration {} awaits unseen tag {}",
                            prof.tag, prof.awaited
                        ),
                    })
                }
            }
        };
        let adv = await_e + prof.critical;
        advance_time.insert(prof.tag, adv);
        ready[q] = adv + prof.tail;
    }

    let release = ready.iter().copied().max().expect("processors > 0");
    let loop_span = (release + overheads.barrier_release).saturating_since(Time::ZERO);
    let total = serial_pre + loop_span + serial_post;

    Ok(LiberalResult {
        total,
        assignment,
        sync_wait,
        loop_span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_program::InstrumentationPlan;
    use ppa_sim::{run_actual, run_measured, SimConfig};
    use ppa_trace::ClockRate;

    fn cfg(policy: SchedulePolicy) -> SimConfig {
        SimConfig {
            processors: 8,
            clock: ClockRate::GHZ_1,
            overheads: ppa_trace::OverheadSpec::alliant_default(),
            schedule: policy,
            dispatch_cycles: 50,
            jitter: None,
        }
    }

    #[test]
    fn rejects_traces_without_sync() {
        let p = ppa_lfk::sequential_graph(1).unwrap();
        let c = SimConfig {
            processors: 1,
            ..cfg(SchedulePolicy::StaticCyclic)
        };
        let m = run_measured(&p, &InstrumentationPlan::full_statements(), &c).unwrap();
        assert!(matches!(
            liberal_reschedule(&m.trace, &c.overheads, 1, SchedulePolicy::StaticCyclic, 0.0),
            Err(AnalysisError::NoSyncEvents)
        ));
    }

    #[test]
    fn matches_conservative_under_static_dispatch() {
        // When the measured assignment is the static one, re-simulating
        // with the same policy reproduces the conservative (== exact)
        // total.
        let p = ppa_lfk::doacross_graph(3).unwrap();
        let c = cfg(SchedulePolicy::StaticCyclic);
        let actual = run_actual(&p, &c).unwrap();
        let m = run_measured(&p, &InstrumentationPlan::full_with_sync(), &c).unwrap();
        let lib = liberal_reschedule(&m.trace, &c.overheads, 8, SchedulePolicy::StaticCyclic, 0.0)
            .unwrap();
        let ratio = lib.total.ratio(actual.trace.total_time());
        assert!((ratio - 1.0).abs() < 0.02, "liberal ratio {ratio}");
        assert_eq!(lib.assignment.len(), 1001);
    }

    #[test]
    fn improves_on_conservative_under_self_scheduling() {
        // Under self-scheduling with jitter, instrumentation perturbs the
        // assignment; liberal analysis re-derives it and should not be
        // (much) worse than conservative.
        let p = ppa_lfk::doacross_graph(17).unwrap();
        let c = cfg(SchedulePolicy::SelfScheduled).with_jitter(11, 200);
        let actual = run_actual(&p, &c).unwrap().trace.total_time();
        let m = run_measured(&p, &InstrumentationPlan::full_with_sync(), &c).unwrap();

        let conservative = crate::event_based(&m.trace, &c.overheads)
            .unwrap()
            .total_time();
        // Loop 17's nominal tail fraction: tail 2000 of (head 6000 + tail
        // 2000 + dispatch 50).
        let lib = liberal_reschedule(
            &m.trace,
            &c.overheads,
            8,
            SchedulePolicy::SelfScheduled,
            2000.0 / 8050.0,
        )
        .unwrap();

        let cons_err = (conservative.ratio(actual) - 1.0).abs();
        let lib_err = (lib.total.ratio(actual) - 1.0).abs();
        assert!(
            lib_err < cons_err + 0.05,
            "liberal error {lib_err} should be comparable to conservative {cons_err}"
        );
    }

    #[test]
    fn rejects_zero_processors() {
        let p = ppa_lfk::doacross_graph(3).unwrap();
        let c = cfg(SchedulePolicy::StaticCyclic);
        let m = run_measured(&p, &InstrumentationPlan::full_with_sync(), &c).unwrap();
        assert!(
            liberal_reschedule(&m.trace, &c.overheads, 0, SchedulePolicy::StaticCyclic, 0.0)
                .is_err()
        );
    }
}
