//! # ppa-core — performance perturbation analysis
//!
//! The paper's contribution: recovering actual execution behavior from
//! perturbed (instrumented) event traces.
//!
//! - [`time_based`] — §3's model: subtract per-thread accumulated
//!   instrumentation overhead, assuming event independence. Exact for
//!   sequential executions; systematically wrong for dependent concurrent
//!   executions (Table 1's under-/over-approximations, which this
//!   reproduction recreates).
//! - [`event_based`] — §4's model: a constructive resolution of
//!   approximate event times that treats `advance`/`await` and barrier
//!   events by their synchronization semantics, *recomputing* waiting in
//!   approximated time while preserving the measured partial order — the
//!   paper's conservative approximation.
//! - [`liberal_reschedule`] — §4.1/4.2.3's liberal extension: re-simulate
//!   iteration dispatch with a declared scheduling policy, allowing work
//!   reassignment that conservative analysis must preserve.
//!
//! All analyses take the measured [`ppa_trace::Trace`] plus the
//! [`ppa_trace::OverheadSpec`] of empirically determined instrumentation
//! and synchronization costs, and produce an approximated trace (plus
//! waiting statistics for the event-based forms).

#![warn(missing_docs)]

mod accuracy;
mod checkpoint;
mod error;
mod estimate;
mod event_based;
mod expand;
mod liberal;
mod sharded;
mod streaming;
mod time_based;

pub use accuracy::{compare_traces, AccuracyReport};
pub use checkpoint::{
    read_checkpoint, scan_checkpoint, write_checkpoint, Checkpoint, CheckpointDelta,
    CheckpointError, CheckpointParts, CheckpointScan, DeltaCheckpointWriter, SinkState,
    CHECKPOINT_MAGIC, CHECKPOINT_MAGIC_V2, DEFAULT_COMPACT_EVERY,
};
pub use error::{AnalysisError, IngestError};
pub use estimate::{estimate_overheads, KindEstimate, OverheadEstimate};
pub use event_based::{
    event_based, event_based_reference, event_based_total, AwaitOutcome, BarrierOutcome,
    EventBasedResult,
};
pub use expand::{expand_events, expand_trace, has_repeat_records, ExpandError, RepeatExpander};
pub use liberal::{liberal_reschedule, LiberalResult};
pub use sharded::{
    event_based_sharded, event_based_sharded_from_reader, event_based_sharded_probed, ShardProbes,
};
pub use streaming::{
    AnalyzerDelta, AnalyzerProbes, AnalyzerSnapshot, EventBasedAnalyzer, StreamOutput, StreamStats,
    StreamTail,
};
pub use time_based::{time_based, time_based_total, TimeBasedResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use ppa_program::synth::{synthesize, SynthConfig};
    use ppa_program::InstrumentationPlan;
    use ppa_sim::{run_actual, run_measured, SchedulePolicy, SimConfig};
    use ppa_trace::{pair_sync_events_strict, ClockRate, OverheadSpec, Span};
    use proptest::prelude::*;

    fn static_config(seed: u64) -> SimConfig {
        SimConfig {
            processors: 8,
            clock: ClockRate::GHZ_1,
            overheads: OverheadSpec::alliant_default(),
            schedule: SchedulePolicy::StaticCyclic,
            dispatch_cycles: 50,
            jitter: None,
        }
        .with_jitter(seed, 250)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The substrate's central theorem: for ANY synthesized workload
        /// (serial segments, sequential/DOALL/DOACROSS loops, one or two
        /// sync variables, jittered costs) under static dispatch,
        /// event-based analysis of the fully instrumented measured trace
        /// reconstructs the actual execution *exactly* — total time and
        /// every individual event.
        #[test]
        fn event_based_is_exact_on_arbitrary_workloads(seed in any::<u64>()) {
            let program = synthesize(seed, &SynthConfig::default());
            let cfg = static_config(seed);
            let actual = run_actual(&program, &cfg).unwrap();
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            let approx = event_based(&measured.trace, &cfg.overheads).unwrap();

            prop_assert_eq!(approx.total_time(), actual.trace.total_time());

            let report = compare_traces(&actual.trace, &approx.trace, Span::ZERO);
            prop_assert!(report.matched > 0);
            prop_assert_eq!(
                report.max_abs_error,
                Span::ZERO,
                "per-event mismatch on seed {}: mean {}",
                seed,
                report.mean_abs_error
            );

            // The approximated trace is a feasible execution under the
            // strict (actual-trace) causality rules.
            prop_assert!(pair_sync_events_strict(&approx.trace).is_ok());
        }

        /// Time-based analysis never yields a longer total than the
        /// measurement it starts from, and is monotone in overheads.
        #[test]
        fn time_based_totals_are_monotone(seed in any::<u64>()) {
            let program = synthesize(seed, &SynthConfig::default());
            let cfg = static_config(seed);
            let measured =
                run_measured(&program, &InstrumentationPlan::full_statements(), &cfg).unwrap();

            let full = time_based(&measured.trace, &cfg.overheads).total_time();
            let half = time_based(
                &measured.trace,
                &cfg.overheads.scale_instrumentation(0.5),
            )
            .total_time();
            let zero = time_based(&measured.trace, &OverheadSpec::ZERO).total_time();

            prop_assert!(full <= half, "more overhead removed must not lengthen the total");
            prop_assert!(half <= zero);
            prop_assert_eq!(zero, measured.trace.total_time());
        }

        /// Analysis is insensitive to the dispatch policy used by the
        /// execution as long as it is deterministic: the approximation
        /// always reproduces THAT execution's actual time.
        #[test]
        fn event_based_exact_under_every_policy(
            seed in any::<u64>(),
            policy in prop_oneof![
                Just(SchedulePolicy::StaticCyclic),
                Just(SchedulePolicy::StaticBlock),
            ],
        ) {
            let program = synthesize(seed, &SynthConfig::default());
            let cfg = static_config(seed).with_schedule(policy);
            let actual = run_actual(&program, &cfg).unwrap();
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            let approx = event_based(&measured.trace, &cfg.overheads).unwrap();
            prop_assert_eq!(approx.total_time(), actual.trace.total_time());
        }

        /// The three formulations of event-based analysis — the streaming
        /// engine (behind `event_based`), the batch worklist reference,
        /// and the sharded parallel runner — agree event-for-event and
        /// outcome-for-outcome on arbitrary feasible traces.
        #[test]
        fn streaming_and_sharded_match_the_reference(seed in any::<u64>()) {
            let program = synthesize(seed, &SynthConfig::default());
            let cfg = static_config(seed);
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();

            let reference = event_based_reference(&measured.trace, &cfg.overheads).unwrap();
            let streamed = event_based(&measured.trace, &cfg.overheads).unwrap();
            prop_assert_eq!(&streamed, &reference);

            let sharded = event_based_sharded(&measured.trace, &cfg.overheads, 4).unwrap();
            prop_assert_eq!(&sharded, &reference);
        }

        /// Checkpointing is transparent: snapshotting the streaming
        /// analyzer at ANY split point, serializing the image to JSON
        /// (as a checkpoint file would), and restoring it in a fresh
        /// analyzer continues to exactly the outputs, stats, and tail of
        /// the uninterrupted run.
        #[test]
        fn snapshot_restore_is_transparent_at_any_split(
            seed in any::<u64>(),
            split_seed in any::<u64>(),
        ) {
            let program = synthesize(seed, &SynthConfig::default());
            let cfg = static_config(seed);
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            let events = measured.trace.events();

            let mut direct = EventBasedAnalyzer::new(&cfg.overheads);
            let mut direct_out = Vec::new();
            for e in events {
                direct.push(*e).unwrap();
                while let Some(o) = direct.next_output() {
                    direct_out.push(o);
                }
            }
            let direct_tail = direct.finish().unwrap();
            direct_out.extend(direct_tail.outputs.iter().copied());

            let split = (split_seed as usize) % (events.len() + 1);
            let mut first = EventBasedAnalyzer::new(&cfg.overheads);
            let mut resumed_out = Vec::new();
            for e in &events[..split] {
                first.push(*e).unwrap();
                while let Some(o) = first.next_output() {
                    resumed_out.push(o);
                }
            }
            let json = serde_json::to_string(&first.snapshot()).unwrap();
            let image: AnalyzerSnapshot = serde_json::from_str(&json).unwrap();
            let mut second = EventBasedAnalyzer::restore(&image);
            for e in &events[split..] {
                second.push(*e).unwrap();
                while let Some(o) = second.next_output() {
                    resumed_out.push(o);
                }
            }
            let resumed_tail = second.finish().unwrap();
            resumed_out.extend(resumed_tail.outputs.iter().copied());

            prop_assert_eq!(resumed_out, direct_out);
            prop_assert_eq!(resumed_tail.stats, direct_tail.stats);
        }

        /// Incremental checkpointing is transparent: for ANY workload,
        /// cadence, and compaction period, the state reassembled from
        /// the PPACKPT2 record chain after every cadence write is
        /// byte-identical (as serialized JSON) to the analyzer's full
        /// snapshot at that instant — and an analyzer restored from the
        /// chain finishes the stream exactly like the uninterrupted one.
        #[test]
        fn delta_checkpoint_chain_is_transparent(
            seed in any::<u64>(),
            cadence in 1usize..48,
            compact_every in 0usize..6,
        ) {
            let program = synthesize(seed, &SynthConfig::default());
            let cfg = static_config(seed);
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            let events = measured.trace.events();

            let dir = std::env::temp_dir()
                .join(format!("ppa-delta-prop-{seed:016x}-{cadence}-{compact_every}"));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("state.ckpt");
            let mut writer = DeltaCheckpointWriter::new(&path, compact_every);

            let mut analyzer = EventBasedAnalyzer::new(&cfg.overheads);
            let mut direct = EventBasedAnalyzer::new(&cfg.overheads);
            let mut last_good = None;
            for (i, e) in events.iter().enumerate() {
                analyzer.push(*e).unwrap();
                direct.push(*e).unwrap();
                while analyzer.next_output().is_some() {}
                while direct.next_output().is_some() {}
                if (i + 1) % cadence == 0 {
                    let parts = CheckpointParts {
                        positions_seen: (i + 1) as u64,
                        gaps: &[],
                        events_lost: 0,
                        reorder: None,
                        sink: SinkState::default(),
                    };
                    writer.checkpoint(&mut analyzer, parts).unwrap();
                    let back = read_checkpoint(&path).unwrap();
                    prop_assert_eq!(back.positions_seen, (i + 1) as u64);
                    prop_assert_eq!(
                        serde_json::to_string(&back.analyzer).unwrap(),
                        serde_json::to_string(&analyzer.snapshot()).unwrap(),
                        "reassembled snapshot diverges at event {}", i + 1
                    );
                    last_good = Some((read_checkpoint(&path).unwrap(), i + 1));
                }
            }
            // Resume from the last chain state and finish: identical
            // verdict to the analyzer that checkpointed (which itself
            // must not have been perturbed by delta snapshotting).
            if let Some((cp, from)) = last_good {
                let mut resumed = EventBasedAnalyzer::restore(&cp.analyzer);
                for e in &events[from..] {
                    resumed.push(*e).unwrap();
                    while resumed.next_output().is_some() {}
                }
                prop_assert_eq!(
                    resumed.finish().unwrap().stats,
                    direct.finish().unwrap().stats
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[cfg(test)]
mod integration {
    use super::*;
    use ppa_lfk::DoacrossParams;
    use ppa_program::InstrumentationPlan;
    use ppa_sim::{run_actual, run_measured, SchedulePolicy, SimConfig};
    use ppa_trace::{ClockRate, OverheadSpec, Span};

    fn experiment_config() -> SimConfig {
        SimConfig {
            processors: 8,
            clock: ClockRate::GHZ_1,
            overheads: OverheadSpec::alliant_default(),
            schedule: SchedulePolicy::StaticCyclic,
            dispatch_cycles: 50,
            jitter: None,
        }
    }

    /// With deterministic costs and static dispatch, event-based analysis
    /// reconstructs the actual total time *exactly* — the strongest
    /// correctness check the simulator substrate makes possible.
    #[test]
    fn event_based_is_exact_under_static_dispatch() {
        for id in [3u8, 4, 17] {
            let program = ppa_lfk::doacross_graph(id).unwrap();
            let cfg = experiment_config();
            let actual = run_actual(&program, &cfg).unwrap();
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
            let approx = event_based(&measured.trace, &cfg.overheads).unwrap();
            let ratio = approx.total_time().ratio(actual.trace.total_time());
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "loop {id}: event-based ratio {ratio} should be exactly 1"
            );
        }
    }

    /// The same holds with workload jitter: jitter perturbs statement
    /// costs identically in both runs, and the analysis extracts the
    /// per-statement durations from the measured deltas.
    #[test]
    fn event_based_is_exact_with_jitter() {
        let program = ppa_lfk::doacross_graph(3).unwrap();
        let cfg = experiment_config().with_jitter(99, 150);
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let approx = event_based(&measured.trace, &cfg.overheads).unwrap();
        let ratio = approx.total_time().ratio(actual.trace.total_time());
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    /// Self-scheduled dispatch lets instrumentation change the
    /// iteration-to-processor assignment; conservative event-based
    /// analysis preserves the measured assignment, so a small error
    /// appears — the paper's residual-error mechanism (§4.2.3).
    #[test]
    fn event_based_error_is_small_under_self_scheduling() {
        let program = ppa_lfk::doacross_graph(17).unwrap();
        let cfg = experiment_config()
            .with_schedule(SchedulePolicy::SelfScheduled)
            .with_jitter(7, 200);
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let approx = event_based(&measured.trace, &cfg.overheads).unwrap();
        let ratio = approx.total_time().ratio(actual.trace.total_time());
        assert!(
            (ratio - 1.0).abs() < 0.10,
            "event-based should stay within 10% (paper: 3-6%), got {ratio}"
        );
    }

    /// Time-based analysis under-approximates loops 3/4 (instrumentation
    /// outside the unobservable critical section reduced blocking) and
    /// over-approximates loop 17 (instrumentation inside the critical
    /// section increased blocking) — Table 1's two failure directions.
    #[test]
    fn time_based_fails_in_the_papers_directions() {
        let cfg = experiment_config();
        let plan = InstrumentationPlan::full_statements();
        let mut ratios = Vec::new();
        for id in [3u8, 4, 17] {
            let program = ppa_lfk::doacross_graph(id).unwrap();
            let actual = run_actual(&program, &cfg).unwrap();
            let measured = run_measured(&program, &plan, &cfg).unwrap();
            let approx = time_based(&measured.trace, &cfg.overheads);
            ratios.push(approx.total_time().ratio(actual.trace.total_time()));
        }
        assert!(
            ratios[0] < 0.8,
            "loop 3 should under-approximate, got {}",
            ratios[0]
        );
        assert!(
            ratios[1] < 0.8,
            "loop 4 should under-approximate, got {}",
            ratios[1]
        );
        assert!(
            ratios[2] > 1.5,
            "loop 17 should over-approximate, got {}",
            ratios[2]
        );
    }

    /// Event-based analysis needs the sync events; on a statements-only
    /// measured trace the awaits are invisible and accuracy degrades to
    /// time-based behaviour — quantifying the paper's point that the
    /// *extra* instrumentation buys accuracy.
    #[test]
    fn sync_instrumentation_buys_accuracy() {
        let cfg = experiment_config();
        let program = ppa_lfk::doacross_graph(3).unwrap();
        let actual = run_actual(&program, &cfg).unwrap().trace.total_time();

        let with_sync =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let event_ratio = event_based(&with_sync.trace, &cfg.overheads)
            .unwrap()
            .total_time()
            .ratio(actual);

        let stmts_only =
            run_measured(&program, &InstrumentationPlan::full_statements(), &cfg).unwrap();
        let time_ratio = time_based(&stmts_only.trace, &cfg.overheads)
            .total_time()
            .ratio(actual);

        assert!(
            (event_ratio - 1.0).abs() < (time_ratio - 1.0).abs(),
            "event-based ({event_ratio}) should beat time-based ({time_ratio})"
        );
    }

    /// The measured slowdown is higher with sync instrumentation than
    /// without (Table 2 vs Table 1 measured columns).
    #[test]
    fn sync_instrumentation_costs_more() {
        let cfg = experiment_config();
        for id in [3u8, 4, 17] {
            let program = ppa_lfk::doacross_graph(id).unwrap();
            let t1 = run_measured(&program, &InstrumentationPlan::full_statements(), &cfg)
                .unwrap()
                .trace
                .total_time();
            let t2 = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg)
                .unwrap()
                .trace
                .total_time();
            assert!(t2 > t1, "loop {id}: sync instrumentation should cost more");
        }
    }

    /// Time-based analysis is exact on sequential traces (the Figure 1
    /// regime).
    #[test]
    fn time_based_exact_on_sequential() {
        let cfg = SimConfig {
            processors: 1,
            ..experiment_config()
        };
        for id in [1u8, 7, 19, 22] {
            let program = ppa_lfk::sequential_graph(id).unwrap();
            let actual = run_actual(&program, &cfg).unwrap();
            let measured =
                run_measured(&program, &InstrumentationPlan::full_statements(), &cfg).unwrap();
            let approx = time_based(&measured.trace, &cfg.overheads);
            let ratio = approx.total_time().ratio(actual.trace.total_time());
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "loop {id}: sequential time-based should be exact, got {ratio}"
            );
            // And the measured slowdown should be substantial.
            let slowdown = measured.trace.total_time().ratio(actual.trace.total_time());
            assert!(
                slowdown > 2.0,
                "loop {id}: expected real intrusion, got {slowdown}"
            );
        }
    }

    /// The streaming engine produces a byte-identical approximated JSONL
    /// trace to the batch reference on the paper's Livermore loops, while
    /// carrying resident state far smaller than the trace — frontier
    /// state plus open sync episodes, not `O(trace length)`.
    #[test]
    fn streaming_is_byte_identical_and_bounded_on_livermore_loops() {
        for id in [3u8, 4, 17] {
            let program = ppa_lfk::doacross_graph(id).unwrap();
            let cfg = experiment_config();
            let measured =
                run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();

            let reference = event_based_reference(&measured.trace, &cfg.overheads).unwrap();
            let mut batch_jsonl = Vec::new();
            ppa_trace::write_jsonl(&reference.trace, &mut batch_jsonl).unwrap();

            // Stream the measured events through the incremental engine,
            // writing approximated events as they are emitted.
            let mut analyzer = EventBasedAnalyzer::new(&cfg.overheads);
            let mut writer = ppa_trace::TraceStreamWriter::new(
                Vec::new(),
                ppa_trace::TraceKind::Approximated,
                measured.trace.len(),
            )
            .unwrap();
            let emit = |o: StreamOutput, w: &mut ppa_trace::TraceStreamWriter<Vec<u8>>| {
                if let StreamOutput::Event(e) = o {
                    w.write_event(&e).unwrap();
                }
            };
            for e in measured.trace.iter() {
                analyzer.push(*e).unwrap();
                while let Some(o) = analyzer.next_output() {
                    emit(o, &mut writer);
                }
            }
            let tail = analyzer.finish().unwrap();
            for o in tail.outputs {
                emit(o, &mut writer);
            }
            let stream_jsonl = writer.finish().unwrap();

            assert_eq!(
                stream_jsonl, batch_jsonl,
                "loop {id}: streaming JSONL differs from batch"
            );

            // Bounded state: far below the trace length. The bound is
            // O(processors + open sync episodes); on these 8-processor
            // DOACROSS loops the resident peak sits well under a tenth
            // of the trace.
            let n = measured.trace.len();
            assert!(
                tail.stats.peak_resident < n / 10,
                "loop {id}: peak resident {} vs {} events",
                tail.stats.peak_resident,
                n
            );
        }
    }

    /// Approximated waiting from event-based analysis matches the ground
    /// truth simulator statistics under static dispatch.
    #[test]
    fn approximated_waiting_matches_ground_truth() {
        let program = ppa_lfk::doacross_graph_with("w", &DoacrossParams::lfk17()).unwrap();
        let cfg = experiment_config().with_jitter(3, 150);
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let approx = event_based(&measured.trace, &cfg.overheads).unwrap();

        let truth = &actual.stats.loops[0];
        for (p, ps) in truth.per_proc.iter().enumerate() {
            let approx_wait = approx.sync_wait(ppa_trace::ProcessorId(p as u16));
            let diff = approx_wait.as_nanos().abs_diff(ps.sync_wait.as_nanos());
            assert!(
                diff <= ps.sync_wait.as_nanos() / 10 + Span::from_nanos(1_000).as_nanos(),
                "proc {p}: approx wait {} vs actual {}",
                approx_wait,
                ps.sync_wait
            );
        }
    }
}
