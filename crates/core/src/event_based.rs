//! Event-based perturbation analysis (paper §4).
//!
//! The constructive process of §4.2.3: resolve an approximate time
//! `ta(x)` for every measured event, using each event's *time basis* —
//! the preceding event on its thread (or the loop-entry event for the
//! first event a processor emits in a concurrent loop) — for ordinary
//! events, and the synchronization semantics for the rest:
//!
//! ```text
//! ta(advance) = ta(u) + tm(advance) − tm(u) − α
//! ta(awaitB)  = ta(v) + tm(awaitB)  − tm(v) − β
//! ta(awaitE)  = ta(awaitB) + s_nowait              if ta(advance) ≤ ta(awaitB)
//!             = ta(advance) + s_wait               otherwise
//! ta(barrier exit) = max over enters ta(enter) + s_barrier
//! ```
//!
//! Synchronization waiting is thereby *recomputed* in approximated time
//! rather than inherited from the measurement: waiting that existed only
//! because of instrumentation disappears, and waiting that the
//! instrumentation masked reappears (the two cases of the paper's
//! Figure 2). The advance/await pairing (and hence the measured partial
//! order of dependent operations) is preserved — this is the paper's
//! *conservative approximation*: always a feasible execution, not
//! necessarily the most likely one.
//!
//! Resolution is a worklist (Kahn) pass over the event dependency DAG:
//! same-thread edges, advance→awaitE pairing edges, and barrier
//! enters→exit edges. A cycle means the trace is not a possible execution
//! and is reported as an error.

use crate::error::AnalysisError;
use crate::streaming::{EventBasedAnalyzer, StreamOutput};
use ppa_trace::{
    pair_sync_events, BarrierId, EpisodeFamily, Event, EventKind, OverheadSpec, ProcessorId, Span,
    SyncIndex, SyncTag, SyncVarId, TaskId, Time, Trace, TraceKind,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One await, in approximated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AwaitOutcome {
    /// Processor that executed the await.
    pub proc: ProcessorId,
    /// Synchronization variable.
    pub var: SyncVarId,
    /// Tag awaited.
    pub tag: SyncTag,
    /// Approximated `awaitB` time.
    pub begin: Time,
    /// Approximated `awaitE` time.
    pub end: Time,
    /// Approximated blocked span (zero when the tag was already advanced).
    pub wait: Span,
}

impl AwaitOutcome {
    /// True if the await blocked in the approximated execution.
    pub fn waited(&self) -> bool {
        !self.wait.is_zero()
    }
}

/// One processor's passage through one barrier episode, in approximated
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierOutcome {
    /// The barrier.
    pub barrier: BarrierId,
    /// The processor.
    pub proc: ProcessorId,
    /// Approximated enter time.
    pub enter: Time,
    /// Approximated exit time.
    pub exit: Time,
    /// Approximated wait (release minus own arrival).
    pub wait: Span,
}

/// One resolved lock/semaphore/fork-join episode, in approximated time.
///
/// The blocked-completion event — a lock acquire, a semaphore P, or the
/// parent's join-return — is approximated by the §4.2.3 await rule with
/// the enabling event (the previous release, the k-th V, or the child's
/// end) playing the advance's role:
///
/// ```text
/// ready = ta(basis) + tm − tm(basis) − oh        (the chain rule)
/// ta    = ready                 if no dependency, or ta(dep) ≤ ready
///       = ta(dep) + s_wait      otherwise
/// ```
///
/// Unlike an await, the blocked operation records a single event (there
/// is no `awaitB` analogue), so measured blocking time folds into the
/// chain delta and cannot be subtracted — the approximation is
/// conservative for contended episodes (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeOutcome {
    /// Synchronization family of the episode.
    pub family: EpisodeFamily,
    /// Raw id of the lock/semaphore/task object.
    pub object: u32,
    /// Processor that executed the blocked operation.
    pub proc: ProcessorId,
    /// Approximated time the operation would have completed had the
    /// resource been free (the chain-rule value).
    pub ready: Time,
    /// Approximated completion time.
    pub end: Time,
    /// Approximated blocked span (zero when the resource was free).
    pub wait: Span,
}

impl EpisodeOutcome {
    /// True if the operation blocked in the approximated execution.
    pub fn waited(&self) -> bool {
        !self.wait.is_zero()
    }
}

/// The product of event-based analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBasedResult {
    /// The approximated trace.
    pub trace: Trace,
    /// Every await, in approximated time (ordered by `awaitE` position in
    /// the measured trace).
    pub awaits: Vec<AwaitOutcome>,
    /// Every processor×barrier-episode passage, in approximated time.
    pub barriers: Vec<BarrierOutcome>,
    /// Every lock/semaphore/task episode, in approximated time (ordered
    /// by blocked-event position in the measured trace).
    pub episodes: Vec<EpisodeOutcome>,
}

impl EventBasedResult {
    /// The approximated total execution time.
    pub fn total_time(&self) -> Span {
        self.trace.total_time()
    }

    /// Total approximated synchronization waiting on one processor.
    pub fn sync_wait(&self, proc: ProcessorId) -> Span {
        self.awaits
            .iter()
            .filter(|a| a.proc == proc)
            .map(|a| a.wait)
            .sum()
    }

    /// Total approximated barrier waiting on one processor.
    pub fn barrier_wait(&self, proc: ProcessorId) -> Span {
        self.barriers
            .iter()
            .filter(|b| b.proc == proc)
            .map(|b| b.wait)
            .sum()
    }

    /// Total approximated lock/semaphore/task blocking on one processor.
    pub fn episode_wait(&self, proc: ProcessorId) -> Span {
        self.episodes
            .iter()
            .filter(|e| e.proc == proc)
            .map(|e| e.wait)
            .sum()
    }
}

/// How each event's approximate time is anchored.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Basis {
    /// The globally first event: `ta = tm − overhead`.
    Origin,
    /// Anchored to another event (same-thread predecessor or fork point).
    Event(usize),
}

/// Static trace structure shared by the batch and sharded analyses:
/// same-thread predecessors, fork anchors, and every event's time basis.
pub(crate) struct Structure {
    /// Same-thread predecessor of each event.
    pub(crate) prev: Vec<Option<usize>>,
    /// The time basis of each event.
    pub(crate) basis: Vec<Basis>,
}

/// Computes [`Structure`] for a non-empty event sequence.
pub(crate) fn discover_structure(events: &[Event]) -> Structure {
    let n = events.len();
    // Same-thread predecessors.
    let mut prev: Vec<Option<usize>> = vec![None; n];
    {
        let mut last: std::collections::BTreeMap<ProcessorId, usize> = Default::default();
        for (i, e) in events.iter().enumerate() {
            prev[i] = last.insert(e.proc, i);
        }
    }
    // Latest loop-begin at or before each position (fork bases).
    let mut last_loop_begin: Vec<Option<usize>> = vec![None; n];
    {
        let mut cur = None;
        for (i, e) in events.iter().enumerate() {
            if matches!(e.kind, EventKind::LoopBegin { .. }) {
                cur = Some(i);
            }
            last_loop_begin[i] = cur;
        }
    }
    let serial_proc = events[0].proc;

    // Task-graph fork anchors: the child's begin fork (the second fork of
    // an open task) is causally created by the parent's spawn fork, so it
    // anchors there rather than to the child processor's stale frontier —
    // the episode analogue of the loop-begin fork point below. The trace
    // is validated before structure discovery, so the tracking here can
    // assume a well-formed fork,fork,join,join protocol per task id.
    let mut fork_anchor: std::collections::HashMap<usize, usize> = Default::default();
    {
        // task → (spawn index, events seen in the open episode).
        let mut open: std::collections::BTreeMap<TaskId, (usize, u8)> = Default::default();
        for (i, e) in events.iter().enumerate() {
            match e.kind {
                EventKind::TaskFork { task } => match open.entry(task) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert((i, 1));
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        fork_anchor.insert(i, o.get().0);
                        o.get_mut().1 += 1;
                    }
                },
                EventKind::TaskJoin { task } => {
                    if let Some(st) = open.get_mut(&task) {
                        st.1 += 1;
                        if st.1 == 4 {
                            open.remove(&task);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // The basis for ordinary events; awaitE and barrier exits get their
    // own rules but still need dependency edges.
    let basis: Vec<Basis> = (0..n)
        .map(|i| {
            if let Some(&spawn) = fork_anchor.get(&i) {
                return Basis::Event(spawn);
            }
            match prev[i] {
                Some(p) => {
                    // Fork point: a non-serial processor whose previous
                    // event predates the current loop's entry was idle in
                    // between (its last event was a barrier exit — or
                    // nothing at all when barriers are not instrumented);
                    // anchor to the loop entry instead of the stale
                    // predecessor, so the serial thread's inter-loop
                    // instrumentation is not charged to this processor.
                    let fork_point = events[i].proc != serial_proc
                        && last_loop_begin[i].map(|lb| lb > p).unwrap_or(false);
                    if fork_point {
                        Basis::Event(last_loop_begin[i].unwrap_or(p))
                    } else {
                        Basis::Event(p)
                    }
                }
                // A thread's first event: anchor to the loop entry when
                // the trace has loop markers; otherwise treat the thread
                // start as absolute (`ta = tm − overhead`) — without
                // markers there is no observable fork event to anchor to.
                None => match last_loop_begin[i] {
                    Some(lb) if lb != i => Basis::Event(lb),
                    _ => Basis::Origin,
                },
            }
        })
        .collect();

    Structure { prev, basis }
}

/// Builds the [`EventBasedResult`] from fully resolved approximate times.
///
/// `basis` is the [`Structure::basis`] of the same event sequence — the
/// episode outcomes re-derive each blocked event's chain-rule `ready`
/// time from it.
pub(crate) fn assemble_result(
    events: &[Event],
    ta: &[Time],
    index: &SyncIndex,
    basis: &[Basis],
    overheads: &OverheadSpec,
) -> EventBasedResult {
    let approx_events: Vec<Event> = events
        .iter()
        .enumerate()
        .map(|(i, e)| Event { time: ta[i], ..*e })
        .collect();

    let awaits = index
        .awaits
        .iter()
        .map(|p| {
            let (var, tag) = match events[p.end].kind {
                EventKind::AwaitEnd { var, tag } => (var, tag),
                _ => unreachable!("await pair indexes an awaitE"),
            };
            let begin = ta[p.begin];
            let end = ta[p.end];
            let wait = match p.advance {
                Some(adv) => ta[adv].saturating_since(begin),
                None => Span::ZERO,
            };
            AwaitOutcome {
                proc: p.proc,
                var,
                tag,
                begin,
                end,
                wait,
            }
        })
        .collect();

    let mut barriers = Vec::new();
    for ep in &index.barriers {
        let release = ep
            .enters
            .iter()
            .map(|&en| ta[en])
            .max()
            .expect("episodes have enters");
        for &en in &ep.enters {
            let proc = events[en].proc;
            let exit = ep
                .exits
                .iter()
                .find(|&&x| events[x].proc == proc)
                .copied()
                .expect("validated episodes pair enters and exits per processor");
            barriers.push(BarrierOutcome {
                barrier: ep.barrier,
                proc,
                enter: ta[en],
                exit: ta[exit],
                wait: release.saturating_since(ta[en]),
            });
        }
    }

    let episodes = index
        .episodes
        .iter()
        .map(|p| {
            let e = &events[p.event];
            let oh = overheads.instr_overhead(&e.kind);
            let ready = match basis[p.event] {
                Basis::Origin => e.time.saturating_sub_span(oh),
                Basis::Event(b) => {
                    ta[b] + e.time.saturating_since(events[b].time).saturating_sub(oh)
                }
            };
            let wait = match p.dep {
                Some(d) => ta[d].saturating_since(ready),
                None => Span::ZERO,
            };
            EpisodeOutcome {
                family: p.family,
                object: p.object,
                proc: p.proc,
                ready,
                end: ta[p.event],
                wait,
            }
        })
        .collect();

    EventBasedResult {
        trace: Trace::from_events(TraceKind::Approximated, approx_events),
        awaits,
        barriers,
        episodes,
    }
}

/// Applies event-based perturbation analysis to a measured trace.
///
/// This runs the incremental engine
/// ([`EventBasedAnalyzer`](crate::EventBasedAnalyzer)) over the whole
/// trace and reassembles its outputs; the result is identical to the
/// direct worklist formulation kept as [`event_based_reference`]. The
/// approximation rules are those of §4.2.3:
///
/// ```text
/// ta(advance) = ta(u) + tm(advance) − tm(u) − α
/// ta(awaitB)  = ta(v) + tm(awaitB)  − tm(v) − β
/// ta(awaitE)  = ta(awaitB) + s_nowait              if ta(advance) ≤ ta(awaitB)
///             = ta(advance) + s_wait               otherwise
/// ta(barrier exit) = max over enters ta(enter) + s_barrier
/// ```
///
/// # Examples
///
/// ```
/// use ppa_program::{InstrumentationPlan, ProgramBuilder};
/// use ppa_sim::{run_actual, run_measured, SimConfig};
/// use ppa_core::event_based;
///
/// // A DOACROSS loop with a critical section.
/// let mut b = ProgramBuilder::new("demo");
/// let v = b.sync_var();
/// let program = b
///     .doacross(1, 32, |body| {
///         body.compute("head", 500).await_var(v, -1).compute("cs", 60).advance(v)
///     })
///     .build()
///     .unwrap();
///
/// let cfg = SimConfig { clock: ppa_trace::ClockRate::GHZ_1, ..SimConfig::alliant_fx80() };
/// let actual = run_actual(&program, &cfg).unwrap();
/// let measured = run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
///
/// // The measurement is perturbed; the analysis recovers the truth.
/// assert!(measured.trace.total_time() > actual.trace.total_time());
/// let approx = event_based(&measured.trace, &cfg.overheads).unwrap();
/// assert_eq!(approx.total_time(), actual.trace.total_time());
/// ```
pub fn event_based(
    measured: &Trace,
    overheads: &OverheadSpec,
) -> Result<EventBasedResult, AnalysisError> {
    // A suppressed trace (repeat records from `ppa slice --suppress`)
    // analyzes via its logical expansion; the result is byte-identical
    // to analyzing the unsuppressed original because expansion is.
    if crate::expand::has_repeat_records(measured.events()) {
        let expanded = crate::expand::expand_trace(measured).map_err(|e| {
            AnalysisError::UnrecognizedStructure {
                detail: e.to_string(),
            }
        })?;
        return event_based(&expanded, overheads);
    }
    let mut analyzer = EventBasedAnalyzer::new(overheads);
    let mut events: Vec<Event> = Vec::with_capacity(measured.len());
    let mut awaits: Vec<(usize, AwaitOutcome)> = Vec::new();
    let mut barriers: Vec<(usize, BarrierOutcome)> = Vec::new();
    let mut episodes: Vec<(usize, EpisodeOutcome)> = Vec::new();
    {
        let mut dispatch = |o: StreamOutput| match o {
            StreamOutput::Event(e) => events.push(e),
            StreamOutput::Await { ordinal, outcome } => awaits.push((ordinal, outcome)),
            StreamOutput::Barrier { ordinal, outcome } => barriers.push((ordinal, outcome)),
            StreamOutput::Episode { ordinal, outcome } => episodes.push((ordinal, outcome)),
        };
        for e in measured.iter() {
            analyzer.push(*e)?;
            while let Some(o) = analyzer.next_output() {
                dispatch(o);
            }
        }
        for o in analyzer.finish()?.outputs {
            dispatch(o);
        }
    }
    // Events arrive already in final order; outcomes arrive in resolution
    // order and are keyed for the measured-trace order the batch analysis
    // reports them in.
    awaits.sort_by_key(|&(i, _)| i);
    barriers.sort_by_key(|&(i, _)| i);
    episodes.sort_by_key(|&(i, _)| i);
    Ok(EventBasedResult {
        trace: Trace::from_events(TraceKind::Approximated, events),
        awaits: awaits.into_iter().map(|(_, a)| a).collect(),
        barriers: barriers.into_iter().map(|(_, b)| b).collect(),
        episodes: episodes.into_iter().map(|(_, e)| e).collect(),
    })
}

/// The direct (batch) formulation of event-based analysis: build the full
/// dependency DAG, then resolve it with a worklist pass.
///
/// Kept as the executable specification of the analysis — the streaming
/// engine behind [`event_based`] and the sharded runner
/// ([`event_based_sharded`](crate::event_based_sharded)) are
/// cross-validated against it, and benchmarks use it as the baseline.
/// It materializes `O(trace length)` state.
pub fn event_based_reference(
    measured: &Trace,
    overheads: &OverheadSpec,
) -> Result<EventBasedResult, AnalysisError> {
    let index = pair_sync_events(measured)?;
    let events = measured.events();
    let n = events.len();
    if n == 0 {
        return Ok(EventBasedResult {
            trace: Trace::new(TraceKind::Approximated),
            awaits: Vec::new(),
            barriers: Vec::new(),
            episodes: Vec::new(),
        });
    }

    let Structure { basis, .. } = discover_structure(events);

    // awaitE -> (awaitB, advance) lookups.
    let mut await_of_end: std::collections::HashMap<usize, (usize, Option<usize>)> =
        Default::default();
    for pair in &index.awaits {
        await_of_end.insert(pair.end, (pair.begin, pair.advance));
    }
    // barrier exit -> episode (list of enters) lookup.
    let mut episode_of_exit: std::collections::HashMap<usize, usize> = Default::default();
    for (ep_idx, ep) in index.barriers.iter().enumerate() {
        for &x in &ep.exits {
            episode_of_exit.insert(x, ep_idx);
        }
    }
    // blocked event -> lock/sem/task episode pair lookup.
    let mut blocked_of_event: std::collections::HashMap<usize, usize> = Default::default();
    for (p_idx, p) in index.episodes.iter().enumerate() {
        blocked_of_event.insert(p.event, p_idx);
    }

    // --- Dependency edges ----------------------------------------------
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree: Vec<usize> = vec![0; n];
    let add_edge = |from: usize, to: usize, out: &mut Vec<Vec<usize>>, ind: &mut Vec<usize>| {
        out[from].push(to);
        ind[to] += 1;
    };
    for (i, bas) in basis.iter().enumerate() {
        match *bas {
            Basis::Origin => {}
            Basis::Event(b) => add_edge(b, i, &mut out_edges, &mut indegree),
        }
        if let Some(&(begin, advance)) = await_of_end.get(&i) {
            // The basis edge already covers `begin` when it is the direct
            // predecessor, but hand-built traces may interleave; add both
            // (duplicate edges only inflate indegree symmetrically).
            add_edge(begin, i, &mut out_edges, &mut indegree);
            if let Some(adv) = advance {
                add_edge(adv, i, &mut out_edges, &mut indegree);
            }
        }
        if let Some(&ep_idx) = episode_of_exit.get(&i) {
            for &enter in &index.barriers[ep_idx].enters {
                add_edge(enter, i, &mut out_edges, &mut indegree);
            }
        }
        if let Some(&p_idx) = blocked_of_event.get(&i) {
            if let Some(dep) = index.episodes[p_idx].dep {
                add_edge(dep, i, &mut out_edges, &mut indegree);
            }
        }
    }
    // Basis edges were added twice for awaitE events whose basis is their
    // own awaitB; recompute indegree cleanly instead of deduplicating:
    // (duplicates are fine for Kahn as long as decrements match, which
    // they do because out_edges holds the duplicates too.)

    // --- Worklist resolution --------------------------------------------
    let mut ta: Vec<Option<Time>> = vec![None; n];
    let mut ready: BinaryHeap<Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| Reverse(i))
        .collect();
    let mut resolved = 0usize;

    while let Some(Reverse(i)) = ready.pop() {
        let e = &events[i];
        let time = if let Some(&(begin, advance)) = await_of_end.get(&i) {
            // awaitE rule.
            let tb = ta[begin].expect("awaitB resolved before awaitE");
            match advance {
                Some(adv) => {
                    let tadv = ta[adv].expect("advance resolved before awaitE");
                    if tadv <= tb {
                        tb + overheads.s_nowait
                    } else {
                        tadv + overheads.s_wait
                    }
                }
                None => tb + overheads.s_nowait,
            }
        } else if let Some(&ep_idx) = episode_of_exit.get(&i) {
            // Barrier rule.
            let release = index.barriers[ep_idx]
                .enters
                .iter()
                .map(|&en| ta[en].expect("enters resolved before exits"))
                .max()
                .expect("episodes have enters");
            release + overheads.barrier_release
        } else if let Some(&p_idx) = blocked_of_event.get(&i) {
            // Episode blocked rule (the awaitE rule with the enabling
            // event in the advance's role): the chain value is the ready
            // time; a later-enabled resource resumes at `dep + s_wait`.
            let oh = overheads.instr_overhead(&e.kind);
            let ready = match basis[i] {
                Basis::Origin => e.time.saturating_sub_span(oh),
                Basis::Event(b) => {
                    let tb = ta[b].expect("basis resolved first");
                    tb + e.time.saturating_since(events[b].time).saturating_sub(oh)
                }
            };
            match index.episodes[p_idx].dep {
                Some(d) => {
                    let td = ta[d].expect("enabling event resolved before the blocked one");
                    if td <= ready {
                        ready
                    } else {
                        td + overheads.s_wait
                    }
                }
                None => ready,
            }
        } else {
            // Generic rule: ta = ta(basis) + Δtm − overhead.
            let oh = overheads.instr_overhead(&e.kind);
            match basis[i] {
                Basis::Origin => e.time.saturating_sub_span(oh),
                Basis::Event(b) => {
                    let tb = ta[b].expect("basis resolved first");
                    let delta = e.time.saturating_since(events[b].time);
                    tb + delta.saturating_sub(oh)
                }
            }
        };
        ta[i] = Some(time);
        resolved += 1;
        for &succ in &out_edges[i] {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                ready.push(Reverse(succ));
            }
        }
    }

    if resolved < n {
        return Err(AnalysisError::CyclicDependencies {
            unresolved: n - resolved,
        });
    }

    let ta: Vec<Time> = ta
        .into_iter()
        .map(|t| t.expect("all events resolved"))
        .collect();
    Ok(assemble_result(events, &ta, &index, &basis, overheads))
}

/// Convenience: the approximated total execution time only.
pub fn event_based_total(
    measured: &Trace,
    overheads: &OverheadSpec,
) -> Result<Span, AnalysisError> {
    Ok(event_based(measured, overheads)?.total_time())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::TraceBuilder;

    fn spec(
        stmt: u64,
        alpha: u64,
        beta: u64,
        awe: u64,
        s_nowait: u64,
        s_wait: u64,
    ) -> OverheadSpec {
        OverheadSpec {
            statement_event: Span::from_nanos(stmt),
            marker_event: Span::from_nanos(stmt),
            advance_instr: Span::from_nanos(alpha),
            await_begin_instr: Span::from_nanos(beta),
            await_end_instr: Span::from_nanos(awe),
            barrier_instr: Span::from_nanos(stmt),
            s_nowait: Span::from_nanos(s_nowait),
            s_wait: Span::from_nanos(s_wait),
            advance_op: Span::ZERO,
            barrier_release: Span::from_nanos(0),
        }
    }

    /// Figure 2 case (A): waiting occurred in the measurement (caused by
    /// instrumentation); the approximation removes it.
    #[test]
    fn figure2_case_a_wait_removed() {
        // Thread 0: stmt at 100 (cost 60 + oh 40), advance at 200
        //           (op at 160+40=200 incl α=40... tm = 200).
        // Thread 1: awaitB at 50 (cost 10 + β 40), waits for advance,
        //           awaitE at 210 (resume 200 + s_wait 10, no aE oh).
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .advance(0, 0)
            .on(1)
            .at(50)
            .await_begin(0, 0)
            .at(210)
            .await_end(0, 0)
            .build();
        let oh = spec(40, 40, 40, 0, 5, 10);
        let r = event_based(&t, &oh).unwrap();
        // Approximated: thread0 stmt at 60, advance at 60 + (200-100) - 40 = 120.
        // Thread1 awaitB at 50-40=10; ta(advance)=120 > 10 → wait;
        // awaitE = 120 + 10 = 130 (not 210-something: wait recomputed).
        let times: std::collections::HashMap<&'static str, u64> = r
            .trace
            .iter()
            .map(|e| {
                (
                    match e.kind {
                        EventKind::Statement { .. } => "stmt",
                        EventKind::Advance { .. } => "advance",
                        EventKind::AwaitBegin { .. } => "awaitB",
                        EventKind::AwaitEnd { .. } => "awaitE",
                        _ => "other",
                    },
                    e.time.as_nanos(),
                )
            })
            .collect();
        assert_eq!(times["stmt"], 60);
        assert_eq!(times["advance"], 120);
        assert_eq!(times["awaitB"], 10);
        assert_eq!(times["awaitE"], 130);
        assert_eq!(r.awaits.len(), 1);
        assert!(r.awaits[0].waited());
        assert_eq!(r.awaits[0].wait, Span::from_nanos(110));
    }

    /// Figure 2 case (B): no waiting in the measurement (instrumentation
    /// delayed the awaiting thread), but waiting appears in the
    /// approximation.
    #[test]
    fn figure2_case_b_wait_appears() {
        // Thread 0: advance measured at 100 (α=40, op done at 60).
        // Thread 1: three statements (oh 40 each) then awaitB at 150;
        //           tag already advanced → awaitE at 155 (s_nowait 5).
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .advance(0, 0)
            .on(1)
            .at(50)
            .stmt(0)
            .at(100)
            .stmt(1)
            .at(150)
            .await_begin(0, 0)
            .at(155)
            .await_end(0, 0)
            .build();
        let oh = spec(40, 40, 40, 0, 5, 10);
        let r = event_based(&t, &oh).unwrap();
        // Approx: advance at 60. Thread 1 stmts at 10, 20; awaitB at
        // 20 + (150-100) - 40 = 30. ta(advance)=60 > 30 → waiting appears:
        // awaitE = 60 + 10 = 70.
        assert!(r.awaits[0].waited());
        let awaite = r
            .trace
            .iter()
            .find(|e| matches!(e.kind, EventKind::AwaitEnd { .. }))
            .unwrap();
        assert_eq!(awaite.time.as_nanos(), 70);
    }

    #[test]
    fn no_wait_when_advance_precedes() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .advance(0, 0)
            .on(1)
            .at(100)
            .await_begin(0, 0)
            .at(105)
            .await_end(0, 0)
            .build();
        let oh = spec(0, 0, 0, 0, 5, 10);
        let r = event_based(&t, &oh).unwrap();
        assert!(!r.awaits[0].waited());
        let awaite = r
            .trace
            .iter()
            .find(|e| matches!(e.kind, EventKind::AwaitEnd { .. }))
            .unwrap();
        // awaitB at 100, + s_nowait 5.
        assert_eq!(awaite.time.as_nanos(), 105);
    }

    #[test]
    fn pre_advanced_tag_never_waits() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(50)
            .await_begin(0, -1)
            .at(55)
            .await_end(0, -1)
            .build();
        let r = event_based(&t, &spec(0, 0, 0, 0, 5, 10)).unwrap();
        assert!(!r.awaits[0].waited());
        assert_eq!(r.awaits[0].end.as_nanos(), 55);
    }

    #[test]
    fn zero_overhead_zero_sync_cost_is_identity_on_feasible_traces() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .at(20)
            .advance(0, 0)
            .at(30)
            .stmt(1)
            .on(1)
            .at(5)
            .stmt(2)
            .at(25)
            .await_begin(0, 0)
            .at(25)
            .await_end(0, 0)
            .build();
        let r = event_based(&t, &OverheadSpec::ZERO).unwrap();
        for (orig, approx) in t.iter().zip(r.trace.iter()) {
            assert_eq!(orig.time, approx.time, "event {orig} moved");
        }
    }

    #[test]
    fn barrier_exit_at_latest_enter() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .barrier_enter(0)
            .on(1)
            .at(30)
            .barrier_enter(0)
            .on(0)
            .at(30)
            .barrier_exit(0)
            .on(1)
            .at(30)
            .barrier_exit(0)
            .build();
        let mut oh = OverheadSpec::ZERO;
        oh.barrier_release = Span::from_nanos(7);
        let r = event_based(&t, &oh).unwrap();
        for e in r.trace.iter() {
            if matches!(e.kind, EventKind::BarrierExit { .. }) {
                assert_eq!(e.time.as_nanos(), 37);
            }
        }
        // P0 waited 20, P1 waited 0.
        let w0 = r
            .barriers
            .iter()
            .find(|b| b.proc == ProcessorId(0))
            .unwrap();
        let w1 = r
            .barriers
            .iter()
            .find(|b| b.proc == ProcessorId(1))
            .unwrap();
        assert_eq!(w0.wait, Span::from_nanos(20));
        assert_eq!(w1.wait, Span::ZERO);
    }

    #[test]
    fn multiple_barrier_episodes_resolve_independently() {
        let mut oh = OverheadSpec::ZERO;
        oh.barrier_release = Span::from_nanos(3);
        let t = TraceBuilder::measured()
            // Episode 1: release at 20.
            .on(0)
            .at(10)
            .barrier_enter(0)
            .on(1)
            .at(20)
            .barrier_enter(0)
            .on(0)
            .at(20)
            .barrier_exit(0)
            .on(1)
            .at(20)
            .barrier_exit(0)
            // Episode 2 of the same barrier id: release at 50.
            .on(0)
            .at(40)
            .barrier_enter(0)
            .on(1)
            .at(50)
            .barrier_enter(0)
            .on(0)
            .at(50)
            .barrier_exit(0)
            .on(1)
            .at(50)
            .barrier_exit(0)
            .build();
        let r = event_based(&t, &oh).unwrap();
        let exits: Vec<u64> = r
            .trace
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BarrierExit { .. }))
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(exits, vec![23, 23, 56, 56]);
        assert_eq!(r.barriers.len(), 4);
    }

    #[test]
    fn fork_basis_uses_the_latest_loop_begin() {
        // Two loops; P1's first event in loop 1 must anchor to loop 1's
        // begin, not loop 0's, so the serial gap between loops (which
        // includes P0's instrumentation) is not charged to P1.
        let mut oh = OverheadSpec::ZERO;
        oh.statement_event = Span::from_nanos(40);
        oh.marker_event = Span::ZERO;
        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .loop_begin(0)
            .on(1)
            .at(140)
            .stmt(0) // loop 0 work on P1: cost 100 + oh 40
            .on(0)
            .at(200)
            .loop_end(0)
            // Serial segment on P0 with instrumentation: 3 statements.
            .on(0)
            .at(340)
            .stmt(1)
            .at(480)
            .stmt(2)
            .at(620)
            .stmt(3)
            .on(0)
            .at(620)
            .loop_begin(1)
            .on(1)
            .at(760)
            .stmt(4) // loop 1 work on P1: cost 100 + oh 40
            .on(0)
            .at(800)
            .loop_end(1)
            .build();
        let r = event_based(&t, &oh).unwrap();
        // Approximated loop 1 begin: 620 - 3*40 (P0's serial overhead)
        // = 500. P1's stmt: 500 + (760-620) - 40 = 600.
        let p1_events: Vec<u64> = r
            .trace
            .iter()
            .filter(|e| e.proc == ProcessorId(1))
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(p1_events, vec![100, 600]);
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = event_based(&Trace::new(TraceKind::Measured), &OverheadSpec::ZERO).unwrap();
        assert!(r.trace.is_empty());
        assert!(r.awaits.is_empty());
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let t = TraceBuilder::measured().on(0).at(5).await_end(0, 0).build();
        assert!(matches!(
            event_based(&t, &OverheadSpec::ZERO),
            Err(AnalysisError::Trace(_))
        ));
    }

    /// Regression: overheads larger than the measured inter-event deltas
    /// used to clamp the §4.2.3 corrections silently. The clamps still
    /// happen (the approximation must stay locally non-decreasing) but
    /// are now counted, and streaming stays identical to the reference.
    #[test]
    fn oversized_overhead_clamps_are_counted_not_silent() {
        // Every inter-event delta is 100 ns; every overhead is 1000 ns.
        // Proc 0 exercises the origin rule, the fast path, and the
        // general chain rule (advance); proc 1 the await machinery.
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .stmt(1)
            .at(300)
            .advance(0, 0)
            .on(1)
            .at(150)
            .await_begin(0, 0)
            .at(400)
            .await_end(0, 0)
            .build();
        let oh = spec(1000, 1000, 1000, 1000, 5, 10);

        let mut analyzer = EventBasedAnalyzer::new(&oh);
        for e in t.iter() {
            analyzer.push(*e).unwrap();
        }
        let tail = analyzer.finish().unwrap();
        assert!(
            tail.stats.clamped >= 4,
            "expected every underflowing correction counted, got {}",
            tail.stats.clamped
        );

        // The clamps are semantics, not a bug: streaming, the wrapper,
        // and the batch reference all agree on the clamped values.
        let streamed = event_based(&t, &oh).unwrap();
        let reference = event_based_reference(&t, &oh).unwrap();
        assert_eq!(streamed, reference);
        // And the clamped chain really did hold at its basis.
        assert!(streamed
            .trace
            .iter()
            .all(|e| e.time <= Time::from_nanos(10)));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn clamp_counter_exports_through_obs() {
        use crate::streaming::AnalyzerProbes;
        use ppa_obs::Registry;

        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .stmt(1)
            .build();
        let oh = spec(1000, 0, 0, 0, 0, 0);
        let registry = Registry::new();
        let mut analyzer =
            EventBasedAnalyzer::with_probes(&oh, AnalyzerProbes::register(&registry));
        for e in t.iter() {
            analyzer.push(*e).unwrap();
        }
        let tail = analyzer.finish().unwrap();
        let exported = registry
            .snapshot()
            .entries
            .iter()
            .find_map(
                |m| match (m.name == "ppa_core_clamped_approx_total", &m.value) {
                    (true, ppa_obs::MetricValue::Counter(c)) => Some(*c),
                    _ => None,
                },
            )
            .expect("clamp counter registered");
        assert_eq!(exported, tail.stats.clamped as u64);
        assert!(exported >= 2, "both underflowing statements counted");
    }

    /// The blocked rule for locks: the acquire's ready time is its chain
    /// value, and the matching release plays the advance's role.
    #[test]
    fn lock_acquire_waits_on_the_release() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .lock_acquire(0)
            .at(150)
            .lock_release(0)
            .on(1)
            .at(50)
            .stmt(0)
            .at(100)
            .stmt(1)
            .at(160)
            .lock_acquire(0)
            .at(170)
            .lock_release(0)
            .build();
        let oh = spec(40, 0, 0, 0, 5, 10);
        let r = event_based(&t, &oh).unwrap();
        // P0's acquire is uncontended (no prior release): ready = end =
        // its origin value 100. P1's statements lose 40 ns of overhead
        // each, so its acquire is ready at 20 + (160 − 100) = 80 — but
        // the release only resolves at 150, so the episode waits:
        // end = 150 + s_wait = 160.
        assert_eq!(r.episodes.len(), 2);
        let (a, b) = (&r.episodes[0], &r.episodes[1]);
        assert_eq!(
            (a.family, a.object, a.proc),
            (EpisodeFamily::Lock, 0, ProcessorId(0))
        );
        assert!(!a.waited());
        assert_eq!((a.ready.as_nanos(), a.end.as_nanos()), (100, 100));
        assert_eq!((b.family, b.proc), (EpisodeFamily::Lock, ProcessorId(1)));
        assert_eq!((b.ready.as_nanos(), b.end.as_nanos()), (80, 160));
        assert_eq!(b.wait, Span::from_nanos(70));
        assert_eq!(r.episode_wait(ProcessorId(1)), Span::from_nanos(70));
        assert_eq!(r.episode_wait(ProcessorId(0)), Span::ZERO);
        // P1's release chains from the delayed acquire.
        let p1_rel = r
            .trace
            .iter()
            .find(|e| e.proc == ProcessorId(1) && matches!(e.kind, EventKind::LockRelease { .. }))
            .unwrap();
        assert_eq!(p1_rel.time.as_nanos(), 170);
    }

    /// The blocked rule for semaphores: each P consumes the earliest
    /// unconsumed V.
    #[test]
    fn sem_acquire_pairs_fifo_with_releases() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .sem_release(0)
            .at(140)
            .sem_release(0)
            .on(1)
            .at(50)
            .stmt(0)
            .at(120)
            .sem_acquire(0)
            .on(2)
            .at(150)
            .sem_acquire(0)
            .build();
        let oh = spec(40, 0, 0, 0, 5, 10);
        let r = event_based(&t, &oh).unwrap();
        // First P (P1): ready = 10 + (120 − 50) = 80, dep = first V at
        // 100 > 80 → end 110, wait 20. Second P (P2): origin ready 150,
        // dep = second V at 140 ≤ 150 → no wait.
        assert_eq!(r.episodes.len(), 2);
        let first = &r.episodes[0];
        assert_eq!(
            (first.family, first.proc),
            (EpisodeFamily::Sem, ProcessorId(1))
        );
        assert_eq!((first.ready.as_nanos(), first.end.as_nanos()), (80, 110));
        assert_eq!(first.wait, Span::from_nanos(20));
        let second = &r.episodes[1];
        assert_eq!(second.proc, ProcessorId(2));
        assert!(!second.waited());
        assert_eq!(second.end.as_nanos(), 150);
    }

    /// Fork/join: the child's begin chains from the spawn (not the child
    /// processor's own frontier), and the parent's join-return follows
    /// the blocked rule with the child's end as the enabling event.
    #[test]
    fn fork_join_episode_follows_the_blocked_rule() {
        let t = TraceBuilder::measured()
            .on(1)
            .at(5)
            .stmt(9) // stale frontier on the child processor
            .on(0)
            .at(10)
            .task_fork(7) // spawn
            .on(1)
            .at(20)
            .task_fork(7) // child begin
            .at(60)
            .stmt(0)
            .at(100)
            .task_join(7) // child end
            .on(0)
            .at(40)
            .stmt(1)
            .at(80)
            .stmt(2)
            .at(110)
            .task_join(7) // parent join-return
            .build();
        let oh = spec(40, 0, 0, 0, 5, 10);
        let r = event_based(&t, &oh).unwrap();
        // Child begin = ta(spawn) + (20 − 10) = 20; a frontier chain from
        // the stale statement (ta 0) would have given 15 instead.
        let begin = r
            .trace
            .iter()
            .find(|e| e.proc == ProcessorId(1) && matches!(e.kind, EventKind::TaskFork { .. }))
            .unwrap();
        assert_eq!(begin.time.as_nanos(), 20);
        // Child end: 20 + (60−20) − 40 = 20, + (100−60) = 60. Parent
        // ready: spawn 10 → stmts at 10, 10 → 10 + (110−80) = 40; the
        // child's end (60) is later, so the return waits 20 and lands at
        // 60 + s_wait = 70.
        assert_eq!(r.episodes.len(), 1);
        let ep = &r.episodes[0];
        assert_eq!(
            (ep.family, ep.object, ep.proc),
            (EpisodeFamily::Task, 7, ProcessorId(0))
        );
        assert_eq!((ep.ready.as_nanos(), ep.end.as_nanos()), (40, 70));
        assert_eq!(ep.wait, Span::from_nanos(20));
    }

    /// Streaming, reference, and sharded agree on a trace mixing every
    /// episode family with awaits and barriers.
    #[test]
    fn episode_families_match_reference_and_sharded() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .loop_begin(0)
            .at(20)
            .task_fork(3)
            .on(2)
            .at(30)
            .task_fork(3)
            .at(90)
            .task_join(3)
            .on(0)
            .at(50)
            .lock_acquire(1)
            .at(100)
            .lock_release(1)
            .at(110)
            .advance(0, 0)
            .on(1)
            .at(40)
            .await_begin(0, 0)
            .at(115)
            .await_end(0, 0)
            .at(120)
            .lock_acquire(1)
            .at(130)
            .lock_release(1)
            .at(140)
            .sem_release(2)
            .on(0)
            .at(150)
            .sem_acquire(2)
            .at(160)
            .task_join(3)
            .on(0)
            .at(200)
            .barrier_enter(0)
            .on(1)
            .at(210)
            .barrier_enter(0)
            .on(0)
            .at(220)
            .barrier_exit(0)
            .on(1)
            .at(230)
            .barrier_exit(0)
            .build();
        let oh = spec(7, 3, 4, 2, 5, 10);
        let streamed = event_based(&t, &oh).unwrap();
        let reference = event_based_reference(&t, &oh).unwrap();
        assert_eq!(streamed, reference);
        assert_eq!(streamed.episodes.len(), 4, "two locks, one sem, one task");
        for workers in [1, 2, 4] {
            let sharded = crate::sharded::event_based_sharded(&t, &oh, workers).unwrap();
            assert_eq!(sharded, reference, "workers = {workers}");
        }
    }

    /// With zero overhead and zero sync cost, episode events are fixed
    /// points too, and no episode waits.
    #[test]
    fn zero_overhead_episodes_are_identity() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .lock_acquire(0)
            .at(20)
            .lock_release(0)
            .at(30)
            .sem_release(0)
            .at(40)
            .task_fork(1)
            .on(1)
            .at(50)
            .task_fork(1)
            .at(60)
            .sem_acquire(0)
            .at(70)
            .lock_acquire(0)
            .at(80)
            .lock_release(0)
            .at(90)
            .task_join(1)
            .on(0)
            .at(100)
            .task_join(1)
            .build();
        let r = event_based(&t, &OverheadSpec::ZERO).unwrap();
        for (orig, approx) in t.iter().zip(r.trace.iter()) {
            assert_eq!(orig.time, approx.time, "event {orig} moved");
        }
        assert!(r.episodes.iter().all(|e| !e.waited()));
    }

    /// Episode protocol errors defer to `finish` and match the batch
    /// validator's choice, including the end-of-trace checks.
    #[test]
    fn episode_errors_match_batch_precedence() {
        let cases: Vec<Trace> = vec![
            // Acquire while held.
            TraceBuilder::measured()
                .on(0)
                .at(10)
                .lock_acquire(0)
                .on(1)
                .at(20)
                .lock_acquire(0)
                .build(),
            // Release by a non-holder.
            TraceBuilder::measured()
                .on(0)
                .at(10)
                .lock_release(0)
                .build(),
            // Sem P with no matching V.
            TraceBuilder::measured().on(0).at(10).sem_acquire(0).build(),
            // Join of an unknown task.
            TraceBuilder::measured().on(0).at(10).task_join(4).build(),
            // Lock held at the end.
            TraceBuilder::measured()
                .on(0)
                .at(10)
                .lock_acquire(0)
                .build(),
            // Task never joined.
            TraceBuilder::measured()
                .on(0)
                .at(10)
                .task_fork(2)
                .on(1)
                .at(20)
                .task_fork(2)
                .build(),
        ];
        for t in cases {
            let batch = event_based_reference(&t, &OverheadSpec::ZERO).unwrap_err();
            let mut analyzer = EventBasedAnalyzer::new(&OverheadSpec::ZERO);
            for e in t.iter() {
                analyzer.push(*e).unwrap();
            }
            let streamed = analyzer.finish().unwrap_err();
            assert_eq!(format!("{streamed}"), format!("{batch}"));
        }
    }

    /// A kill-and-resume across an open lock/sem/task frontier continues
    /// byte-identically.
    #[test]
    fn snapshot_restores_open_episode_state() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .task_fork(1)
            .at(20)
            .lock_acquire(0)
            .at(60)
            .lock_release(0)
            .at(70)
            .sem_release(2)
            .on(1)
            .at(80)
            .task_fork(1)
            .at(90)
            .sem_acquire(2)
            .at(100)
            .lock_acquire(0)
            .at(110)
            .lock_release(0)
            .at(120)
            .task_join(1)
            .on(0)
            .at(130)
            .task_join(1)
            .build();
        let oh = spec(7, 3, 4, 2, 5, 10);
        for cut in 1..t.len() {
            let mut a = EventBasedAnalyzer::new(&oh);
            for e in t.iter().take(cut) {
                a.push(*e).unwrap();
            }
            let snap = a.snapshot();
            let mut b = EventBasedAnalyzer::restore(&snap);
            for e in t.iter().skip(cut) {
                a.push(*e).unwrap();
                b.push(*e).unwrap();
            }
            let ta = a.finish().unwrap();
            let tb = b.finish().unwrap();
            assert_eq!(ta.outputs, tb.outputs, "cut at {cut}");
        }
    }

    #[test]
    fn per_proc_wait_accessors() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .advance(0, 0)
            .on(1)
            .at(10)
            .await_begin(0, 0)
            .at(110)
            .await_end(0, 0)
            .build();
        let r = event_based(&t, &spec(0, 0, 0, 0, 0, 10)).unwrap();
        assert_eq!(r.sync_wait(ProcessorId(1)), Span::from_nanos(90));
        assert_eq!(r.sync_wait(ProcessorId(0)), Span::ZERO);
        assert_eq!(r.barrier_wait(ProcessorId(1)), Span::ZERO);
    }
}
