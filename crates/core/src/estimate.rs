//! Overhead estimation from calibration trace pairs.
//!
//! Perturbation analysis needs "measures of in vitro trace instrumentation
//! costs" (§2). When a workload can be run both uninstrumented and
//! instrumented (calibration runs on a test machine — or any simulator
//! pair), the per-event-kind recording overheads can be *estimated* from
//! the traces themselves: align the two traces by (processor, kind)
//! occurrence, take same-thread deltas to the previous matched event, and
//! attribute the delta inflation to the instrumentation of the later
//! event.
//!
//! Waiting contaminates deltas (an await that waited in one run but not
//! the other inflates or deflates the difference arbitrarily), so the
//! estimator takes the **median** difference per kind — waits are
//! outliers in calibration workloads, overheads are the mode.

use ppa_trace::{Event, EventKind, OverheadSpec, ProcessorId, Span, Trace};
use std::collections::HashMap;

/// Per-kind estimation detail.
#[derive(Debug, Clone, PartialEq)]
pub struct KindEstimate {
    /// Event-kind mnemonic.
    pub kind: &'static str,
    /// Samples used.
    pub samples: usize,
    /// Median delta inflation (the overhead estimate).
    pub median: Span,
    /// Minimum observed inflation.
    pub min: Span,
    /// Maximum observed inflation (large values indicate waiting
    /// contamination).
    pub max: Span,
}

/// The estimator's output: a spec plus per-kind diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadEstimate {
    /// The estimated specification. Kinds with no samples keep the values
    /// from the `baseline` passed to [`estimate_overheads`]; the
    /// synchronization *processing* costs (`s_wait`, `s_nowait`,
    /// `advance_op`, `barrier_release`) are machine properties present in
    /// both runs and are always taken from the baseline.
    pub spec: OverheadSpec,
    /// Per-kind diagnostics, for kinds with at least one sample.
    pub kinds: Vec<KindEstimate>,
}

fn kind_slot(kind: &EventKind) -> &'static str {
    kind.mnemonic()
}

/// Estimates instrumentation overheads from an (actual, measured) trace
/// pair of the same execution.
///
/// `baseline` supplies the synchronization processing costs and any kind
/// the pair cannot estimate (e.g. kinds the plan never recorded).
pub fn estimate_overheads(
    actual: &Trace,
    measured: &Trace,
    baseline: &OverheadSpec,
) -> OverheadEstimate {
    // Occurrence-aligned actual times per (proc, kind).
    let mut actual_by_key: HashMap<(ProcessorId, EventKind), Vec<&Event>> = HashMap::new();
    for e in actual.iter() {
        actual_by_key.entry((e.proc, e.kind)).or_default().push(e);
    }
    let mut cursor: HashMap<(ProcessorId, EventKind), usize> = HashMap::new();

    // Walk the measured trace per thread, keeping the previous *matched*
    // event on each thread in both time bases.
    let mut prev: HashMap<ProcessorId, (ppa_trace::Time, ppa_trace::Time)> = HashMap::new();
    let mut diffs: HashMap<&'static str, Vec<i64>> = HashMap::new();

    for e in measured.iter() {
        let key = (e.proc, e.kind);
        let idx = cursor.entry(key).or_insert(0);
        let Some(actual_event) = actual_by_key.get(&key).and_then(|v| v.get(*idx)) else {
            continue;
        };
        *idx += 1;
        if let Some(&(prev_m, prev_a)) = prev.get(&e.proc) {
            let delta_m = e.time.signed_delta(prev_m);
            let delta_a = actual_event.time.signed_delta(prev_a);
            diffs
                .entry(kind_slot(&e.kind))
                .or_default()
                .push(delta_m - delta_a);
        }
        prev.insert(e.proc, (e.time, actual_event.time));
    }

    let mut kinds = Vec::new();
    let mut median_of = |slot: &'static str| -> Option<Span> {
        let samples = diffs.get_mut(slot)?;
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2].max(0) as u64;
        kinds.push(KindEstimate {
            kind: slot,
            samples: samples.len(),
            median: Span::from_nanos(median),
            min: Span::from_nanos((*samples.first().expect("nonempty")).max(0) as u64),
            max: Span::from_nanos((*samples.last().expect("nonempty")).max(0) as u64),
        });
        Some(Span::from_nanos(median))
    };

    let mut spec = *baseline;
    if let Some(v) = median_of("stmt") {
        spec.statement_event = v;
    }
    if let Some(v) = median_of("advance") {
        spec.advance_instr = v;
    }
    if let Some(v) = median_of("awaitB") {
        spec.await_begin_instr = v;
    }
    if let Some(v) = median_of("awaitE") {
        spec.await_end_instr = v;
    }
    if let Some(v) = median_of("barEnter") {
        spec.barrier_instr = v;
    }
    // Markers: pool the program/loop boundary kinds.
    for slot in ["progB", "progE", "loopB", "loopE", "iterB", "iterE"] {
        if let Some(v) = median_of(slot) {
            spec.marker_event = v;
            break;
        }
    }

    kinds.sort_by_key(|k| k.kind);
    OverheadEstimate { spec, kinds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_program::{InstrumentationPlan, ProgramBuilder};
    use ppa_sim::{run_actual, run_measured, SchedulePolicy, SimConfig};
    use ppa_trace::ClockRate;

    fn config() -> SimConfig {
        SimConfig {
            processors: 8,
            clock: ClockRate::GHZ_1,
            overheads: OverheadSpec::alliant_default(),
            schedule: SchedulePolicy::StaticCyclic,
            dispatch_cycles: 50,
            jitter: None,
        }
    }

    #[test]
    fn recovers_statement_overhead_from_sequential_pair() {
        let program = ProgramBuilder::new("cal")
            .sequential_loop(64, |b| b.compute("a", 500).compute("b", 700))
            .build()
            .unwrap();
        let cfg = config();
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_statements(), &cfg).unwrap();

        let est = estimate_overheads(&actual.trace, &measured.trace, &OverheadSpec::ZERO);
        assert_eq!(est.spec.statement_event, cfg.overheads.statement_event);
        let stmt = est.kinds.iter().find(|k| k.kind == "stmt").unwrap();
        assert!(stmt.samples > 100);
        assert_eq!(
            stmt.min, stmt.max,
            "sequential calibration has no waiting noise"
        );
    }

    #[test]
    fn recovers_sync_overheads_from_doacross_pair() {
        let mut b = ProgramBuilder::new("cal-sync");
        let v = b.sync_var();
        // Calibration workload: heads long enough that neither run blocks
        // (instrumentation inside the critical path would serialize the
        // measured run and contaminate the awaitE samples), critical
        // section fused (unobservable).
        let program = b
            .doacross(1, 64, |body| {
                body.compute("head", 40_000)
                    .await_var(v, -1)
                    .compute_unobservable("cs", 50)
                    .advance(v)
            })
            .build()
            .unwrap();
        let cfg = config();
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();

        let est = estimate_overheads(&actual.trace, &measured.trace, &OverheadSpec::ZERO);
        assert_eq!(est.spec.advance_instr, cfg.overheads.advance_instr);
        assert_eq!(est.spec.await_begin_instr, cfg.overheads.await_begin_instr);
        assert_eq!(est.spec.await_end_instr, cfg.overheads.await_end_instr);
        assert_eq!(est.spec.statement_event, cfg.overheads.statement_event);
    }

    #[test]
    fn estimated_spec_closes_the_loop() {
        // Analyze with the ESTIMATED spec and still reconstruct exactly.
        let mut b = ProgramBuilder::new("loop-closure");
        let v = b.sync_var();
        let program = b
            .doacross(1, 128, |body| {
                body.compute("head", 40_000)
                    .await_var(v, -1)
                    .compute_unobservable("cs", 80)
                    .advance(v)
            })
            .build()
            .unwrap();
        let cfg = config();
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_with_sync(), &cfg).unwrap();
        let est = estimate_overheads(&actual.trace, &measured.trace, &cfg.overheads);

        let approx = crate::event_based(&measured.trace, &est.spec).unwrap();
        assert_eq!(approx.total_time(), actual.trace.total_time());
    }

    #[test]
    fn baseline_supplies_missing_kinds() {
        // A pair with only statement events: sync overheads fall back.
        let program = ProgramBuilder::new("stmt-only")
            .serial([("x", 100u64)])
            .build()
            .unwrap();
        let cfg = config();
        let actual = run_actual(&program, &cfg).unwrap();
        let measured =
            run_measured(&program, &InstrumentationPlan::full_statements(), &cfg).unwrap();
        let baseline = OverheadSpec::alliant_default();
        let est = estimate_overheads(&actual.trace, &measured.trace, &baseline);
        assert_eq!(est.spec.advance_instr, baseline.advance_instr);
        assert_eq!(est.spec.s_wait, baseline.s_wait);
    }

    #[test]
    fn empty_traces_return_baseline() {
        let baseline = OverheadSpec::alliant_default();
        let est = estimate_overheads(
            &Trace::new(ppa_trace::TraceKind::Actual),
            &Trace::new(ppa_trace::TraceKind::Measured),
            &baseline,
        );
        assert_eq!(est.spec, baseline);
        assert!(est.kinds.is_empty());
    }
}
