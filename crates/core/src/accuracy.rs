//! Per-event approximation accuracy.
//!
//! The paper reports that "not only did the models perform well when
//! approximating total execution time, but the accuracy of individual
//! event timings were equally impressive" (§3). This module makes that
//! claim checkable: align an approximated trace with the actual trace
//! event by event and summarize the per-event timing errors.
//!
//! Alignment is by *occurrence*: the k-th event of a given
//! `(processor, kind)` in one trace corresponds to the k-th in the other.
//! Events present in only one trace (e.g. unobservable statements and
//! markers absent from a measured trace) are counted as unmatched, not
//! errors.

use ppa_trace::{Event, ProcessorId, Span, Trace};
use std::collections::HashMap;

/// Summary of per-event timing errors between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Events aligned between the traces.
    pub matched: usize,
    /// Events present in only one trace.
    pub unmatched: usize,
    /// Mean absolute timing error across matched events.
    pub mean_abs_error: Span,
    /// Maximum absolute timing error.
    pub max_abs_error: Span,
    /// Root-mean-square error.
    pub rms_error_ns: f64,
    /// Mean signed error in nanoseconds (positive = approximation late).
    pub mean_signed_error_ns: f64,
    /// Fraction of matched events within `tolerance` of their actual time,
    /// for the tolerance passed to [`compare_traces`].
    pub within_tolerance: f64,
}

impl AccuracyReport {
    /// True if every matched event is within the tolerance.
    pub fn is_exact_within_tolerance(&self) -> bool {
        self.matched > 0 && (self.within_tolerance - 1.0).abs() < f64::EPSILON
    }
}

/// Key for occurrence alignment.
fn alignment_key(e: &Event) -> (ProcessorId, ppa_trace::EventKind) {
    (e.proc, e.kind)
}

/// Aligns `approximated` with `actual` by (processor, kind) occurrence and
/// summarizes timing errors. `tolerance` feeds the `within_tolerance`
/// fraction.
pub fn compare_traces(actual: &Trace, approximated: &Trace, tolerance: Span) -> AccuracyReport {
    // Bucket actual events by key, in order.
    let mut actual_by_key: HashMap<_, Vec<&Event>> = HashMap::new();
    for e in actual.iter() {
        actual_by_key.entry(alignment_key(e)).or_default().push(e);
    }
    let mut cursor: HashMap<_, usize> = HashMap::new();

    let mut matched = 0usize;
    let mut unmatched = 0usize;
    let mut sum_abs = 0u128;
    let mut sum_signed = 0i128;
    let mut sum_sq = 0f64;
    let mut max_abs = 0u64;
    let mut within = 0usize;

    for e in approximated.iter() {
        let key = alignment_key(e);
        let idx = cursor.entry(key).or_insert(0);
        match actual_by_key.get(&key).and_then(|v| v.get(*idx)) {
            Some(actual_event) => {
                *idx += 1;
                matched += 1;
                let signed = e.time.signed_delta(actual_event.time);
                let abs = signed.unsigned_abs();
                sum_abs += abs as u128;
                sum_signed += signed as i128;
                sum_sq += (signed as f64) * (signed as f64);
                max_abs = max_abs.max(abs);
                if abs <= tolerance.as_nanos() {
                    within += 1;
                }
            }
            None => unmatched += 1,
        }
    }
    // Actual events never consumed are also unmatched.
    for (key, v) in &actual_by_key {
        let used = cursor.get(key).copied().unwrap_or(0);
        unmatched += v.len().saturating_sub(used);
    }

    AccuracyReport {
        matched,
        unmatched,
        mean_abs_error: if matched == 0 {
            Span::ZERO
        } else {
            Span::from_nanos((sum_abs / matched as u128) as u64)
        },
        max_abs_error: Span::from_nanos(max_abs),
        rms_error_ns: if matched == 0 {
            0.0
        } else {
            (sum_sq / matched as f64).sqrt()
        },
        mean_signed_error_ns: if matched == 0 {
            0.0
        } else {
            sum_signed as f64 / matched as f64
        },
        within_tolerance: if matched == 0 {
            0.0
        } else {
            within as f64 / matched as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{TraceBuilder, TraceKind};

    fn trace(times: &[(u64, u16)]) -> Trace {
        let mut b = TraceBuilder::new(TraceKind::Actual);
        for &(t, p) in times {
            b = b.on(p).at(t).stmt(0);
        }
        b.build()
    }

    #[test]
    fn identical_traces_are_exact() {
        let a = trace(&[(10, 0), (20, 0), (30, 1)]);
        let r = compare_traces(&a, &a, Span::ZERO);
        assert_eq!(r.matched, 3);
        assert_eq!(r.unmatched, 0);
        assert_eq!(r.mean_abs_error, Span::ZERO);
        assert_eq!(r.max_abs_error, Span::ZERO);
        assert!(r.is_exact_within_tolerance());
    }

    #[test]
    fn shifted_trace_reports_errors() {
        let actual = trace(&[(10, 0), (20, 0)]);
        let approx = trace(&[(13, 0), (28, 0)]);
        let r = compare_traces(&actual, &approx, Span::from_nanos(5));
        assert_eq!(r.matched, 2);
        assert_eq!(r.mean_abs_error, Span::from_nanos(5)); // (3 + 8) / 2
        assert_eq!(r.max_abs_error, Span::from_nanos(8));
        assert!((r.mean_signed_error_ns - 5.5).abs() < 1e-9);
        assert!((r.within_tolerance - 0.5).abs() < 1e-9);
        assert!(!r.is_exact_within_tolerance());
    }

    #[test]
    fn extra_events_count_as_unmatched() {
        let actual = trace(&[(10, 0), (20, 0), (30, 0)]);
        let approx = trace(&[(10, 0)]);
        let r = compare_traces(&actual, &approx, Span::ZERO);
        assert_eq!(r.matched, 1);
        assert_eq!(r.unmatched, 2);

        // And the other direction.
        let r2 = compare_traces(&approx, &actual, Span::ZERO);
        assert_eq!(r2.matched, 1);
        assert_eq!(r2.unmatched, 2);
    }

    #[test]
    fn empty_traces() {
        let e = trace(&[]);
        let r = compare_traces(&e, &e, Span::ZERO);
        assert_eq!(r.matched, 0);
        assert!(!r.is_exact_within_tolerance());
    }

    #[test]
    fn negative_errors_average_correctly() {
        // One event 10ns early, one 10ns late: mean signed error 0, mean
        // abs error 10.
        let actual = trace(&[(100, 0), (200, 0)]);
        let approx = trace(&[(90, 0), (210, 0)]);
        let r = compare_traces(&actual, &approx, Span::from_nanos(10));
        assert_eq!(r.mean_signed_error_ns, 0.0);
        assert_eq!(r.mean_abs_error, Span::from_nanos(10));
        assert!((r.rms_error_ns - 10.0).abs() < 1e-9);
        assert!(r.is_exact_within_tolerance());
    }
}
