//! Crash-safe checkpoint files for streaming analyses.
//!
//! A checkpoint captures everything a killed `--stream` analysis needs to
//! continue as if it had never stopped:
//!
//! - the [`AnalyzerSnapshot`] — the streaming analyzer's complete state;
//! - the *input cursor* — how many stream positions (delivered events
//!   plus leniently skipped ones) the reader had consumed, so a resumed
//!   run can seek past exactly that prefix;
//! - the decode-gap record so far ([`TraceGap`]s and the lost-event
//!   total), so losses before the kill stay accounted for;
//! - an optional [`ReorderSnapshot`] holding a reorder buffer's
//!   not-yet-released tail;
//! - the [`SinkState`] — how many bytes of report output were durably
//!   flushed, and the output-side counters, so the resumed run can
//!   truncate a torn tail and append from a clean edge.
//!
//! # File format
//!
//! ```text
//! offset  size  field
//! 0       8     magic+version  b"PPACKPT1"
//! 8       4     CRC-32 of the payload (little endian)
//! 12      8     payload length in bytes (little endian)
//! 20      n     payload: the [`Checkpoint`]'s serde tree, binary-encoded
//! ```
//!
//! The payload is a compact binary encoding of the checkpoint's serde
//! value tree — tag bytes, LEB128 varints, and an interned string table
//! so repeated field names cost one varint each. Checkpoints are written
//! on a cadence while the stream is hot, and the analyzer state they
//! carry grows with the trace's live synchronization history, so the
//! payload codec is sized for the write path: no text formatting, no
//! per-number allocation, roughly a third of the equivalent JSON.
//!
//! The CRC (same polynomial as the binary trace codec — [`crc32`])
//! detects torn or corrupted checkpoints; [`read_checkpoint`] refuses
//! them rather than resuming from garbage. [`write_checkpoint`] writes to
//! a sibling temporary file, syncs, then renames into place, so a crash
//! mid-checkpoint leaves the previous checkpoint intact: at every instant
//! the path holds *some* complete, valid checkpoint (or none).
//!
//! # Incremental checkpoints (version 2)
//!
//! Rewriting the whole snapshot every cadence costs time proportional to
//! the *trace so far* (the analyzer's advance table grows with the whole
//! synchronization history), which measured as ~31% of analysis time at
//! the default cadence. [`DeltaCheckpointWriter`] amortizes it with an
//! append-only record chain:
//!
//! ```text
//! offset  size  field
//! 0       8     magic+version  b"PPACKPT2"
//! 8       1     snapshot version (see [`SNAPSHOT_VERSION`])
//! --- then records, back to back ---
//! +0      1     kind: 0 = full snapshot, 1 = delta
//! +1      4     CRC-32 chained over (previous record's CRC ‖ payload)
//! +5      8     payload length in bytes (little endian)
//! +13     n     payload
//! ```
//!
//! The first record is always a full [`Checkpoint`] (written atomically
//! via temp-file + rename, resetting the chain); subsequent
//! [`CheckpointDelta`] records are appended and fsynced in place. Delta
//! payloads share one persistent intern table ([`value_codec`] append
//! mode), so a delta re-sends no string the chain has already carried.
//! The CRC chain (the previous record's CRC is folded into the next
//! record's CRC — [`crc32_chain`]) makes record order and identity
//! tamper-evident: a torn or corrupt tail is detected and
//! [`read_checkpoint`] falls back to the longest valid record prefix,
//! which always includes the full snapshot. Every
//! [`DEFAULT_COMPACT_EVERY`] deltas the writer compacts the file back to
//! a single fresh full record.

use crate::streaming::{AnalyzerDelta, AnalyzerSnapshot, EventBasedAnalyzer};
use ppa_trace::{crc32, crc32_chain, ReorderSnapshot, Time, TraceGap};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every version-1 (single full snapshot)
/// checkpoint file; the trailing digit is the format version.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PPACKPT1";

/// Magic bytes opening a version-2 (incremental) checkpoint file: one
/// full-snapshot record followed by CRC-chained delta records.
pub const CHECKPOINT_MAGIC_V2: &[u8; 8] = b"PPACKPT2";

/// The snapshot-format version byte following the `PPACKPT2` magic.
///
/// The container layout (record chain, CRCs) is versioned by the magic;
/// this byte versions the *analyzer state schema* inside the payloads.
/// Version 2 added lock/semaphore/fork-join episode state. A reader
/// refuses newer versions with the typed
/// [`CheckpointError::FutureVersion`] — resuming through a schema it
/// cannot represent would silently drop analysis state — and refuses
/// older ones (including pre-versioned chains, whose first byte is the
/// `0` full-record kind) as stale.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Default number of delta records appended before
/// [`DeltaCheckpointWriter`] compacts the file back to one full
/// snapshot. Bounds both file growth and resume replay cost.
pub const DEFAULT_COMPACT_EVERY: usize = 16;

/// Resumable state of an interrupted streaming analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The streaming analyzer's complete serialized state.
    pub analyzer: AnalyzerSnapshot,
    /// Stream positions the reader had consumed when the snapshot was
    /// taken: events delivered to the analyzer *plus* events lost to
    /// lenient decode gaps. A resumed run seeks the reader past exactly
    /// this many positions (`set_skip_events`), which in the binary
    /// format skips whole blocks by their frame summaries without
    /// decoding them.
    pub positions_seen: u64,
    /// Decode gaps recorded before the checkpoint.
    pub gaps: Vec<TraceGap>,
    /// Events lost to those gaps.
    pub events_lost: u64,
    /// The reorder buffer's held-back tail, when one was in use.
    pub reorder: Option<ReorderSnapshot>,
    /// Output-side accounting at the moment of the snapshot.
    pub sink: SinkState,
}

/// Output accounting stored in a [`Checkpoint`].
///
/// `bytes_flushed` is the durable frontier: the writer was flushed
/// immediately before the snapshot, so the first `bytes_flushed` bytes of
/// the report file correspond exactly to the analyzer state in the
/// checkpoint. Anything past that offset was written after the
/// checkpoint (and will be reproduced by the resumed run), so resume
/// truncates the file there and appends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkState {
    /// Bytes of report output durably flushed before the snapshot.
    pub bytes_flushed: u64,
    /// Approximated events written so far.
    pub events: u64,
    /// Await outcomes counted so far.
    pub awaits: u64,
    /// Barrier passages counted so far.
    pub barriers: u64,
    /// Lock/semaphore/task episode completions counted so far.
    pub episodes: u64,
    /// Highest approximated event time seen so far.
    pub last_time: Time,
}

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file is not a valid checkpoint: wrong magic or version, bad
    /// CRC, truncated payload, or malformed JSON.
    Corrupt(String),
    /// The checkpoint was written by a newer ppa whose snapshot schema
    /// this reader does not understand. The file is intact — resuming
    /// from it needs the release that wrote it, not a restart.
    FutureVersion {
        /// The snapshot version byte found in the file.
        found: u8,
        /// The newest version this reader supports.
        supported: u8,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::FutureVersion { found, supported } => write!(
                f,
                "checkpoint snapshot version {found} is newer than the supported \
                 version {supported}: resume with the ppa release that wrote it"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Atomically replaces the checkpoint at `path`.
///
/// The bytes are written to a sibling `<name>.tmp` file, synced to disk,
/// and renamed over `path` — so a crash at any point leaves either the
/// old checkpoint or the new one, never a torn hybrid.
pub fn write_checkpoint(path: &Path, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
    let _span = ppa_obs::span_enter(ppa_obs::Stage::CheckpointWrite);
    let payload = value_codec::encode(&checkpoint.serialize());
    let mut buf = Vec::with_capacity(20 + payload.len());
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&payload);

    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Corrupt("checkpoint path has no file name".into()))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates the checkpoint at `path` — either format.
///
/// Version-1 files fail with [`CheckpointError::Corrupt`] on a wrong
/// magic/version, a CRC mismatch, a short file, or an undecodable
/// payload — a resumed analysis must start from a provably intact state
/// or not at all. Version-2 (incremental) files tolerate a torn or
/// corrupt *tail*: the state resumes from the longest valid record
/// prefix, which at minimum is the atomically-written full snapshot. An
/// invalid full record still fails.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() >= 8 && &bytes[..8] == CHECKPOINT_MAGIC_V2 {
        return scan_records(check_snapshot_version(&bytes)?).map(|scan| scan.checkpoint);
    }
    read_checkpoint_v1(&bytes)
}

fn read_checkpoint_v1(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if bytes.len() < 20 {
        return Err(CheckpointError::Corrupt(format!(
            "file is {} bytes, shorter than the 20-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::Corrupt(
            "bad magic (not a ppa checkpoint, or an unsupported version)".into(),
        ));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[20..];
    if payload.len() != len {
        return Err(CheckpointError::Corrupt(format!(
            "payload is {} bytes, header promised {len}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(CheckpointError::Corrupt("payload CRC mismatch".into()));
    }
    let value = value_codec::decode(payload)
        .map_err(|e| CheckpointError::Corrupt(format!("payload encoding: {e}")))?;
    Checkpoint::deserialize(&value)
        .map_err(|e| CheckpointError::Corrupt(format!("payload schema: {e}")))
}

// --- Incremental (version 2) checkpoints --------------------------------

/// Record kind byte: a full [`Checkpoint`] payload.
const REC_FULL: u8 = 0;
/// Record kind byte: a [`CheckpointDelta`] payload.
const REC_DELTA: u8 = 1;
/// Bytes in a record header: kind + CRC + payload length.
const REC_HEADER: usize = 1 + 4 + 8;

/// The state advanced by one incremental checkpoint record: the
/// analyzer's [`AnalyzerDelta`] plus fresh values of every cursor the
/// full [`Checkpoint`] carries. Gaps are carried as the records *added*
/// since the previous record — the rest of the fields are small scalars
/// replaced wholesale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointDelta {
    /// Incremental analyzer image.
    pub analyzer: AnalyzerDelta,
    /// Replaces [`Checkpoint::positions_seen`].
    pub positions_seen: u64,
    /// Appended to [`Checkpoint::gaps`].
    pub gaps_added: Vec<TraceGap>,
    /// Replaces [`Checkpoint::events_lost`].
    pub events_lost: u64,
    /// Replaces [`Checkpoint::reorder`].
    pub reorder: Option<ReorderSnapshot>,
    /// Replaces [`Checkpoint::sink`].
    pub sink: SinkState,
}

/// Everything a cadence checkpoint needs besides the analyzer itself.
/// `gaps` is the *complete* gap list so far; the writer tracks how many
/// it has already persisted and sends only the suffix in delta records.
#[derive(Debug)]
pub struct CheckpointParts<'a> {
    /// Stream positions consumed (delivered + leniently lost).
    pub positions_seen: u64,
    /// All decode gaps recorded so far, in stream order.
    pub gaps: &'a [TraceGap],
    /// Events lost to those gaps.
    pub events_lost: u64,
    /// The reorder buffer's held-back tail, when one is in use.
    pub reorder: Option<ReorderSnapshot>,
    /// Output-side accounting at the moment of the snapshot.
    pub sink: SinkState,
}

/// Writes a `PPACKPT2` incremental checkpoint chain (see the module
/// docs): a full snapshot first and on compaction, cheap CRC-chained
/// delta records in between. One writer instance serves one analysis
/// stream; its intern table, CRC chain, and gap cursor persist across
/// [`checkpoint`](Self::checkpoint) calls.
#[derive(Debug)]
pub struct DeltaCheckpointWriter {
    path: PathBuf,
    compact_every: usize,
    deltas_since_full: usize,
    has_base: bool,
    prev_crc: u32,
    intern: value_codec::InternTable,
    gaps_written: usize,
}

impl DeltaCheckpointWriter {
    /// A writer targeting `path`, compacting after `compact_every`
    /// consecutive delta records (0 means full snapshots only — the
    /// version-2 container with version-1 cadence behavior).
    pub fn new(path: impl Into<PathBuf>, compact_every: usize) -> Self {
        DeltaCheckpointWriter {
            path: path.into(),
            compact_every,
            deltas_since_full: 0,
            has_base: false,
            prev_crc: 0,
            intern: value_codec::InternTable::default(),
            gaps_written: 0,
        }
    }

    /// The checkpoint file this writer maintains.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Takes one cadence checkpoint: a full atomic snapshot when the
    /// chain needs (re)anchoring, otherwise an appended delta record.
    /// On success the analyzer's dirty-advance set is cleared; on
    /// failure it is left intact, so the next attempt loses nothing.
    pub fn checkpoint(
        &mut self,
        analyzer: &mut EventBasedAnalyzer,
        parts: CheckpointParts<'_>,
    ) -> Result<(), CheckpointError> {
        let want_full = !self.has_base
            || (self.compact_every > 0 && self.deltas_since_full >= self.compact_every);
        if want_full {
            self.write_full(analyzer, &parts)?;
        } else {
            self.write_delta(analyzer, &parts)?;
        }
        analyzer.clear_advance_dirty();
        Ok(())
    }

    /// Atomically replaces the file with one full-snapshot record,
    /// resetting the CRC chain and the intern table.
    fn write_full(
        &mut self,
        analyzer: &EventBasedAnalyzer,
        parts: &CheckpointParts<'_>,
    ) -> Result<(), CheckpointError> {
        let _span = ppa_obs::span_enter(ppa_obs::Stage::CheckpointWrite);
        let cp = Checkpoint {
            analyzer: analyzer.snapshot(),
            positions_seen: parts.positions_seen,
            gaps: parts.gaps.to_vec(),
            events_lost: parts.events_lost,
            reorder: parts.reorder.clone(),
            sink: parts.sink,
        };
        let mut intern = value_codec::InternTable::default();
        let payload = value_codec::encode_append(&cp.serialize(), &mut intern);
        let crc = crc32_chain(0, &payload);
        let mut buf = Vec::with_capacity(9 + REC_HEADER + payload.len());
        buf.extend_from_slice(CHECKPOINT_MAGIC_V2);
        buf.push(SNAPSHOT_VERSION);
        push_record_header(&mut buf, REC_FULL, crc, payload.len());
        buf.extend_from_slice(&payload);

        let file_name = self
            .path
            .file_name()
            .ok_or_else(|| CheckpointError::Corrupt("checkpoint path has no file name".into()))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &self.path)?;

        self.has_base = true;
        self.deltas_since_full = 0;
        self.prev_crc = crc;
        self.intern = intern;
        self.gaps_written = parts.gaps.len();
        Ok(())
    }

    /// Appends one delta record to the existing chain.
    fn write_delta(
        &mut self,
        analyzer: &EventBasedAnalyzer,
        parts: &CheckpointParts<'_>,
    ) -> Result<(), CheckpointError> {
        let _span = ppa_obs::span_enter(ppa_obs::Stage::DeltaWrite);
        let gaps_added = parts.gaps.get(self.gaps_written..).unwrap_or_default();
        let delta = CheckpointDelta {
            analyzer: analyzer.delta_snapshot(),
            positions_seen: parts.positions_seen,
            gaps_added: gaps_added.to_vec(),
            events_lost: parts.events_lost,
            reorder: parts.reorder.clone(),
            sink: parts.sink,
        };
        // Encode against a copy of the intern table: a failed append
        // must not desynchronize the writer from the bytes on disk.
        let mut intern = self.intern.clone();
        let payload = value_codec::encode_append(&delta.serialize(), &mut intern);
        let crc = crc32_chain(self.prev_crc, &payload);
        let mut buf = Vec::with_capacity(REC_HEADER + payload.len());
        push_record_header(&mut buf, REC_DELTA, crc, payload.len());
        buf.extend_from_slice(&payload);

        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        f.write_all(&buf)?;
        f.sync_all()?;

        self.deltas_since_full += 1;
        self.prev_crc = crc;
        self.intern = intern;
        self.gaps_written = parts.gaps.len();
        Ok(())
    }
}

/// Validates the snapshot version byte of a `PPACKPT2` file (the magic
/// already matched) and returns the record-chain bytes after it.
fn check_snapshot_version(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    match bytes.get(8).copied() {
        None => Err(CheckpointError::Corrupt(
            "file ends after the magic: no snapshot version byte".into(),
        )),
        Some(v) if v > SNAPSHOT_VERSION => Err(CheckpointError::FutureVersion {
            found: v,
            supported: SNAPSHOT_VERSION,
        }),
        Some(v) if v < SNAPSHOT_VERSION => Err(CheckpointError::Corrupt(format!(
            "snapshot version {v} predates the episode-aware analyzer state: \
             restart the stream to write a fresh checkpoint"
        ))),
        Some(_) => Ok(&bytes[9..]),
    }
}

fn push_record_header(buf: &mut Vec<u8>, kind: u8, crc: u32, len: usize) {
    buf.push(kind);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(&(len as u64).to_le_bytes());
}

/// The result of walking a version-2 checkpoint's record chain.
#[derive(Debug)]
pub struct CheckpointScan {
    /// The resumable state: the full snapshot with every valid delta
    /// applied in order.
    pub checkpoint: Checkpoint,
    /// Delta records applied on top of the full snapshot.
    pub delta_records: usize,
    /// Why the walk stopped before the end of the file, if it did — a
    /// torn append or tail corruption. `read_checkpoint` tolerates this
    /// (falling back to the valid prefix); `ppa check` reports it.
    pub torn_tail: Option<String>,
}

/// Walks and validates a version-2 (`PPACKPT2`) checkpoint at `path`,
/// reporting how much of the chain was intact. Fails if the file is not
/// a version-2 checkpoint or its full-snapshot record is invalid.
pub fn scan_checkpoint(path: &Path) -> Result<CheckpointScan, CheckpointError> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() < 8 || &bytes[..8] != CHECKPOINT_MAGIC_V2 {
        return Err(CheckpointError::Corrupt(
            "bad magic (not a version-2 ppa checkpoint)".into(),
        ));
    }
    scan_records(check_snapshot_version(&bytes)?)
}

/// One parsed record: kind, payload, and the CRC that closed it.
fn next_record(bytes: &[u8], pos: usize, prev_crc: u32) -> Result<(u8, &[u8], u32), String> {
    let rest = &bytes[pos..];
    if rest.len() < REC_HEADER {
        return Err(format!(
            "{} trailing byte(s) at offset {pos}: shorter than a record header",
            rest.len()
        ));
    }
    let kind = rest[0];
    if kind != REC_FULL && kind != REC_DELTA {
        return Err(format!("unknown record kind {kind} at offset {pos}"));
    }
    let crc = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(rest[5..13].try_into().expect("8 bytes"));
    let payload = rest[REC_HEADER..].get(..len as usize).ok_or_else(|| {
        format!("record at offset {pos} promises {len} payload bytes, fewer remain")
    })?;
    if crc32_chain(prev_crc, payload) != crc {
        return Err(format!("record at offset {pos} fails its chained CRC"));
    }
    Ok((kind, payload, crc))
}

/// Walks the record chain in `bytes` (magic already stripped).
fn scan_records(bytes: &[u8]) -> Result<CheckpointScan, CheckpointError> {
    // Record 0 must be a valid full snapshot — it was written
    // atomically, so anything wrong with it is corruption, not a torn
    // append.
    let (kind, payload, mut prev_crc) =
        next_record(bytes, 0, 0).map_err(CheckpointError::Corrupt)?;
    if kind != REC_FULL {
        return Err(CheckpointError::Corrupt(
            "first record is not a full snapshot".into(),
        ));
    }
    let mut intern = value_codec::InternTable::default();
    let value = value_codec::decode_append(payload, &mut intern)
        .map_err(|e| CheckpointError::Corrupt(format!("full-snapshot payload encoding: {e}")))?;
    let mut checkpoint = Checkpoint::deserialize(&value)
        .map_err(|e| CheckpointError::Corrupt(format!("full-snapshot payload schema: {e}")))?;

    let mut pos = REC_HEADER + payload.len();
    let mut delta_records = 0usize;
    let mut torn_tail = None;
    while pos < bytes.len() {
        let step = next_record(bytes, pos, prev_crc).and_then(|(kind, payload, crc)| {
            if kind != REC_DELTA {
                return Err(format!(
                    "record at offset {pos}: full snapshot after the first record"
                ));
            }
            let value = value_codec::decode_append(payload, &mut intern)
                .map_err(|e| format!("delta at offset {pos}: payload encoding: {e}"))?;
            let delta = CheckpointDelta::deserialize(&value)
                .map_err(|e| format!("delta at offset {pos}: payload schema: {e}"))?;
            checkpoint
                .analyzer
                .apply_delta(&delta.analyzer)
                .map_err(|e| format!("delta at offset {pos}: {e}"))?;
            checkpoint.positions_seen = delta.positions_seen;
            checkpoint.gaps.extend(delta.gaps_added);
            checkpoint.events_lost = delta.events_lost;
            checkpoint.reorder = delta.reorder;
            checkpoint.sink = delta.sink;
            Ok((payload.len(), crc))
        });
        match step {
            Ok((payload_len, crc)) => {
                prev_crc = crc;
                pos += REC_HEADER + payload_len;
                delta_records += 1;
            }
            Err(reason) => {
                torn_tail = Some(reason);
                break;
            }
        }
    }
    Ok(CheckpointScan {
        checkpoint,
        delta_records,
        torn_tail,
    })
}

/// Compact binary encoding of a serde value tree.
///
/// Layout: an interned string table (`varint count`, then each string as
/// `varint len` + UTF-8 bytes), followed by the root value. A value is a
/// tag byte plus payload:
///
/// ```text
/// 0 null        1 false            2 true
/// 3 varint n    (non-negative integer)
/// 4 varint m    (negative integer -1 - m)
/// 5 8 bytes     (f64, little endian)
/// 6 varint id   (string, by table index)
/// 7 varint len, len values             (array)
/// 8 varint len, len (varint id, value) (object; keys by table index)
/// ```
///
/// Varints are LEB128. Interning makes the 65k-plus repetitions of field
/// names in a large analyzer snapshot cost two bytes each instead of the
/// quoted name, and the decoder materializes each name once.
mod value_codec {
    use serde::{Number, Value};
    use std::collections::HashMap;

    const T_NULL: u8 = 0;
    const T_FALSE: u8 = 1;
    const T_TRUE: u8 = 2;
    const T_POS: u8 = 3;
    const T_NEG: u8 = 4;
    const T_FLOAT: u8 = 5;
    const T_STR: u8 = 6;
    const T_ARR: u8 = 7;
    const T_OBJ: u8 = 8;

    fn put_varint(mut n: u64, out: &mut Vec<u8>) {
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// A string table that persists across [`encode_append`] /
    /// [`decode_append`] calls, so a chain of incremental records pays
    /// for each distinct string once — the full-snapshot codec re-sends
    /// the entire table with every checkpoint, which is pure churn when
    /// consecutive snapshots share almost all their strings.
    #[derive(Debug, Clone, Default)]
    pub struct InternTable {
        strings: Vec<String>,
        index: HashMap<String, u64>,
    }

    impl InternTable {
        fn intern(&mut self, s: &str) -> u64 {
            if let Some(&id) = self.index.get(s) {
                return id;
            }
            let id = self.strings.len() as u64;
            self.strings.push(s.to_string());
            self.index.insert(s.to_string(), id);
            id
        }

        fn push(&mut self, s: String) {
            let id = self.strings.len() as u64;
            self.index.insert(s.clone(), id);
            self.strings.push(s);
        }
    }

    fn put_value_interned(value: &Value, out: &mut Vec<u8>, table: &mut InternTable) {
        match value {
            Value::Null => out.push(T_NULL),
            Value::Bool(false) => out.push(T_FALSE),
            Value::Bool(true) => out.push(T_TRUE),
            Value::Number(Number::PosInt(n)) => {
                out.push(T_POS);
                put_varint(*n, out);
            }
            Value::Number(Number::NegInt(n)) => {
                out.push(T_NEG);
                put_varint(!(*n) as u64, out);
            }
            Value::Number(Number::Float(f)) => {
                out.push(T_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::String(s) => {
                out.push(T_STR);
                put_varint(table.intern(s), out);
            }
            Value::Array(items) => {
                out.push(T_ARR);
                put_varint(items.len() as u64, out);
                for item in items {
                    put_value_interned(item, out, table);
                }
            }
            Value::Object(pairs) => {
                out.push(T_OBJ);
                put_varint(pairs.len() as u64, out);
                for (key, item) in pairs {
                    put_varint(table.intern(key), out);
                    put_value_interned(item, out, table);
                }
            }
        }
    }

    /// Encodes a value tree against a persistent string table: the
    /// output's table section carries only the strings *new* to `table`
    /// (which is extended in place), and every string reference is a
    /// global table index. Starting from an empty table this is
    /// byte-identical to [`encode`]; [`decode_append`] with the same
    /// table state inverts it.
    pub fn encode_append(root: &Value, table: &mut InternTable) -> Vec<u8> {
        let base = table.strings.len();
        let mut body = Vec::new();
        put_value_interned(root, &mut body, table);
        let new = &table.strings[base..];
        let mut out = Vec::with_capacity(body.len() + 16 * new.len() + 8);
        put_varint(new.len() as u64, &mut out);
        for s in new {
            put_varint(s.len() as u64, &mut out);
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&body);
        out
    }

    /// Interns `s`, returning its table index.
    fn intern<'a>(
        s: &'a str,
        strings: &mut Vec<&'a str>,
        index: &mut HashMap<&'a str, u64>,
    ) -> u64 {
        if let Some(&id) = index.get(s) {
            return id;
        }
        let id = strings.len() as u64;
        strings.push(s);
        index.insert(s, id);
        id
    }

    fn put_value<'a>(
        value: &'a Value,
        out: &mut Vec<u8>,
        strings: &mut Vec<&'a str>,
        index: &mut HashMap<&'a str, u64>,
    ) {
        match value {
            Value::Null => out.push(T_NULL),
            Value::Bool(false) => out.push(T_FALSE),
            Value::Bool(true) => out.push(T_TRUE),
            Value::Number(Number::PosInt(n)) => {
                out.push(T_POS);
                put_varint(*n, out);
            }
            Value::Number(Number::NegInt(n)) => {
                // -1 - m inverts exactly, including i64::MIN.
                out.push(T_NEG);
                put_varint(!(*n) as u64, out);
            }
            Value::Number(Number::Float(f)) => {
                out.push(T_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::String(s) => {
                out.push(T_STR);
                put_varint(intern(s, strings, index), out);
            }
            Value::Array(items) => {
                out.push(T_ARR);
                put_varint(items.len() as u64, out);
                for item in items {
                    put_value(item, out, strings, index);
                }
            }
            Value::Object(pairs) => {
                out.push(T_OBJ);
                put_varint(pairs.len() as u64, out);
                for (key, item) in pairs {
                    put_varint(intern(key, strings, index), out);
                    put_value(item, out, strings, index);
                }
            }
        }
    }

    /// Encodes a value tree into a self-contained byte string.
    pub fn encode(root: &Value) -> Vec<u8> {
        let mut strings: Vec<&str> = Vec::new();
        let mut index: HashMap<&str, u64> = HashMap::new();
        let mut body = Vec::new();
        put_value(root, &mut body, &mut strings, &mut index);
        let mut out = Vec::with_capacity(body.len() + 16 * strings.len() + 8);
        put_varint(strings.len() as u64, &mut out);
        for s in &strings {
            put_varint(s.len() as u64, &mut out);
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&body);
        out
    }

    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        fn byte(&mut self) -> Result<u8, String> {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| format!("unexpected end at byte {}", self.pos))?;
            self.pos += 1;
            Ok(b)
        }

        fn varint(&mut self) -> Result<u64, String> {
            let mut n = 0u64;
            let mut shift = 0u32;
            loop {
                let b = self.byte()?;
                if shift >= 64 {
                    return Err("varint overflows u64".into());
                }
                n |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    return Ok(n);
                }
                shift += 7;
            }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.bytes.len())
                .ok_or_else(|| format!("unexpected end at byte {}", self.pos))?;
            let slice = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        fn value(&mut self, strings: &[String]) -> Result<Value, String> {
            let lookup = |id: u64| -> Result<String, String> {
                strings
                    .get(id as usize)
                    .cloned()
                    .ok_or_else(|| format!("string id {id} out of table bounds"))
            };
            Ok(match self.byte()? {
                T_NULL => Value::Null,
                T_FALSE => Value::Bool(false),
                T_TRUE => Value::Bool(true),
                T_POS => Value::Number(Number::PosInt(self.varint()?)),
                T_NEG => Value::Number(Number::NegInt(!(self.varint()?) as i64)),
                T_FLOAT => {
                    let raw = self.take(8)?;
                    Value::Number(Number::Float(f64::from_le_bytes(
                        raw.try_into().expect("8 bytes"),
                    )))
                }
                T_STR => Value::String(lookup(self.varint()?)?),
                T_ARR => {
                    let len = self.varint()? as usize;
                    // Guard allocation against lying lengths: the items
                    // still have to fit in the remaining bytes (1+ each).
                    if len > self.bytes.len() - self.pos {
                        return Err(format!("array length {len} exceeds payload"));
                    }
                    let mut items = Vec::with_capacity(len);
                    for _ in 0..len {
                        items.push(self.value(strings)?);
                    }
                    Value::Array(items)
                }
                T_OBJ => {
                    let len = self.varint()? as usize;
                    if len > self.bytes.len() - self.pos {
                        return Err(format!("object length {len} exceeds payload"));
                    }
                    let mut pairs = Vec::with_capacity(len);
                    for _ in 0..len {
                        let key = lookup(self.varint()?)?;
                        pairs.push((key, self.value(strings)?));
                    }
                    Value::Object(pairs)
                }
                tag => return Err(format!("unknown value tag {tag}")),
            })
        }
    }

    /// Decodes a byte string produced by [`encode`].
    pub fn decode(bytes: &[u8]) -> Result<Value, String> {
        decode_append(bytes, &mut InternTable::default())
    }

    /// Decodes a byte string produced by [`encode_append`] against the
    /// same prior table state, extending `table` with the record's new
    /// strings. With an empty table this is exactly [`decode`].
    pub fn decode_append(bytes: &[u8], table: &mut InternTable) -> Result<Value, String> {
        let mut cur = Cursor { bytes, pos: 0 };
        let count = cur.varint()? as usize;
        if count > bytes.len() {
            return Err(format!("string table length {count} exceeds payload"));
        }
        for _ in 0..count {
            let len = cur.varint()? as usize;
            let raw = cur.take(len)?;
            table.push(
                std::str::from_utf8(raw)
                    .map_err(|e| format!("string table entry is not UTF-8: {e}"))?
                    .to_string(),
            );
        }
        let value = cur.value(&table.strings)?;
        if cur.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", cur.pos));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::EventBasedAnalyzer;
    use ppa_trace::OverheadSpec;

    fn sample() -> Checkpoint {
        let analyzer = EventBasedAnalyzer::new(&OverheadSpec::alliant_default());
        Checkpoint {
            analyzer: analyzer.snapshot(),
            positions_seen: 7,
            gaps: Vec::new(),
            events_lost: 0,
            reorder: None,
            sink: SinkState {
                bytes_flushed: 123,
                events: 5,
                awaits: 1,
                barriers: 0,
                episodes: 2,
                last_time: Time::from_nanos(99),
            },
        }
    }

    #[test]
    fn value_codec_round_trips_nested_trees() {
        use serde::{Number, Value};
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(u64::MAX)),
                    Value::Number(Number::NegInt(i64::MIN)),
                    Value::Number(Number::NegInt(-1)),
                    Value::Number(Number::Float(1.25)),
                    Value::Null,
                    Value::Bool(true),
                    Value::Bool(false),
                ]),
            ),
            ("b".to_string(), Value::String("héllo \"w\\orld\"".into())),
            // Repeated keys and string values exercise interning.
            (
                "c".to_string(),
                Value::Array(vec![
                    Value::Object(vec![("b".to_string(), Value::String("b".into()))]),
                    Value::Object(vec![("b".to_string(), Value::String("b".into()))]),
                ]),
            ),
            ("empty_arr".to_string(), Value::Array(Vec::new())),
            ("empty_obj".to_string(), Value::Object(Vec::new())),
        ]);
        let bytes = super::value_codec::encode(&v);
        let back = super::value_codec::decode(&bytes).unwrap();
        assert_eq!(v, back);

        // Torn payloads are refused, not misread.
        for cut in 1..bytes.len() {
            assert!(super::value_codec::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn checkpoint_round_trips_through_the_file_format() {
        let dir = std::env::temp_dir().join("ppa-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let cp = sample();
        write_checkpoint(&path, &cp).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back.positions_seen, cp.positions_seen);
        assert_eq!(back.sink, cp.sink);
        assert_eq!(
            serde_json::to_string(&back.analyzer).unwrap(),
            serde_json::to_string(&cp.analyzer).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_codec_extends_encode_exactly() {
        use serde::{Number, Value};
        let record = |n: u64| {
            Value::Object(vec![
                ("kind".to_string(), Value::String("delta".into())),
                ("n".to_string(), Value::Number(Number::PosInt(n))),
                (
                    "items".to_string(),
                    Value::Array(vec![Value::String("shared".into())]),
                ),
            ])
        };

        // From an empty table, append-mode encoding is byte-identical to
        // the self-contained encoder — version-1 files and version-2
        // full records share one codec.
        let mut enc = super::value_codec::InternTable::default();
        let first = super::value_codec::encode_append(&record(1), &mut enc);
        assert_eq!(first, super::value_codec::encode(&record(1)));

        // A second record re-sends no string: its table section is the
        // single byte `varint 0`, and it decodes only against the
        // carried-over table.
        let second = super::value_codec::encode_append(&record(2), &mut enc);
        assert_eq!(second[0], 0, "no new strings in the second record");
        assert!(second.len() < first.len());

        let mut dec = super::value_codec::InternTable::default();
        assert_eq!(
            super::value_codec::decode_append(&first, &mut dec).unwrap(),
            record(1)
        );
        assert_eq!(
            super::value_codec::decode_append(&second, &mut dec).unwrap(),
            record(2)
        );
        // Without the prior table state the second record is undecodable.
        assert!(super::value_codec::decode(&second).is_err());
    }

    /// Drives a writer through full + delta + compaction records with
    /// evolving cursors and gap lists, checking the reassembled state
    /// after every write.
    #[test]
    fn delta_writer_chain_reads_back_and_compacts() {
        use ppa_trace::{GapCause, TraceGap};
        let dir = std::env::temp_dir().join("ppa-ckpt-delta-chain");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut analyzer = EventBasedAnalyzer::new(&OverheadSpec::alliant_default());
        let mut writer = DeltaCheckpointWriter::new(&path, 3);
        let mut gaps: Vec<TraceGap> = Vec::new();
        let mut sizes = Vec::new();
        for step in 1u64..=8 {
            if step % 2 == 0 {
                gaps.push(TraceGap {
                    block: step as usize,
                    events: step * 3,
                    first_seq: Some(step),
                    last_seq: None,
                    first_time: None,
                    last_time: None,
                    cause: GapCause::CrcMismatch,
                });
            }
            let parts = CheckpointParts {
                positions_seen: step * 100,
                gaps: &gaps,
                events_lost: step * 3,
                reorder: None,
                sink: SinkState {
                    bytes_flushed: step * 1000,
                    events: step * 9,
                    awaits: step,
                    barriers: 0,
                    episodes: step * 2,
                    last_time: Time::from_nanos(step * 7),
                },
            };
            writer.checkpoint(&mut analyzer, parts).unwrap();
            sizes.push(std::fs::metadata(&path).unwrap().len());

            let back = read_checkpoint(&path).unwrap();
            assert_eq!(back.positions_seen, step * 100, "step {step}");
            assert_eq!(back.gaps.len(), gaps.len(), "step {step}");
            assert_eq!(back.gaps, gaps, "step {step}");
            assert_eq!(back.events_lost, step * 3, "step {step}");
            assert_eq!(back.sink.bytes_flushed, step * 1000, "step {step}");
            assert_eq!(
                serde_json::to_string(&back.analyzer).unwrap(),
                serde_json::to_string(&analyzer.snapshot()).unwrap(),
                "step {step}"
            );
        }
        // Writes 1..=8 with compact_every=3: full at 1, deltas at 2-4,
        // compaction (full) at 5, deltas at 6-8. The compacted file must
        // be smaller than the chain it replaced.
        assert!(
            sizes[4] < sizes[3],
            "compaction shrinks the file: {sizes:?}"
        );
        // And the scan agrees on the record structure.
        let scan = scan_checkpoint(&path).unwrap();
        assert_eq!(scan.delta_records, 3);
        assert!(scan.torn_tail.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A torn append (SIGKILL mid-delta) must fall back to the previous
    /// record's state; corrupting a middle record must drop everything
    /// from that record on.
    #[test]
    fn torn_or_corrupt_delta_tail_falls_back_to_valid_prefix() {
        let dir = std::env::temp_dir().join("ppa-ckpt-delta-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut analyzer = EventBasedAnalyzer::new(&OverheadSpec::alliant_default());
        let mut writer = DeltaCheckpointWriter::new(&path, usize::MAX);
        let mut boundaries = Vec::new(); // (file len, positions_seen)
        for step in 1u64..=4 {
            let parts = CheckpointParts {
                positions_seen: step,
                gaps: &[],
                events_lost: 0,
                reorder: None,
                sink: SinkState::default(),
            };
            writer.checkpoint(&mut analyzer, parts).unwrap();
            boundaries.push((std::fs::metadata(&path).unwrap().len(), step));
        }
        let bytes = std::fs::read(&path).unwrap();

        // Truncate at every byte past the full record: the state read
        // back is the one at the last whole record boundary.
        for cut in boundaries[0].0 as usize..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let back = read_checkpoint(&path).unwrap();
            let expect = boundaries
                .iter()
                .rev()
                .find(|(len, _)| *len as usize <= cut)
                .unwrap()
                .1;
            assert_eq!(back.positions_seen, expect, "cut at {cut}");
            // A cut exactly on a record boundary leaves a clean, shorter
            // chain; anywhere else is a detectable torn tail.
            let on_boundary = boundaries.iter().any(|(len, _)| *len as usize == cut);
            let scan = scan_checkpoint(&path).unwrap();
            assert_eq!(scan.torn_tail.is_some(), !on_boundary, "cut at {cut}");
        }

        // Flip one byte inside the second delta: the chain dies there,
        // even though the third delta's own bytes are untouched.
        let mut corrupt = bytes.clone();
        let target = boundaries[1].0 as usize + 20;
        corrupt[target] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back.positions_seen, boundaries[1].1);
        assert!(scan_checkpoint(&path).unwrap().torn_tail.is_some());

        // Corrupting the full record is fatal — it was written
        // atomically, so this is disk corruption, not a torn append.
        let mut corrupt = bytes;
        corrupt[REC_HEADER + 9 + 3] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A chain stamped with a future snapshot version must fail with the
    /// typed error — never a garbage restore or a generic corruption
    /// verdict — and an unversioned (pre-episode) chain is refused as
    /// stale.
    #[test]
    fn snapshot_version_gate_refuses_future_and_stale_chains() {
        let dir = std::env::temp_dir().join("ppa-ckpt-version-gate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let mut analyzer = EventBasedAnalyzer::new(&OverheadSpec::alliant_default());
        let mut writer = DeltaCheckpointWriter::new(&path, 3);
        let parts = CheckpointParts {
            positions_seen: 1,
            gaps: &[],
            events_lost: 0,
            reorder: None,
            sink: SinkState::default(),
        };
        writer.checkpoint(&mut analyzer, parts).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[8], SNAPSHOT_VERSION);

        // Forward fixture: the same chain stamped one version ahead.
        let mut future = bytes.clone();
        future[8] = SNAPSHOT_VERSION + 1;
        std::fs::write(&path, &future).unwrap();
        for err in [
            read_checkpoint(&path).unwrap_err(),
            scan_checkpoint(&path).unwrap_err(),
        ] {
            assert!(
                matches!(
                    err,
                    CheckpointError::FutureVersion { found, supported }
                        if found == SNAPSHOT_VERSION + 1 && supported == SNAPSHOT_VERSION
                ),
                "{err}"
            );
        }

        // A pre-versioned chain starts its first record (kind byte 0)
        // where the version byte now lives.
        let mut legacy = Vec::from(&bytes[..8]);
        legacy.extend_from_slice(&bytes[9..]);
        std::fs::write(&path, &legacy).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("predates")
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join("ppa-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        write_checkpoint(&path, &sample()).unwrap();

        // Flip a payload byte: CRC mismatch.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("CRC")
        ));

        // Truncate: payload shorter than promised.
        bytes[last] ^= 0x20;
        bytes.truncate(bytes.len() - 4);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("promised")
        ));

        // Wrong magic.
        std::fs::write(&path, b"NOTACKPTxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("magic")
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
