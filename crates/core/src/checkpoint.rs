//! Crash-safe checkpoint files for streaming analyses.
//!
//! A checkpoint captures everything a killed `--stream` analysis needs to
//! continue as if it had never stopped:
//!
//! - the [`AnalyzerSnapshot`] — the streaming analyzer's complete state;
//! - the *input cursor* — how many stream positions (delivered events
//!   plus leniently skipped ones) the reader had consumed, so a resumed
//!   run can seek past exactly that prefix;
//! - the decode-gap record so far ([`TraceGap`]s and the lost-event
//!   total), so losses before the kill stay accounted for;
//! - an optional [`ReorderSnapshot`] holding a reorder buffer's
//!   not-yet-released tail;
//! - the [`SinkState`] — how many bytes of report output were durably
//!   flushed, and the output-side counters, so the resumed run can
//!   truncate a torn tail and append from a clean edge.
//!
//! # File format
//!
//! ```text
//! offset  size  field
//! 0       8     magic+version  b"PPACKPT1"
//! 8       4     CRC-32 of the payload (little endian)
//! 12      8     payload length in bytes (little endian)
//! 20      n     payload: the [`Checkpoint`]'s serde tree, binary-encoded
//! ```
//!
//! The payload is a compact binary encoding of the checkpoint's serde
//! value tree — tag bytes, LEB128 varints, and an interned string table
//! so repeated field names cost one varint each. Checkpoints are written
//! on a cadence while the stream is hot, and the analyzer state they
//! carry grows with the trace's live synchronization history, so the
//! payload codec is sized for the write path: no text formatting, no
//! per-number allocation, roughly a third of the equivalent JSON.
//!
//! The CRC (same polynomial as the binary trace codec — [`crc32`])
//! detects torn or corrupted checkpoints; [`read_checkpoint`] refuses
//! them rather than resuming from garbage. [`write_checkpoint`] writes to
//! a sibling temporary file, syncs, then renames into place, so a crash
//! mid-checkpoint leaves the previous checkpoint intact: at every instant
//! the path holds *some* complete, valid checkpoint (or none).

use crate::streaming::AnalyzerSnapshot;
use ppa_trace::{crc32, ReorderSnapshot, Time, TraceGap};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every checkpoint file; the trailing digit is the
/// format version.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PPACKPT1";

/// Resumable state of an interrupted streaming analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The streaming analyzer's complete serialized state.
    pub analyzer: AnalyzerSnapshot,
    /// Stream positions the reader had consumed when the snapshot was
    /// taken: events delivered to the analyzer *plus* events lost to
    /// lenient decode gaps. A resumed run seeks the reader past exactly
    /// this many positions (`set_skip_events`), which in the binary
    /// format skips whole blocks by their frame summaries without
    /// decoding them.
    pub positions_seen: u64,
    /// Decode gaps recorded before the checkpoint.
    pub gaps: Vec<TraceGap>,
    /// Events lost to those gaps.
    pub events_lost: u64,
    /// The reorder buffer's held-back tail, when one was in use.
    pub reorder: Option<ReorderSnapshot>,
    /// Output-side accounting at the moment of the snapshot.
    pub sink: SinkState,
}

/// Output accounting stored in a [`Checkpoint`].
///
/// `bytes_flushed` is the durable frontier: the writer was flushed
/// immediately before the snapshot, so the first `bytes_flushed` bytes of
/// the report file correspond exactly to the analyzer state in the
/// checkpoint. Anything past that offset was written after the
/// checkpoint (and will be reproduced by the resumed run), so resume
/// truncates the file there and appends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkState {
    /// Bytes of report output durably flushed before the snapshot.
    pub bytes_flushed: u64,
    /// Approximated events written so far.
    pub events: u64,
    /// Await outcomes counted so far.
    pub awaits: u64,
    /// Barrier passages counted so far.
    pub barriers: u64,
    /// Highest approximated event time seen so far.
    pub last_time: Time,
}

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file is not a valid checkpoint: wrong magic or version, bad
    /// CRC, truncated payload, or malformed JSON.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Atomically replaces the checkpoint at `path`.
///
/// The bytes are written to a sibling `<name>.tmp` file, synced to disk,
/// and renamed over `path` — so a crash at any point leaves either the
/// old checkpoint or the new one, never a torn hybrid.
pub fn write_checkpoint(path: &Path, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
    let _span = ppa_obs::span_enter(ppa_obs::Stage::CheckpointWrite);
    let payload = value_codec::encode(&checkpoint.serialize());
    let mut buf = Vec::with_capacity(20 + payload.len());
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&payload);

    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Corrupt("checkpoint path has no file name".into()))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = File::create(&tmp)?;
    f.write_all(&buf)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates the checkpoint at `path`.
///
/// Fails with [`CheckpointError::Corrupt`] on a wrong magic/version, a
/// CRC mismatch, a short file, or an undecodable payload — a resumed
/// analysis must start from a provably intact state or not at all.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(CheckpointError::Corrupt(format!(
            "file is {} bytes, shorter than the 20-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::Corrupt(
            "bad magic (not a ppa checkpoint, or an unsupported version)".into(),
        ));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[20..];
    if payload.len() != len {
        return Err(CheckpointError::Corrupt(format!(
            "payload is {} bytes, header promised {len}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(CheckpointError::Corrupt("payload CRC mismatch".into()));
    }
    let value = value_codec::decode(payload)
        .map_err(|e| CheckpointError::Corrupt(format!("payload encoding: {e}")))?;
    Checkpoint::deserialize(&value)
        .map_err(|e| CheckpointError::Corrupt(format!("payload schema: {e}")))
}

/// Compact binary encoding of a serde value tree.
///
/// Layout: an interned string table (`varint count`, then each string as
/// `varint len` + UTF-8 bytes), followed by the root value. A value is a
/// tag byte plus payload:
///
/// ```text
/// 0 null        1 false            2 true
/// 3 varint n    (non-negative integer)
/// 4 varint m    (negative integer -1 - m)
/// 5 8 bytes     (f64, little endian)
/// 6 varint id   (string, by table index)
/// 7 varint len, len values             (array)
/// 8 varint len, len (varint id, value) (object; keys by table index)
/// ```
///
/// Varints are LEB128. Interning makes the 65k-plus repetitions of field
/// names in a large analyzer snapshot cost two bytes each instead of the
/// quoted name, and the decoder materializes each name once.
mod value_codec {
    use serde::{Number, Value};
    use std::collections::HashMap;

    const T_NULL: u8 = 0;
    const T_FALSE: u8 = 1;
    const T_TRUE: u8 = 2;
    const T_POS: u8 = 3;
    const T_NEG: u8 = 4;
    const T_FLOAT: u8 = 5;
    const T_STR: u8 = 6;
    const T_ARR: u8 = 7;
    const T_OBJ: u8 = 8;

    fn put_varint(mut n: u64, out: &mut Vec<u8>) {
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// Interns `s`, returning its table index.
    fn intern<'a>(
        s: &'a str,
        strings: &mut Vec<&'a str>,
        index: &mut HashMap<&'a str, u64>,
    ) -> u64 {
        if let Some(&id) = index.get(s) {
            return id;
        }
        let id = strings.len() as u64;
        strings.push(s);
        index.insert(s, id);
        id
    }

    fn put_value<'a>(
        value: &'a Value,
        out: &mut Vec<u8>,
        strings: &mut Vec<&'a str>,
        index: &mut HashMap<&'a str, u64>,
    ) {
        match value {
            Value::Null => out.push(T_NULL),
            Value::Bool(false) => out.push(T_FALSE),
            Value::Bool(true) => out.push(T_TRUE),
            Value::Number(Number::PosInt(n)) => {
                out.push(T_POS);
                put_varint(*n, out);
            }
            Value::Number(Number::NegInt(n)) => {
                // -1 - m inverts exactly, including i64::MIN.
                out.push(T_NEG);
                put_varint(!(*n) as u64, out);
            }
            Value::Number(Number::Float(f)) => {
                out.push(T_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::String(s) => {
                out.push(T_STR);
                put_varint(intern(s, strings, index), out);
            }
            Value::Array(items) => {
                out.push(T_ARR);
                put_varint(items.len() as u64, out);
                for item in items {
                    put_value(item, out, strings, index);
                }
            }
            Value::Object(pairs) => {
                out.push(T_OBJ);
                put_varint(pairs.len() as u64, out);
                for (key, item) in pairs {
                    put_varint(intern(key, strings, index), out);
                    put_value(item, out, strings, index);
                }
            }
        }
    }

    /// Encodes a value tree into a self-contained byte string.
    pub fn encode(root: &Value) -> Vec<u8> {
        let mut strings: Vec<&str> = Vec::new();
        let mut index: HashMap<&str, u64> = HashMap::new();
        let mut body = Vec::new();
        put_value(root, &mut body, &mut strings, &mut index);
        let mut out = Vec::with_capacity(body.len() + 16 * strings.len() + 8);
        put_varint(strings.len() as u64, &mut out);
        for s in &strings {
            put_varint(s.len() as u64, &mut out);
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&body);
        out
    }

    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        fn byte(&mut self) -> Result<u8, String> {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| format!("unexpected end at byte {}", self.pos))?;
            self.pos += 1;
            Ok(b)
        }

        fn varint(&mut self) -> Result<u64, String> {
            let mut n = 0u64;
            let mut shift = 0u32;
            loop {
                let b = self.byte()?;
                if shift >= 64 {
                    return Err("varint overflows u64".into());
                }
                n |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    return Ok(n);
                }
                shift += 7;
            }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.bytes.len())
                .ok_or_else(|| format!("unexpected end at byte {}", self.pos))?;
            let slice = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        fn value(&mut self, strings: &[String]) -> Result<Value, String> {
            let lookup = |id: u64| -> Result<String, String> {
                strings
                    .get(id as usize)
                    .cloned()
                    .ok_or_else(|| format!("string id {id} out of table bounds"))
            };
            Ok(match self.byte()? {
                T_NULL => Value::Null,
                T_FALSE => Value::Bool(false),
                T_TRUE => Value::Bool(true),
                T_POS => Value::Number(Number::PosInt(self.varint()?)),
                T_NEG => Value::Number(Number::NegInt(!(self.varint()?) as i64)),
                T_FLOAT => {
                    let raw = self.take(8)?;
                    Value::Number(Number::Float(f64::from_le_bytes(
                        raw.try_into().expect("8 bytes"),
                    )))
                }
                T_STR => Value::String(lookup(self.varint()?)?),
                T_ARR => {
                    let len = self.varint()? as usize;
                    // Guard allocation against lying lengths: the items
                    // still have to fit in the remaining bytes (1+ each).
                    if len > self.bytes.len() - self.pos {
                        return Err(format!("array length {len} exceeds payload"));
                    }
                    let mut items = Vec::with_capacity(len);
                    for _ in 0..len {
                        items.push(self.value(strings)?);
                    }
                    Value::Array(items)
                }
                T_OBJ => {
                    let len = self.varint()? as usize;
                    if len > self.bytes.len() - self.pos {
                        return Err(format!("object length {len} exceeds payload"));
                    }
                    let mut pairs = Vec::with_capacity(len);
                    for _ in 0..len {
                        let key = lookup(self.varint()?)?;
                        pairs.push((key, self.value(strings)?));
                    }
                    Value::Object(pairs)
                }
                tag => return Err(format!("unknown value tag {tag}")),
            })
        }
    }

    /// Decodes a byte string produced by [`encode`].
    pub fn decode(bytes: &[u8]) -> Result<Value, String> {
        let mut cur = Cursor { bytes, pos: 0 };
        let count = cur.varint()? as usize;
        if count > bytes.len() {
            return Err(format!("string table length {count} exceeds payload"));
        }
        let mut strings = Vec::with_capacity(count);
        for _ in 0..count {
            let len = cur.varint()? as usize;
            let raw = cur.take(len)?;
            strings.push(
                std::str::from_utf8(raw)
                    .map_err(|e| format!("string table entry is not UTF-8: {e}"))?
                    .to_string(),
            );
        }
        let value = cur.value(&strings)?;
        if cur.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", cur.pos));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::EventBasedAnalyzer;
    use ppa_trace::OverheadSpec;

    fn sample() -> Checkpoint {
        let analyzer = EventBasedAnalyzer::new(&OverheadSpec::alliant_default());
        Checkpoint {
            analyzer: analyzer.snapshot(),
            positions_seen: 7,
            gaps: Vec::new(),
            events_lost: 0,
            reorder: None,
            sink: SinkState {
                bytes_flushed: 123,
                events: 5,
                awaits: 1,
                barriers: 0,
                last_time: Time::from_nanos(99),
            },
        }
    }

    #[test]
    fn value_codec_round_trips_nested_trees() {
        use serde::{Number, Value};
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(u64::MAX)),
                    Value::Number(Number::NegInt(i64::MIN)),
                    Value::Number(Number::NegInt(-1)),
                    Value::Number(Number::Float(1.25)),
                    Value::Null,
                    Value::Bool(true),
                    Value::Bool(false),
                ]),
            ),
            ("b".to_string(), Value::String("héllo \"w\\orld\"".into())),
            // Repeated keys and string values exercise interning.
            (
                "c".to_string(),
                Value::Array(vec![
                    Value::Object(vec![("b".to_string(), Value::String("b".into()))]),
                    Value::Object(vec![("b".to_string(), Value::String("b".into()))]),
                ]),
            ),
            ("empty_arr".to_string(), Value::Array(Vec::new())),
            ("empty_obj".to_string(), Value::Object(Vec::new())),
        ]);
        let bytes = super::value_codec::encode(&v);
        let back = super::value_codec::decode(&bytes).unwrap();
        assert_eq!(v, back);

        // Torn payloads are refused, not misread.
        for cut in 1..bytes.len() {
            assert!(super::value_codec::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn checkpoint_round_trips_through_the_file_format() {
        let dir = std::env::temp_dir().join("ppa-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let cp = sample();
        write_checkpoint(&path, &cp).unwrap();
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back.positions_seen, cp.positions_seen);
        assert_eq!(back.sink, cp.sink);
        assert_eq!(
            serde_json::to_string(&back.analyzer).unwrap(),
            serde_json::to_string(&cp.analyzer).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join("ppa-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        write_checkpoint(&path, &sample()).unwrap();

        // Flip a payload byte: CRC mismatch.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("CRC")
        ));

        // Truncate: payload shorter than promised.
        bytes[last] ^= 0x20;
        bytes.truncate(bytes.len() - 4);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("promised")
        ));

        // Wrong magic.
        std::fs::write(&path, b"NOTACKPTxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Corrupt(m)) if m.contains("magic")
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
