//! Time-based perturbation analysis (paper §3).
//!
//! The model assumes *event independence*: every event's true time differs
//! from its measured time only by the instrumentation overhead accumulated
//! on its own thread. Each thread's events are rewritten as
//!
//! ```text
//! ta(e) = tm(e) − Σ overhead(e')   over that thread's events e' up to and
//!                                  including e
//! ```
//!
//! For sequential executions this is exact (execution states form a total
//! order and only overhead moves event times). For concurrent executions
//! with inter-thread dependencies it fails in two characteristic ways the
//! paper's Table 1 reports and this reproduction recreates:
//!
//! - when instrumentation *outside* a critical section lowers blocking
//!   probability (Livermore loops 3/4), the measured trace contains less
//!   waiting than the actual one, and subtracting overhead
//!   **under-approximates** the true time;
//! - when instrumentation *inside* a critical section raises contention
//!   (loop 17), the measured waiting exceeds the actual, none of which the
//!   subtraction can see, and the result **over-approximates**.

use ppa_trace::{OverheadSpec, ProcessorId, Span, Trace, TraceKind};
use std::collections::BTreeMap;

/// The product of time-based analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBasedResult {
    /// The approximated trace (same events, rewritten times).
    pub trace: Trace,
    /// Instrumentation overhead removed, per processor.
    pub removed: BTreeMap<ProcessorId, Span>,
}

impl TimeBasedResult {
    /// The approximated total execution time.
    pub fn total_time(&self) -> Span {
        self.trace.total_time()
    }
}

/// Applies time-based perturbation analysis to a measured trace.
///
/// Infallible by construction: the model needs no synchronization
/// structure, only per-event overheads — which is precisely why it cannot
/// repair dependent executions.
///
/// # Examples
///
/// ```
/// use ppa_trace::{OverheadSpec, Span, TraceBuilder};
/// use ppa_core::time_based;
///
/// // Three statements measured at 140/280/420 ns with 40 ns of recording
/// // overhead each: the actual completions were 100/200/300.
/// let measured = TraceBuilder::measured()
///     .on(0).at(140).stmt(0).at(280).stmt(1).at(420).stmt(2)
///     .build();
/// let approx = time_based(&measured, &OverheadSpec::uniform(Span::from_nanos(40)));
/// assert_eq!(approx.total_time(), Span::from_nanos(200));
/// ```
pub fn time_based(measured: &Trace, overheads: &OverheadSpec) -> TimeBasedResult {
    let mut cumulative: BTreeMap<ProcessorId, Span> = BTreeMap::new();
    let mut new_events = Vec::with_capacity(measured.len());

    for e in measured.iter() {
        let acc = cumulative.entry(e.proc).or_insert(Span::ZERO);
        *acc += overheads.instr_overhead(&e.kind);
        let mut ne = *e;
        // The accumulated overhead can exceed the measured offset of an
        // early event (e.g. the very first event, stamped right after its
        // own instrumentation); clamp at the origin rather than wrap.
        ne.time = e.time.saturating_sub_span(*acc);
        new_events.push(ne);
    }

    TimeBasedResult {
        trace: Trace::from_events(TraceKind::Approximated, new_events),
        removed: cumulative,
    }
}

/// Convenience: the approximated total execution time only.
pub fn time_based_total(measured: &Trace, overheads: &OverheadSpec) -> Span {
    time_based(measured, overheads).total_time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::{Span, Time, TraceBuilder};

    /// A sequential measured trace: 3 statements, each costing 100ns with
    /// 40ns instrumentation. Events at 140, 280, 420.
    fn sequential_measured() -> Trace {
        TraceBuilder::measured()
            .on(0)
            .at(140)
            .stmt(0)
            .at(280)
            .stmt(1)
            .at(420)
            .stmt(2)
            .build()
    }

    #[test]
    fn exact_on_sequential_traces() {
        let overheads = OverheadSpec::uniform(Span::from_nanos(40));
        let r = time_based(&sequential_measured(), &overheads);
        let times: Vec<u64> = r.trace.iter().map(|e| e.time.as_nanos()).collect();
        // Actual statement completions: 100, 200, 300.
        assert_eq!(times, vec![100, 200, 300]);
        assert_eq!(r.removed[&ProcessorId(0)], Span::from_nanos(120));
        assert_eq!(r.total_time(), Span::from_nanos(200));
    }

    #[test]
    fn zero_overhead_is_identity() {
        let t = sequential_measured();
        let r = time_based(&t, &OverheadSpec::ZERO);
        assert_eq!(r.trace.events(), t.events());
        assert_eq!(r.trace.kind(), TraceKind::Approximated);
    }

    #[test]
    fn threads_accumulate_independently() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(50)
            .stmt(0)
            .at(100)
            .stmt(1)
            .on(1)
            .at(60)
            .stmt(2)
            .build();
        let r = time_based(&t, &OverheadSpec::uniform(Span::from_nanos(10)));
        let by_time: Vec<(u16, u64)> = r
            .trace
            .iter()
            .map(|e| (e.proc.0, e.time.as_nanos()))
            .collect();
        // P0: 50-10=40, 100-20=80; P1: 60-10=50.
        assert!(by_time.contains(&(0, 40)));
        assert!(by_time.contains(&(0, 80)));
        assert!(by_time.contains(&(1, 50)));
    }

    #[test]
    fn clamps_at_origin() {
        let t = TraceBuilder::measured().on(0).at(5).stmt(0).build();
        let r = time_based(&t, &OverheadSpec::uniform(Span::from_nanos(50)));
        assert_eq!(r.trace.events()[0].time, Time::ZERO);
    }

    #[test]
    fn cannot_remove_dependent_waiting() {
        // Two threads; thread 1's await waited in the measured run purely
        // because of thread 0's instrumentation. Time-based analysis
        // subtracts thread 1's own (zero) overhead and keeps the wait.
        let t = TraceBuilder::measured()
            .on(0)
            .at(140)
            .stmt(0)
            .after(10)
            .advance(0, 0)
            .on(1)
            .at(10)
            .await_begin(0, 0)
            .at(150)
            .await_end(0, 0)
            .after(100)
            .stmt(1)
            .build();
        // Only statement events carry overhead here.
        let mut oh = OverheadSpec::ZERO;
        oh.statement_event = Span::from_nanos(40);
        let r = time_based(&t, &oh);
        // Thread 1's awaitE stays at 150 even though without thread 0's
        // overhead the advance (and hence the resume) would have been at
        // ~110: the model has no way to know.
        let awaite = r
            .trace
            .iter()
            .find(|e| matches!(e.kind, ppa_trace::EventKind::AwaitEnd { .. }))
            .unwrap();
        assert_eq!(awaite.time.as_nanos(), 150);
    }
}
