//! Sharded (multi-threaded) event-based analysis.
//!
//! The §4.2.3 resolution has a natural parallel decomposition: between
//! synchronization *joints* — advance/await pairings, barrier wavefronts,
//! and fork anchors — each processor's events form independent chains
//! whose approximate times are a running sum of per-event perturbation
//! increments. [`event_based_sharded`] exploits this:
//!
//! 1. **Structure** (serial): validate, discover time bases, and classify
//!    every event as a joint or a chain interior.
//! 2. **Segment scan** (parallel): per-processor workers compute each
//!    chain event's cumulative increment relative to its segment's anchor
//!    joint.
//! 3. **Joint resolution** (serial): a worklist pass over the joints only,
//!    reading chain-interior values as `anchor + cumulative increment`.
//! 4. **Reconstruction** (parallel): per-processor workers fill in the
//!    chain interiors between the resolved joints.
//!
//! The result — approximated trace, outcomes, and errors on feasible
//! input — is identical to [`event_based`](crate::event_based) and
//! [`event_based_reference`](crate::event_based_reference); only the
//! schedule differs. Because [`ppa_trace::Time`] arithmetic is plain
//! (associative) integer addition, the segment-sum formulation is exact,
//! not approximate.

use crate::error::AnalysisError;
use crate::event_based::{assemble_result, discover_structure, Basis, EventBasedResult, Structure};
use ppa_trace::{pair_sync_events, OverheadSpec, ProcessorId, Span, Time, Trace, TraceKind};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Event-based perturbation analysis with parallel chain reconstruction.
///
/// `workers` caps the number of `std::thread` workers used for the
/// parallel phases (at least one is always used). Processors are
/// distributed across workers; a trace with one processor degenerates to
/// the serial algorithm.
///
/// Produces exactly the result of [`event_based`](crate::event_based) on
/// the same input.
pub fn event_based_sharded(
    measured: &Trace,
    overheads: &OverheadSpec,
    workers: usize,
) -> Result<EventBasedResult, AnalysisError> {
    let index = pair_sync_events(measured)?;
    let events = measured.events();
    let n = events.len();
    if n == 0 {
        return Ok(EventBasedResult {
            trace: Trace::new(TraceKind::Approximated),
            awaits: Vec::new(),
            barriers: Vec::new(),
        });
    }
    let workers = workers.max(1);

    // --- Phase 1: structure and joint classification (serial) -----------
    let Structure { prev, basis, .. } = discover_structure(events);

    let mut await_of_end: HashMap<usize, (usize, Option<usize>)> = HashMap::new();
    for pair in &index.awaits {
        await_of_end.insert(pair.end, (pair.begin, pair.advance));
    }
    let mut episode_of_exit: HashMap<usize, usize> = HashMap::new();
    for (ep_idx, ep) in index.barriers.iter().enumerate() {
        for &x in &ep.exits {
            episode_of_exit.insert(x, ep_idx);
        }
    }

    // A joint is any event the chain rule does not cover: awaitE, barrier
    // exit, or an event whose basis is not its same-thread predecessor
    // (origin and fork anchors).
    let is_joint: Vec<bool> = (0..n)
        .map(|i| {
            await_of_end.contains_key(&i)
                || episode_of_exit.contains_key(&i)
                || match basis[i] {
                    Basis::Event(b) => Some(b) != prev[i],
                    Basis::Origin => true,
                }
        })
        .collect();

    let mut by_proc: BTreeMap<ProcessorId, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        by_proc.entry(e.proc).or_default().push(i);
    }
    let proc_lists: Vec<Vec<usize>> = by_proc.into_values().collect();
    let chunk = proc_lists.len().div_ceil(workers);

    let inc = |i: usize| -> Span {
        let p = prev[i].expect("chain events have a predecessor");
        events[i]
            .time
            .saturating_since(events[p].time)
            .saturating_sub(overheads.instr_overhead(&events[i].kind))
    };

    // --- Phase 2: parallel segment scans --------------------------------
    // For each chain event, the anchor joint that starts its segment and
    // the cumulative increment since that anchor.
    let mut anchor: Vec<usize> = vec![0; n];
    let mut cum: Vec<Span> = vec![Span::ZERO; n];
    std::thread::scope(|s| {
        let inc = &inc;
        let is_joint = &is_joint;
        let handles: Vec<_> = proc_lists
            .chunks(chunk)
            .map(|lists| {
                s.spawn(move || {
                    let mut out: Vec<(usize, usize, Span)> = Vec::new();
                    for list in lists {
                        // (anchor, cum) of the previous event on this
                        // processor — the chain predecessor.
                        let mut last: Option<(usize, Span)> = None;
                        for &i in list {
                            let (a, c) = if is_joint[i] {
                                (i, Span::ZERO)
                            } else {
                                let (pa, pc) = last.expect("chain events follow a predecessor");
                                (pa, pc + inc(i))
                            };
                            out.push((i, a, c));
                            last = Some((a, c));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, a, c) in h.join().expect("segment-scan worker panicked") {
                anchor[i] = a;
                cum[i] = c;
            }
        }
    });

    // --- Phase 3: joint worklist (serial) --------------------------------
    let joints: Vec<usize> = (0..n).filter(|&i| is_joint[i]).collect();
    let anchor_of = |x: usize| if is_joint[x] { x } else { anchor[x] };

    let mut out_edges: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut indeg: HashMap<usize, usize> = joints.iter().map(|&j| (j, 0)).collect();
    for &j in &joints {
        let mut deps: Vec<usize> = Vec::new();
        if let Basis::Event(b) = basis[j] {
            deps.push(anchor_of(b));
        }
        if let Some(&(begin, advance)) = await_of_end.get(&j) {
            deps.push(anchor_of(begin));
            if let Some(adv) = advance {
                deps.push(anchor_of(adv));
            }
        }
        if let Some(&ep_idx) = episode_of_exit.get(&j) {
            for &en in &index.barriers[ep_idx].enters {
                deps.push(anchor_of(en));
            }
        }
        for d in deps {
            out_edges.entry(d).or_default().push(j);
            *indeg.get_mut(&j).expect("joints are registered") += 1;
        }
    }

    let mut jval: HashMap<usize, Time> = HashMap::with_capacity(joints.len());
    let mut ready: BinaryHeap<Reverse<usize>> = joints
        .iter()
        .copied()
        .filter(|j| indeg[j] == 0)
        .map(Reverse)
        .collect();
    let mut resolved_joints = 0usize;
    while let Some(Reverse(j)) = ready.pop() {
        let val_of = |x: usize| -> Time {
            if is_joint[x] {
                jval[&x]
            } else {
                jval[&anchor[x]] + cum[x]
            }
        };
        let e = &events[j];
        let value = if let Some(&(begin, advance)) = await_of_end.get(&j) {
            let tb = val_of(begin);
            match advance {
                Some(adv) => {
                    let tadv = val_of(adv);
                    if tadv <= tb {
                        tb + overheads.s_nowait
                    } else {
                        tadv + overheads.s_wait
                    }
                }
                None => tb + overheads.s_nowait,
            }
        } else if let Some(&ep_idx) = episode_of_exit.get(&j) {
            let release = index.barriers[ep_idx]
                .enters
                .iter()
                .map(|&en| val_of(en))
                .max()
                .expect("episodes have enters");
            release + overheads.barrier_release
        } else {
            let oh = overheads.instr_overhead(&e.kind);
            match basis[j] {
                Basis::Origin => e.time.saturating_sub_span(oh),
                Basis::Event(b) => {
                    let tb = val_of(b);
                    tb + e.time.saturating_since(events[b].time).saturating_sub(oh)
                }
            }
        };
        jval.insert(j, value);
        resolved_joints += 1;
        if let Some(succs) = out_edges.get(&j) {
            for &succ in succs {
                let d = indeg.get_mut(&succ).expect("joints are registered");
                *d -= 1;
                if *d == 0 {
                    ready.push(Reverse(succ));
                }
            }
        }
    }

    if resolved_joints < joints.len() {
        // A chain event is resolvable exactly when its anchor is.
        let resolved_total = (0..n).filter(|&i| jval.contains_key(&anchor_of(i))).count();
        return Err(AnalysisError::CyclicDependencies {
            unresolved: n - resolved_total,
        });
    }

    // --- Phase 4: parallel chain reconstruction --------------------------
    let mut ta: Vec<Time> = vec![Time::ZERO; n];
    std::thread::scope(|s| {
        let jval = &jval;
        let inc = &inc;
        let is_joint = &is_joint;
        let handles: Vec<_> = proc_lists
            .chunks(chunk)
            .map(|lists| {
                s.spawn(move || {
                    let mut out: Vec<(usize, Time)> = Vec::new();
                    for list in lists {
                        let mut last: Option<Time> = None;
                        for &i in list {
                            let v = if is_joint[i] {
                                jval[&i]
                            } else {
                                last.expect("chain events follow a predecessor") + inc(i)
                            };
                            out.push((i, v));
                            last = Some(v);
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("reconstruction worker panicked") {
                ta[i] = v;
            }
        }
    });

    Ok(assemble_result(events, &ta, &index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_based::event_based_reference;
    use ppa_trace::TraceBuilder;

    fn spec() -> OverheadSpec {
        let mut oh = OverheadSpec::alliant_default();
        oh.barrier_release = Span::from_nanos(7);
        oh
    }

    #[test]
    fn matches_reference_on_awaits_and_barriers() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .loop_begin(0)
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .advance(0, 0)
            .on(1)
            .at(50)
            .await_begin(0, 0)
            .at(210)
            .await_end(0, 0)
            .on(0)
            .at(300)
            .barrier_enter(0)
            .on(1)
            .at(320)
            .barrier_enter(0)
            .on(0)
            .at(330)
            .barrier_exit(0)
            .on(1)
            .at(340)
            .barrier_exit(0)
            .on(0)
            .at(400)
            .loop_end(0)
            .build();
        let reference = event_based_reference(&t, &spec()).unwrap();
        for workers in [1, 2, 4] {
            let sharded = event_based_sharded(&t, &spec(), workers).unwrap();
            assert_eq!(sharded, reference, "workers = {workers}");
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = event_based_sharded(&Trace::new(TraceKind::Measured), &spec(), 4).unwrap();
        assert!(r.trace.is_empty());
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let t = TraceBuilder::measured().on(0).at(5).await_end(0, 0).build();
        assert!(matches!(
            event_based_sharded(&t, &spec(), 2),
            Err(AnalysisError::Trace(_))
        ));
    }
}
