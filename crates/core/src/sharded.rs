//! Sharded (multi-threaded) event-based analysis.
//!
//! The §4.2.3 resolution has a natural parallel decomposition: between
//! synchronization *joints* — advance/await pairings, barrier wavefronts,
//! and fork anchors — each processor's events form independent chains
//! whose approximate times are a running sum of per-event perturbation
//! increments. [`event_based_sharded`] exploits this:
//!
//! 1. **Structure** (serial): validate, discover time bases, and classify
//!    every event as a joint or a chain interior.
//! 2. **Segment scan** (parallel): per-processor workers compute each
//!    chain event's cumulative increment relative to its segment's anchor
//!    joint.
//! 3. **Joint resolution** (serial): a worklist pass over the joints only,
//!    reading chain-interior values as `anchor + cumulative increment`.
//! 4. **Reconstruction** (parallel): per-processor workers fill in the
//!    chain interiors between the resolved joints.
//!
//! The result — approximated trace, outcomes, and errors on feasible
//! input — is identical to [`event_based`](crate::event_based) and
//! [`event_based_reference`](crate::event_based_reference); only the
//! schedule differs. Because [`ppa_trace::Time`] arithmetic is plain
//! (associative) integer addition, the segment-sum formulation is exact,
//! not approximate.

use crate::error::{AnalysisError, IngestError};
use crate::event_based::{assemble_result, discover_structure, Basis, EventBasedResult, Structure};
use ppa_obs::{exponential_bounds, Counter, Gauge, Histogram, Registry};
use ppa_trace::{
    pair_sync_events, AnyTraceReader, OverheadSpec, ProcessorId, Span, Time, Trace, TraceKind,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::time::Instant;

/// Observability probes for [`event_based_sharded_probed`].
///
/// Per-shard metrics are registered lazily (one label set per worker) on
/// the registry captured at [`ShardProbes::register`] time:
/// `ppa_shard_events_total{shard="w<i>"}` counts the events a worker
/// scanned (each trace event is counted by exactly one shard),
/// `ppa_shard_throughput_eps{shard="w<i>"}` reports scanned events per
/// second of the worker's total busy time across both parallel phases
/// (segment scan + reconstruction), and `ppa_shard_join_wait_ns`
/// is a histogram of how long the coordinating thread waited for each
/// worker join — the direct measure of shard skew.
#[derive(Clone, Debug, Default)]
pub struct ShardProbes {
    registry: Option<Registry>,
    /// Join-wait histogram (`ppa_shard_join_wait_ns`).
    pub join_wait: Histogram,
}

impl ShardProbes {
    /// Detached probes: every record is discarded.
    pub fn noop() -> Self {
        ShardProbes::default()
    }

    /// Registers the sharding metrics on `registry`.
    pub fn register(registry: &Registry) -> Self {
        ShardProbes {
            registry: Some(registry.clone()),
            join_wait: registry.histogram(
                "ppa_shard_join_wait_ns",
                "Nanoseconds the coordinator waited for each worker join.",
                &exponential_bounds(1_000, 8.0, 8),
            ),
        }
    }

    fn shard_events(&self, shard: usize) -> Counter {
        match &self.registry {
            Some(r) => r.counter_with(
                "ppa_shard_events_total",
                &[("shard", &format!("w{shard}"))],
                "Events scanned by this shard worker.",
            ),
            None => Counter::noop(),
        }
    }

    fn shard_throughput(&self, shard: usize) -> Gauge {
        match &self.registry {
            Some(r) => r.gauge_with(
                "ppa_shard_throughput_eps",
                &[("shard", &format!("w{shard}"))],
                "Events per second this shard worker sustained across the parallel phases.",
            ),
            None => Gauge::noop(),
        }
    }
}

/// Event-based perturbation analysis with parallel chain reconstruction.
///
/// `workers` caps the number of `std::thread` workers used for the
/// parallel phases (at least one is always used). Processors are
/// distributed across workers; a trace with one processor degenerates to
/// the serial algorithm.
///
/// Produces exactly the result of [`event_based`](crate::event_based) on
/// the same input.
pub fn event_based_sharded(
    measured: &Trace,
    overheads: &OverheadSpec,
    workers: usize,
) -> Result<EventBasedResult, AnalysisError> {
    event_based_sharded_probed(measured, overheads, workers, ShardProbes::noop())
}

/// Sharded analysis fed straight from a trace stream of either format.
///
/// Ingestion is where a large measured trace actually spends its time, so
/// this entry point wires the codec layer's parallelism to the analysis's:
/// the stream format is auto-detected by magic bytes, `ppa-trace-bin-v1`
/// input is decoded block-parallel on up to `workers` threads
/// ([`ParallelBinaryReader`](ppa_trace::ParallelBinaryReader)), and the
/// decoded trace then runs through [`event_based_sharded`] with the same
/// worker budget. JSONL input decodes serially (it has no parallel path)
/// and analyzes identically.
pub fn event_based_sharded_from_reader<R: std::io::Read>(
    reader: R,
    overheads: &OverheadSpec,
    workers: usize,
) -> Result<EventBasedResult, IngestError> {
    let stream = AnyTraceReader::open_parallel(reader, workers.max(1))?;
    let kind = stream.kind();
    let events = stream.collect::<Result<Vec<_>, _>>()?;
    let measured = Trace::from_events(kind, events);
    Ok(event_based_sharded(&measured, overheads, workers)?)
}

/// [`event_based_sharded`] with observability: per-shard event counts and
/// throughput, plus a join-wait histogram capturing shard skew. Produces
/// the identical analysis result.
pub fn event_based_sharded_probed(
    measured: &Trace,
    overheads: &OverheadSpec,
    workers: usize,
    probes: ShardProbes,
) -> Result<EventBasedResult, AnalysisError> {
    let index = pair_sync_events(measured)?;
    let events = measured.events();
    let n = events.len();
    if n == 0 {
        return Ok(EventBasedResult {
            trace: Trace::new(TraceKind::Approximated),
            awaits: Vec::new(),
            barriers: Vec::new(),
            episodes: Vec::new(),
        });
    }
    let workers = workers.max(1);

    // --- Phase 1: structure and joint classification (serial) -----------
    let Structure { prev, basis, .. } = discover_structure(events);

    let mut await_of_end: HashMap<usize, (usize, Option<usize>)> = HashMap::new();
    for pair in &index.awaits {
        await_of_end.insert(pair.end, (pair.begin, pair.advance));
    }
    let mut episode_of_exit: HashMap<usize, usize> = HashMap::new();
    for (ep_idx, ep) in index.barriers.iter().enumerate() {
        for &x in &ep.exits {
            episode_of_exit.insert(x, ep_idx);
        }
    }
    let mut blocked_of_event: HashMap<usize, usize> = HashMap::new();
    for (p_idx, p) in index.episodes.iter().enumerate() {
        blocked_of_event.insert(p.event, p_idx);
    }

    // A joint is any event the chain rule does not cover: awaitE, barrier
    // exit, a lock/sem/task blocked event, or an event whose basis is not
    // its same-thread predecessor (origin, loop-fork, and task-spawn
    // anchors).
    let is_joint: Vec<bool> = (0..n)
        .map(|i| {
            await_of_end.contains_key(&i)
                || episode_of_exit.contains_key(&i)
                || blocked_of_event.contains_key(&i)
                || match basis[i] {
                    Basis::Event(b) => Some(b) != prev[i],
                    Basis::Origin => true,
                }
        })
        .collect();

    let mut by_proc: BTreeMap<ProcessorId, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        by_proc.entry(e.proc).or_default().push(i);
    }
    let proc_lists: Vec<Vec<usize>> = by_proc.into_values().collect();
    let chunk = proc_lists.len().div_ceil(workers);

    let inc = |i: usize| -> Span {
        let p = prev[i].expect("chain events have a predecessor");
        events[i]
            .time
            .saturating_since(events[p].time)
            .saturating_sub(overheads.instr_overhead(&events[i].kind))
    };

    // Per-shard observability accumulators: events scanned and busy time
    // across both parallel phases, folded into the shard metrics at the
    // end of the run.
    let n_shards = proc_lists.chunks(chunk).len();
    let mut shard_events: Vec<u64> = vec![0; n_shards];
    let mut shard_busy: Vec<std::time::Duration> = vec![std::time::Duration::ZERO; n_shards];

    // --- Phase 2: parallel segment scans --------------------------------
    // For each chain event, the anchor joint that starts its segment and
    // the cumulative increment since that anchor.
    let mut anchor: Vec<usize> = vec![0; n];
    let mut cum: Vec<Span> = vec![Span::ZERO; n];
    std::thread::scope(|s| {
        let inc = &inc;
        let is_joint = &is_joint;
        let handles: Vec<_> = proc_lists
            .chunks(chunk)
            .map(|lists| {
                s.spawn(move || {
                    let begin = Instant::now();
                    let mut out: Vec<(usize, usize, Span)> = Vec::new();
                    for list in lists {
                        // (anchor, cum) of the previous event on this
                        // processor — the chain predecessor.
                        let mut last: Option<(usize, Span)> = None;
                        for &i in list {
                            let (a, c) = if is_joint[i] {
                                (i, Span::ZERO)
                            } else {
                                let (pa, pc) = last.expect("chain events follow a predecessor");
                                (pa, pc + inc(i))
                            };
                            out.push((i, a, c));
                            last = Some((a, c));
                        }
                    }
                    (out, begin.elapsed())
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            let wait = Instant::now();
            let (out, busy) = h.join().expect("segment-scan worker panicked");
            probes
                .join_wait
                .observe(wait.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            // Each trace event is scanned by exactly one worker in this
            // phase, so this is the per-shard share of the trace.
            shard_events[w] += out.len() as u64;
            shard_busy[w] += busy;
            for (i, a, c) in out {
                anchor[i] = a;
                cum[i] = c;
            }
        }
    });

    // --- Phase 3: joint worklist (serial) --------------------------------
    let joints: Vec<usize> = (0..n).filter(|&i| is_joint[i]).collect();
    let anchor_of = |x: usize| if is_joint[x] { x } else { anchor[x] };

    let mut out_edges: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut indeg: HashMap<usize, usize> = joints.iter().map(|&j| (j, 0)).collect();
    for &j in &joints {
        let mut deps: Vec<usize> = Vec::new();
        if let Basis::Event(b) = basis[j] {
            deps.push(anchor_of(b));
        }
        if let Some(&(begin, advance)) = await_of_end.get(&j) {
            deps.push(anchor_of(begin));
            if let Some(adv) = advance {
                deps.push(anchor_of(adv));
            }
        }
        if let Some(&ep_idx) = episode_of_exit.get(&j) {
            for &en in &index.barriers[ep_idx].enters {
                deps.push(anchor_of(en));
            }
        }
        if let Some(&p_idx) = blocked_of_event.get(&j) {
            if let Some(dep) = index.episodes[p_idx].dep {
                deps.push(anchor_of(dep));
            }
        }
        for d in deps {
            out_edges.entry(d).or_default().push(j);
            *indeg.get_mut(&j).expect("joints are registered") += 1;
        }
    }

    let mut jval: HashMap<usize, Time> = HashMap::with_capacity(joints.len());
    let mut ready: BinaryHeap<Reverse<usize>> = joints
        .iter()
        .copied()
        .filter(|j| indeg[j] == 0)
        .map(Reverse)
        .collect();
    let mut resolved_joints = 0usize;
    while let Some(Reverse(j)) = ready.pop() {
        let val_of = |x: usize| -> Time {
            if is_joint[x] {
                jval[&x]
            } else {
                jval[&anchor[x]] + cum[x]
            }
        };
        let e = &events[j];
        let value = if let Some(&(begin, advance)) = await_of_end.get(&j) {
            let tb = val_of(begin);
            match advance {
                Some(adv) => {
                    let tadv = val_of(adv);
                    if tadv <= tb {
                        tb + overheads.s_nowait
                    } else {
                        tadv + overheads.s_wait
                    }
                }
                None => tb + overheads.s_nowait,
            }
        } else if let Some(&ep_idx) = episode_of_exit.get(&j) {
            let release = index.barriers[ep_idx]
                .enters
                .iter()
                .map(|&en| val_of(en))
                .max()
                .expect("episodes have enters");
            release + overheads.barrier_release
        } else if let Some(&p_idx) = blocked_of_event.get(&j) {
            // Episode blocked rule — mirrors the reference formulation.
            let oh = overheads.instr_overhead(&e.kind);
            let ready = match basis[j] {
                Basis::Origin => e.time.saturating_sub_span(oh),
                Basis::Event(b) => {
                    val_of(b) + e.time.saturating_since(events[b].time).saturating_sub(oh)
                }
            };
            match index.episodes[p_idx].dep {
                Some(d) => {
                    let td = val_of(d);
                    if td <= ready {
                        ready
                    } else {
                        td + overheads.s_wait
                    }
                }
                None => ready,
            }
        } else {
            let oh = overheads.instr_overhead(&e.kind);
            match basis[j] {
                Basis::Origin => e.time.saturating_sub_span(oh),
                Basis::Event(b) => {
                    let tb = val_of(b);
                    tb + e.time.saturating_since(events[b].time).saturating_sub(oh)
                }
            }
        };
        jval.insert(j, value);
        resolved_joints += 1;
        if let Some(succs) = out_edges.get(&j) {
            for &succ in succs {
                let d = indeg.get_mut(&succ).expect("joints are registered");
                *d -= 1;
                if *d == 0 {
                    ready.push(Reverse(succ));
                }
            }
        }
    }

    if resolved_joints < joints.len() {
        // A chain event is resolvable exactly when its anchor is.
        let resolved_total = (0..n).filter(|&i| jval.contains_key(&anchor_of(i))).count();
        return Err(AnalysisError::CyclicDependencies {
            unresolved: n - resolved_total,
        });
    }

    // --- Phase 4: parallel chain reconstruction --------------------------
    let mut ta: Vec<Time> = vec![Time::ZERO; n];
    std::thread::scope(|s| {
        let jval = &jval;
        let inc = &inc;
        let is_joint = &is_joint;
        let handles: Vec<_> = proc_lists
            .chunks(chunk)
            .map(|lists| {
                s.spawn(move || {
                    let begin = Instant::now();
                    let mut out: Vec<(usize, Time)> = Vec::new();
                    for list in lists {
                        let mut last: Option<Time> = None;
                        for &i in list {
                            let v = if is_joint[i] {
                                jval[&i]
                            } else {
                                last.expect("chain events follow a predecessor") + inc(i)
                            };
                            out.push((i, v));
                            last = Some(v);
                        }
                    }
                    (out, begin.elapsed())
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            let wait = Instant::now();
            let (out, busy) = h.join().expect("reconstruction worker panicked");
            probes
                .join_wait
                .observe(wait.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            // Events were already counted in the segment-scan phase; only
            // the reconstruction busy time feeds the throughput gauge.
            shard_busy[w] += busy;
            for (i, v) in out {
                ta[i] = v;
            }
        }
    });

    for (w, (&events_scanned, busy)) in shard_events.iter().zip(&shard_busy).enumerate() {
        probes.shard_events(w).add(events_scanned);
        let secs = busy.as_secs_f64();
        let eps = if secs > 0.0 {
            events_scanned as f64 / secs
        } else {
            0.0
        };
        probes.shard_throughput(w).set(eps);
    }

    Ok(assemble_result(events, &ta, &index, &basis, overheads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_based::event_based_reference;
    use ppa_trace::TraceBuilder;

    fn spec() -> OverheadSpec {
        let mut oh = OverheadSpec::alliant_default();
        oh.barrier_release = Span::from_nanos(7);
        oh
    }

    #[test]
    fn matches_reference_on_awaits_and_barriers() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .loop_begin(0)
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .advance(0, 0)
            .on(1)
            .at(50)
            .await_begin(0, 0)
            .at(210)
            .await_end(0, 0)
            .on(0)
            .at(300)
            .barrier_enter(0)
            .on(1)
            .at(320)
            .barrier_enter(0)
            .on(0)
            .at(330)
            .barrier_exit(0)
            .on(1)
            .at(340)
            .barrier_exit(0)
            .on(0)
            .at(400)
            .loop_end(0)
            .build();
        let reference = event_based_reference(&t, &spec()).unwrap();
        for workers in [1, 2, 4] {
            let sharded = event_based_sharded(&t, &spec(), workers).unwrap();
            assert_eq!(sharded, reference, "workers = {workers}");
        }
    }

    #[test]
    fn from_reader_matches_in_memory_analysis_across_formats() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .advance(0, 0)
            .on(1)
            .at(50)
            .await_begin(0, 0)
            .at(210)
            .await_end(0, 0)
            .build();
        let direct = event_based_sharded(&t, &spec(), 2).unwrap();

        let (mut jl, mut bin) = (Vec::new(), Vec::new());
        ppa_trace::write_trace(&t, &mut jl, ppa_trace::TraceFormat::Jsonl).unwrap();
        ppa_trace::write_trace(&t, &mut bin, ppa_trace::TraceFormat::Binary).unwrap();
        for buf in [jl, bin] {
            let r = event_based_sharded_from_reader(buf.as_slice(), &spec(), 2).unwrap();
            assert_eq!(r, direct);
        }
    }

    #[test]
    fn from_reader_surfaces_decode_and_analysis_errors() {
        // Not a trace stream at all: the sniffer falls through to JSONL,
        // whose header parse fails.
        let err = event_based_sharded_from_reader(&b"garbage\n"[..], &spec(), 2).unwrap_err();
        assert!(matches!(err, crate::IngestError::Io(_)), "{err:?}");

        // A well-formed stream carrying an invalid trace fails analysis.
        let t = TraceBuilder::measured().on(0).at(5).await_end(0, 0).build();
        let mut bin = Vec::new();
        ppa_trace::write_trace(&t, &mut bin, ppa_trace::TraceFormat::Binary).unwrap();
        let err = event_based_sharded_from_reader(bin.as_slice(), &spec(), 2).unwrap_err();
        assert!(matches!(err, crate::IngestError::Analysis(_)), "{err:?}");
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = event_based_sharded(&Trace::new(TraceKind::Measured), &spec(), 4).unwrap();
        assert!(r.trace.is_empty());
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let t = TraceBuilder::measured().on(0).at(5).await_end(0, 0).build();
        assert!(matches!(
            event_based_sharded(&t, &spec(), 2),
            Err(AnalysisError::Trace(_))
        ));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn probes_record_per_shard_and_analyzer_metrics() {
        use crate::streaming::{AnalyzerProbes, EventBasedAnalyzer};

        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .loop_begin(0)
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .advance(0, 0)
            .on(1)
            .at(50)
            .await_begin(0, 0)
            .at(210)
            .await_end(0, 0)
            .on(0)
            .at(300)
            .barrier_enter(0)
            .on(1)
            .at(320)
            .barrier_enter(0)
            .on(0)
            .at(330)
            .barrier_exit(0)
            .on(1)
            .at(340)
            .barrier_exit(0)
            .on(0)
            .at(400)
            .loop_end(0)
            .build();

        let registry = Registry::new();
        let probes = ShardProbes::register(&registry);
        event_based_sharded_probed(&t, &spec(), 2, probes).unwrap();

        let snap = registry.snapshot();
        let total: u64 = snap
            .entries
            .iter()
            .filter(|m| m.name == "ppa_shard_events_total")
            .map(|m| match m.value {
                ppa_obs::MetricValue::Counter(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(total, t.len() as u64, "every event scanned by some shard");
        assert!(snap
            .entries
            .iter()
            .any(|m| m.name == "ppa_shard_throughput_eps"));
        assert!(snap
            .entries
            .iter()
            .any(|m| m.name == "ppa_shard_join_wait_ns"));

        let registry = Registry::new();
        let probes = AnalyzerProbes::register(&registry);
        let mut analyzer = EventBasedAnalyzer::with_probes(&spec(), probes);
        for e in t.iter() {
            analyzer.push(*e).unwrap();
        }
        let _ = analyzer.finish().unwrap();
        let snap = registry.snapshot();
        let counter = |name: &str| {
            snap.entries
                .iter()
                .find(|m| m.name == name)
                .map(|m| match m.value {
                    ppa_obs::MetricValue::Counter(c) => c,
                    _ => 0,
                })
                .unwrap_or(0)
        };
        assert_eq!(counter("ppa_events_pushed_total"), t.len() as u64);
        assert_eq!(counter("ppa_events_emitted_total"), t.len() as u64);
        // finish() zeroes the pipeline gauges once the stream is complete.
        let gauge = |name: &str| {
            snap.entries
                .iter()
                .find(|m| m.name == name)
                .map(|m| match m.value {
                    ppa_obs::MetricValue::Gauge(g) => g,
                    _ => f64::NAN,
                })
                .unwrap()
        };
        assert_eq!(gauge("ppa_resident_events"), 0.0);
        assert_eq!(gauge("ppa_open_sync_episodes"), 0.0);
    }
}
