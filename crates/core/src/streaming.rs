//! Incremental (streaming) event-based perturbation analysis.
//!
//! [`EventBasedAnalyzer`] consumes a measured trace one event at a time
//! and produces the approximated trace — plus await and barrier outcomes —
//! with memory proportional to the number of processors and *open*
//! synchronization episodes, not to the trace length. It applies exactly
//! the §4.2.3 approximation rules of the batch algorithm
//! ([`event_based`](crate::event_based)):
//!
//! ```text
//! ta(advance) = ta(u) + tm(advance) − tm(u) − α
//! ta(awaitB)  = ta(v) + tm(awaitB)  − tm(v) − β
//! ta(awaitE)  = ta(awaitB) + s_nowait              if ta(advance) ≤ ta(awaitB)
//!             = ta(advance) + s_wait               otherwise
//! ta(barrier exit) = max over enters ta(enter) + barrier_release
//! ```
//!
//! and is observationally identical to the batch analysis: the same
//! approximated events in the same (sorted) order, the same outcomes, and
//! the same error for infeasible traces.
//!
//! # How it stays bounded
//!
//! The analyzer carries only *frontier* state:
//!
//! - per processor: the last event's measured and approximated times and
//!   the pending `awaitB`, if any;
//! - the latest loop-begin marker (the fork anchor of §4.2.3);
//! - *parked* events whose approximated time is not yet computable — an
//!   `awaitE` whose partner `advance` has not arrived, a barrier exit
//!   whose episode is still open — each holding the unresolved
//!   dependencies that will wake it;
//! - a small reorder buffer of resolved events not yet safe to emit.
//!
//! Emission is watermark-driven: a resolved event leaves the buffer once
//! every event that could still resolve earlier provably cannot precede
//! it. The watermark is the minimum over the per-processor frontiers
//! (advanced by the global measured clock, which bounds any future
//! same-thread event from below), the fork anchor, and the registered
//! floors of open synchronization constructs. In a feasible trace every
//! construct closes within a bounded horizon, so the buffer stays small;
//! [`StreamStats::peak_resident`] reports the observed maximum.
//!
//! The advance tag table is the one structure that grows with the number
//! of *distinct* tags (as in the batch analysis): lenient pairing allows
//! an `awaitE` to precede its partner `advance` event, so no tag can be
//! retired before the trace ends.

use crate::error::AnalysisError;
use crate::event_based::{AwaitOutcome, BarrierOutcome, EpisodeOutcome};
use ppa_obs::{Counter, Gauge, Registry};
use ppa_trace::{
    BarrierId, EpisodeFamily, Event, EventKind, LockId, OverheadSpec, ProcessorId, SemId, Span,
    SyncTag, SyncVarId, TaskId, Time, TraceError,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Observability probes for [`EventBasedAnalyzer`].
///
/// The analyzer always carries a set of these; the default
/// ([`AnalyzerProbes::noop`]) is fully detached, so an unobserved
/// analyzer pays one branch per push and nothing on the drain path.
/// Attach real metrics with [`AnalyzerProbes::register`]. Gauges are
/// refreshed on the drain cadence (every 16 pushes), not per event, so
/// their cost is amortized away from the hot path.
#[derive(Clone, Debug, Default)]
pub struct AnalyzerProbes {
    /// Measured events accepted by `push` (`ppa_events_pushed_total`).
    pub events_pushed: Counter,
    /// Approximated events moved to the output (`ppa_events_emitted_total`).
    pub events_emitted: Counter,
    /// Nanoseconds between the newest arrival and the emission watermark
    /// (`ppa_watermark_lag`).
    pub watermark_lag: Gauge,
    /// Resident analysis state: parked + buffered events + episode records
    /// (`ppa_resident_events`).
    pub resident_events: Gauge,
    /// Barrier episodes currently open (`ppa_open_sync_episodes`).
    pub open_sync_episodes: Gauge,
    /// Approximated-time computations clamped at an underflow on the
    /// §4.2.3 hot path (`ppa_core_clamped_approx_total`).
    pub clamped_approx: Counter,
}

impl AnalyzerProbes {
    /// Detached probes: every record is discarded.
    pub fn noop() -> Self {
        AnalyzerProbes::default()
    }

    /// Registers the analyzer metrics on `registry`.
    pub fn register(registry: &Registry) -> Self {
        AnalyzerProbes {
            events_pushed: registry.counter(
                "ppa_events_pushed_total",
                "Measured events accepted by the streaming analyzer.",
            ),
            events_emitted: registry.counter(
                "ppa_events_emitted_total",
                "Approximated events emitted by the streaming analyzer.",
            ),
            watermark_lag: registry.gauge(
                "ppa_watermark_lag",
                "Nanoseconds between the newest arrival and the emission watermark.",
            ),
            resident_events: registry.gauge(
                "ppa_resident_events",
                "Resident analyzer state: parked plus buffered events plus episode records.",
            ),
            open_sync_episodes: registry.gauge(
                "ppa_open_sync_episodes",
                "Barrier episodes currently open in the streaming analyzer.",
            ),
            clamped_approx: registry.counter(
                "ppa_core_clamped_approx_total",
                "Approximated-time clamps on the §4.2.3 hot path (an instrumentation \
                 overhead exceeded the inter-event delta, so the would-be-negative \
                 correction was clamped to zero).",
            ),
        }
    }
}

/// FxHash-style multiply-rotate hasher. Every key hashed by the analyzer
/// is a small fixed-size integer tuple, where the default SipHash's
/// per-call setup cost dominates the whole map operation.
#[derive(Clone, Copy, Default)]
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_ne_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// One item of analyzer output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamOutput {
    /// An approximated event. Events are emitted in the approximated
    /// trace's final (sorted) order.
    Event(Event),
    /// A completed await. `ordinal` is the arrival index of the `awaitE`
    /// in the measured trace; sorting outcomes by it reproduces the batch
    /// analysis's `awaits` order.
    Await {
        /// Arrival index of the `awaitE` event.
        ordinal: usize,
        /// The await, in approximated time.
        outcome: AwaitOutcome,
    },
    /// One processor's passage through a completed barrier episode.
    /// `ordinal` is the arrival index of the episode's first enter;
    /// sorting by it (stably) reproduces the batch `barriers` order.
    Barrier {
        /// Arrival index of the episode's first `BarrierEnter`.
        ordinal: usize,
        /// The passage, in approximated time.
        outcome: BarrierOutcome,
    },
    /// A completed lock/semaphore/task episode. `ordinal` is the arrival
    /// index of the blocked event (lock acquire, semaphore P, or the
    /// parent's join-return); sorting by it reproduces the batch
    /// `episodes` order.
    Episode {
        /// Arrival index of the blocked event.
        ordinal: usize,
        /// The episode, in approximated time.
        outcome: EpisodeOutcome,
    },
}

/// Resource counters for one analyzer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Events pushed.
    pub events: usize,
    /// Maximum number of simultaneously parked (unresolvable) events.
    pub peak_parked: usize,
    /// Maximum size of the emission reorder buffer.
    pub peak_buffered: usize,
    /// Maximum resident analysis state: parked events + buffered events +
    /// open barrier episodes. This is the `O(processors + open episodes)`
    /// quantity the streaming engine bounds; compare it to `events` to see
    /// the saving over batch analysis.
    pub peak_resident: usize,
    /// §4.2.3 value computations whose overhead correction exceeded the
    /// available delta and was clamped to keep the approximated time
    /// non-negative (locally non-decreasing). A nonzero count means the
    /// instrumentation overhead model overstates at least one event's
    /// cost relative to the measured inter-event spacing — the
    /// "instrumentation uncertainty" Malony warns about — and the
    /// approximation is correspondingly less trustworthy there.
    pub clamped: usize,
}

/// Everything the analyzer still owes its caller after the last push.
#[derive(Debug, Clone)]
pub struct StreamTail {
    /// Outputs not yet drained, ending with the reorder buffer's flush.
    pub outputs: Vec<StreamOutput>,
    /// Final resource counters.
    pub stats: StreamStats,
    /// Events still parked when the stream ended — their dependencies
    /// never resolved. Always `0` from [`EventBasedAnalyzer::finish`]
    /// (it fails instead); nonzero only from
    /// [`EventBasedAnalyzer::finish_lenient`], where a decode gap may have
    /// swallowed a partner `advance` or a barrier participant.
    pub unresolved: usize,
}

/// Which dependency slot of a parked event a delivered value fills.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum Slot {
    /// The time basis (same-thread predecessor or fork anchor).
    Basis,
    /// The `awaitB` of an `awaitE`.
    Begin,
    /// The partner `advance` of an `awaitE`, or the enabling event of a
    /// blocked lock/sem/task episode completion.
    Advance,
    /// Ordering-only dependency (a barrier exit's own enter): the value
    /// participates in the watermark floor but not in the event's time.
    Order,
}

/// How a parked event's approximate time will be computed.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Rule {
    /// Generic rule: `ta = ta(basis) + (tm − tm(basis)) − overhead`.
    Chain {
        basis_tm: Time,
        basis_ta: Option<Time>,
    },
    /// The `awaitE` rule (§4.2.3, both Figure 2 cases).
    AwaitEnd { begin_ta: Option<Time>, adv: Adv },
    /// A barrier exit: the value arrives whole when the episode resolves.
    Exit { value: Option<Time> },
    /// A blocked lock/sem/task completion (acquire, P, join-return): the
    /// awaitE rule with the chain value as the ready time and the enabling
    /// event in the advance's role. `basis_tm == None` is the origin rule
    /// for the ready time.
    Blocked {
        basis_tm: Option<Time>,
        basis_ta: Option<Time>,
        dep: Adv,
    },
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum Adv {
    /// Pre-advanced tag: no partner needed, never waits.
    NotNeeded,
    /// Partner advance not yet arrived or not yet resolved.
    Pending,
    /// Partner advance resolved at this approximated time.
    Got(Time),
}

/// A parked event: pushed, but not yet resolvable.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    event: Event,
    /// Outstanding dependency count.
    pending: u32,
    rule: Rule,
    /// Watermark floors this node has registered (removed on resolution).
    anchors: Vec<Time>,
    /// Parked events waiting on this one, with the slot each fills.
    waiters: Vec<(usize, Slot)>,
}

/// Per-processor frontier state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProcState {
    last_id: usize,
    last_tm: Time,
    /// Approximated time of the last event, once resolved.
    last_ta: Option<Time>,
    pending_await: Option<PendingAwait>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingAwait {
    var: SyncVarId,
    tag: SyncTag,
    begin_id: usize,
    /// Set (and registered as a watermark floor) when the begin resolves.
    begin_ta: Option<Time>,
}

/// The global fork anchor: the latest loop-begin marker.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct LoopAnchor {
    id: usize,
    tm: Time,
    ta: Option<Time>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdvanceRec {
    id: usize,
    ta: Option<Time>,
}

/// Per-lock scan state (the streaming twin of the batch validator's).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LockSt {
    holder: Option<ProcessorId>,
    /// Arrival index of the lock's latest release — the enabling event of
    /// the next acquire.
    last_release: Option<usize>,
}

/// Per-semaphore scan state: V's in arrival order, consumed FIFO.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct SemSt {
    releases: Vec<usize>,
    acquired: usize,
}

impl SemSt {
    /// The next unconsumed V's arrival index, if the count is positive.
    fn pop_release(&mut self) -> Option<usize> {
        let d = self.releases.get(self.acquired).copied();
        if d.is_some() {
            self.acquired += 1;
        }
        d
    }
}

/// Per-task scan state across the four-event fork/join protocol
/// (spawn, child begin, child end, parent join-return).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TaskSt {
    spawn_id: usize,
    spawn_tm: Time,
    /// Set (and registered as a watermark floor) when the spawn resolves;
    /// the floor's ownership transfers to the child's begin fork.
    spawn_ta: Option<Time>,
    spawn_proc: ProcessorId,
    /// Set by the child's begin fork.
    child_proc: Option<ProcessorId>,
    /// Arrival index of the child's end join, once seen.
    end_id: Option<usize>,
    end_proc: Option<ProcessorId>,
    /// Processor of the latest fork/join touching this task — the batch
    /// validator's open-task error attribution.
    last_proc: ProcessorId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EnterRec {
    id: usize,
    proc: ProcessorId,
    key: (Time, u64, ProcessorId),
    ta: Option<Time>,
}

/// One barrier episode in flight.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Episode {
    barrier: BarrierId,
    enters: Vec<EnterRec>,
    exits: Vec<(usize, ProcessorId)>,
    first_exit_key: Option<(Time, u64, ProcessorId)>,
    /// Enters whose approximated time is still unknown.
    unresolved_enters: usize,
    /// All exits have arrived; resolves when `unresolved_enters == 0`.
    closed: bool,
    /// Watermark floors registered by resolved enters.
    anchors: Vec<Time>,
}

/// An entry of the emission reorder buffer, ordered like the final trace:
/// by the approximated event's own sort key, with the arrival index as the
/// final tie-break (mirroring the batch analysis's stable sort).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EmitEntry {
    event: Event,
    idx: usize,
}

impl EmitEntry {
    #[inline]
    fn key(&self) -> (Time, u64, ProcessorId, usize) {
        (self.event.time, self.event.seq, self.event.proc, self.idx)
    }
}

impl PartialEq for EmitEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for EmitEntry {}
impl PartialOrd for EmitEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EmitEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Serializable image of an [`EventBasedAnalyzer`]'s complete state.
///
/// Produced by [`EventBasedAnalyzer::snapshot`], consumed by
/// [`EventBasedAnalyzer::restore`]. The fields are private: the image is
/// an opaque continuation token, meaningful only to the analyzer version
/// that wrote it (the checkpoint container guards this with a format
/// version and checksum). It serializes with `serde` — snapshots of equal
/// analyzer states produce identical JSON, which is what makes
/// kill-and-resume byte-reproducible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzerSnapshot {
    oh: OverheadSpec,
    next_idx: usize,
    last_key: Option<(Time, u64, ProcessorId)>,
    last_tm: Time,
    serial_proc: Option<ProcessorId>,
    fatal: Option<TraceError>,
    scan_error: Option<TraceError>,
    barrier_error: Option<TraceError>,
    episode_error: Option<TraceError>,
    procs: Vec<Option<ProcState>>,
    /// The advance table, packed as flat quads
    /// `[var, zigzag(tag), id, ta_nanos + 1 (0 = unresolved)]`. This is
    /// the one analyzer structure that grows with the trace's whole
    /// synchronization history rather than its live frontier, so it gets
    /// a numbers-only layout that serializes without per-entry
    /// allocations — checkpoint cadence work is dominated by this field.
    advances: Vec<u64>,
    missing_adv: Vec<(usize, (SyncVarId, SyncTag))>,
    latest_lb: Option<LoopAnchor>,
    episodes: Vec<(u64, Episode)>,
    open_by_barrier: Vec<(BarrierId, u64)>,
    next_ep_uid: u64,
    parked: Vec<(usize, Node)>,
    awaiting_advance: Vec<((SyncVarId, SyncTag), Vec<usize>)>,
    locks: Vec<(LockId, LockSt)>,
    sems: Vec<(SemId, SemSt)>,
    tasks: Vec<(TaskId, TaskSt)>,
    dep_ta: Vec<(usize, Option<Time>)>,
    spawn_watch: Vec<(usize, TaskId)>,
    anchors: Vec<(Time, u32)>,
    buffer: Vec<EmitEntry>,
    out: Vec<StreamOutput>,
    since_drain: u32,
    stats: StreamStats,
}

/// Incremental image of an [`EventBasedAnalyzer`]: everything a
/// [`snapshot`](EventBasedAnalyzer::snapshot) carries except the advance
/// table, of which only the entries touched since the last checkpoint are
/// included. Produced by
/// [`delta_snapshot`](EventBasedAnalyzer::delta_snapshot); folded into a
/// base snapshot by [`AnalyzerSnapshot::apply_delta`].
///
/// The advance table is the analyzer's only structure that grows with
/// the trace's whole synchronization history — between checkpoints only
/// a handful of its entries change, and re-serializing all of it is what
/// made full-snapshot checkpoint cadences cost ~31% of analysis time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzerDelta {
    /// A full frontier snapshot whose `advances` holds only the dirty
    /// quads (same packed layout, same key order).
    frontier: AnalyzerSnapshot,
    /// Total advance-table entries at delta time; the merged table must
    /// come out exactly this long, or the delta was applied to the wrong
    /// base.
    advances_len: u64,
}

impl AnalyzerSnapshot {
    /// Folds `delta` into this snapshot, producing the image the
    /// analyzer's full [`snapshot`](EventBasedAnalyzer::snapshot) would
    /// have produced at delta time. Fails (leaving `self` untouched)
    /// when the delta provably does not extend this base.
    pub fn apply_delta(&mut self, delta: &AnalyzerDelta) -> Result<(), String> {
        if !self.advances.len().is_multiple_of(4)
            || !delta.frontier.advances.len().is_multiple_of(4)
        {
            return Err("advance table is not packed as quads".into());
        }
        // Merge the dirty quads into the base's advance table. Both are
        // sorted by (var, tag) — note the stored tag is zigzag-mapped,
        // so ordering comparisons must unmap it first.
        let key = |quad: &[u64]| -> (u64, i64) {
            (quad[0], ((quad[1] >> 1) as i64) ^ -((quad[1] & 1) as i64))
        };
        let mut merged = Vec::with_capacity(self.advances.len() + delta.frontier.advances.len());
        let mut base = self.advances.chunks_exact(4).peekable();
        let mut dirty = delta.frontier.advances.chunks_exact(4).peekable();
        while let (Some(b), Some(d)) = (base.peek(), dirty.peek()) {
            match key(b).cmp(&key(d)) {
                std::cmp::Ordering::Less => merged.extend_from_slice(base.next().unwrap()),
                std::cmp::Ordering::Greater => merged.extend_from_slice(dirty.next().unwrap()),
                std::cmp::Ordering::Equal => {
                    // Dirty entry supersedes the base's (a resolved ta).
                    base.next();
                    merged.extend_from_slice(dirty.next().unwrap());
                }
            }
        }
        for rest in base.chain(dirty) {
            merged.extend_from_slice(rest);
        }
        if merged.len() as u64 != delta.advances_len * 4 {
            return Err(format!(
                "delta expects {} advance entries after merge, got {} — \
                 applied to the wrong base snapshot?",
                delta.advances_len,
                merged.len() / 4
            ));
        }
        let mut next = delta.frontier.clone();
        next.advances = merged;
        *self = next;
        Ok(())
    }
}

/// Streaming event-based perturbation analyzer (see the module docs).
///
/// Feed measured events in trace order with [`push`](Self::push), drain
/// incremental output with [`next_output`](Self::next_output), and call
/// [`finish`](Self::finish) for the tail and final verdict. The verdict —
/// the approximated events, the outcomes, and any [`AnalysisError`] — is
/// identical to running [`event_based`](crate::event_based) on the whole
/// trace. Validation errors other than a broken total order are deferred
/// to [`finish`](Self::finish), which reports the same error the batch
/// validator would have chosen.
#[derive(Debug)]
pub struct EventBasedAnalyzer {
    oh: OverheadSpec,
    max_instr_oh: Span,

    // Arrival bookkeeping.
    next_idx: usize,
    last_key: Option<(Time, u64, ProcessorId)>,
    last_tm: Time,
    serial_proc: Option<ProcessorId>,

    // Deferred errors, in batch-validator precedence order.
    fatal: Option<TraceError>,
    scan_error: Option<TraceError>,
    barrier_error: Option<TraceError>,
    episode_error: Option<TraceError>,

    // Validation (scan) state.
    procs: Vec<Option<ProcState>>,
    advances: FxMap<(SyncVarId, SyncTag), AdvanceRec>,
    /// Advance-table entries inserted or mutated since the last
    /// [`clear_advance_dirty`](Self::clear_advance_dirty) — the working
    /// set an incremental checkpoint must carry. Ordered so delta
    /// snapshots serialize deterministically without a sort.
    dirty_advances: BTreeSet<(SyncVarId, SyncTag)>,
    /// `awaitE`s whose partner advance has not arrived, by end arrival
    /// index — the batch validator's `MissingAdvance` candidates.
    missing_adv: BTreeMap<usize, (SyncVarId, SyncTag)>,
    missing_by_tag: FxMap<(SyncVarId, SyncTag), Vec<usize>>,

    // Structure state.
    latest_lb: Option<LoopAnchor>,

    // Barrier episodes.
    episodes: FxMap<u64, Episode>,
    open_by_barrier: BTreeMap<BarrierId, u64>,
    ep_of_enter: FxMap<usize, u64>,
    next_ep_uid: u64,

    // Lock, semaphore, and fork/join episodes.
    locks: BTreeMap<LockId, LockSt>,
    sems: BTreeMap<SemId, SemSt>,
    tasks: BTreeMap<TaskId, TaskSt>,
    /// Resolved times of live enabling events (releases, V's, child
    /// ends), removed when the blocked side consumes them.
    dep_ta: FxMap<usize, Option<Time>>,
    /// Open spawns (a task's first fork) awaiting the child's begin, by
    /// arrival index: the spawn's resolved time is held as a watermark
    /// floor until the child's fork takes ownership of it.
    spawn_watch: FxMap<usize, TaskId>,

    // Dataflow resolution.
    parked: FxMap<usize, Node>,
    /// Parked `awaitE`s waiting for an advance on this tag to *arrive*.
    awaiting_advance: FxMap<(SyncVarId, SyncTag), Vec<usize>>,
    /// Watermark floor multiset.
    anchors: BTreeMap<Time, u32>,

    // Emission.
    buffer: BinaryHeap<Reverse<EmitEntry>>,
    out: VecDeque<StreamOutput>,
    /// Pushes since the last watermark check (drains run on a cadence to
    /// amortize the watermark computation).
    since_drain: u32,

    stats: StreamStats,
    probes: AnalyzerProbes,
}

impl EventBasedAnalyzer {
    /// Creates an analyzer applying the given overhead model.
    pub fn new(overheads: &OverheadSpec) -> Self {
        let max_instr_oh = [
            overheads.statement_event,
            overheads.marker_event,
            overheads.advance_instr,
            overheads.await_begin_instr,
            overheads.await_end_instr,
            overheads.barrier_instr,
        ]
        .into_iter()
        .max()
        .unwrap_or(Span::ZERO);
        EventBasedAnalyzer {
            oh: *overheads,
            max_instr_oh,
            next_idx: 0,
            last_key: None,
            last_tm: Time::ZERO,
            serial_proc: None,
            fatal: None,
            scan_error: None,
            barrier_error: None,
            episode_error: None,
            procs: Vec::new(),
            advances: FxMap::default(),
            dirty_advances: BTreeSet::new(),
            missing_adv: BTreeMap::new(),
            missing_by_tag: FxMap::default(),
            latest_lb: None,
            episodes: FxMap::default(),
            open_by_barrier: BTreeMap::new(),
            ep_of_enter: FxMap::default(),
            next_ep_uid: 0,
            locks: BTreeMap::new(),
            sems: BTreeMap::new(),
            tasks: BTreeMap::new(),
            dep_ta: FxMap::default(),
            spawn_watch: FxMap::default(),
            parked: FxMap::default(),
            awaiting_advance: FxMap::default(),
            anchors: BTreeMap::new(),
            buffer: BinaryHeap::new(),
            out: VecDeque::new(),
            since_drain: 0,
            stats: StreamStats::default(),
            probes: AnalyzerProbes::noop(),
        }
    }

    /// Like [`EventBasedAnalyzer::new`], recording pipeline metrics into
    /// `probes` as the stream is analyzed.
    pub fn with_probes(overheads: &OverheadSpec, probes: AnalyzerProbes) -> Self {
        let mut a = Self::new(overheads);
        a.probes = probes;
        a
    }

    /// Distance between the newest arrival and the emission watermark, in
    /// measured time. A growing lag means buffered events are waiting on
    /// an open synchronization construct (e.g. a barrier episode still
    /// collecting enters); a small steady lag is the instrumentation
    /// overhead horizon.
    pub fn watermark_lag(&self) -> Span {
        self.last_tm.saturating_since(self.watermark())
    }

    /// Events currently resident in the analyzer's live state: parked
    /// events waiting on lost dependencies, buffered events below the
    /// emission watermark, and open synchronization episodes. The peak
    /// over a whole run is reported as [`StreamStats::peak_resident`];
    /// this is the instantaneous value, which long-running services use
    /// to bound per-session memory (e.g. `ppa serve`'s per-tenant
    /// resident-bytes quota).
    pub fn resident(&self) -> usize {
        self.parked.len() + self.buffer.len() + self.episodes.len()
    }

    /// Feeds the next measured event.
    ///
    /// Returns an error only for a broken total order — the one condition
    /// that cannot wait, because it invalidates every later judgment. All
    /// other validation failures are deferred to [`finish`](Self::finish)
    /// so that the reported error matches the batch validator's choice.
    pub fn push(&mut self, event: Event) -> Result<(), AnalysisError> {
        if let Some(e) = &self.fatal {
            return Err(e.clone().into());
        }
        if matches!(event.kind, EventKind::Repeat { .. }) {
            // A repeat record stands for events this analyzer never
            // sees; silently treating it as a chain event would corrupt
            // every later approximation. Callers expand first (see
            // `ppa_core::RepeatExpander`).
            return Err(AnalysisError::UnrecognizedStructure {
                detail: format!(
                    "repeat record at seq {} on {}: expand the trace before analysis",
                    event.seq, event.proc
                ),
            });
        }
        let idx = self.next_idx;
        self.next_idx += 1;
        self.stats.events += 1;
        self.probes.events_pushed.inc();
        let key = event.order_key();
        if let Some(last) = self.last_key {
            if last > key {
                let e = TraceError::NotTotallyOrdered { position: idx };
                self.fatal = Some(e.clone());
                return Err(e.into());
            }
        }
        self.last_key = Some(key);
        self.last_tm = event.time;
        if self.serial_proc.is_none() {
            self.serial_proc = Some(event.proc);
        }
        let pi = event.proc.index();
        if pi >= self.procs.len() {
            self.procs.resize_with(pi + 1, || None);
        }

        // --- Fast path ---------------------------------------------------
        // A plain chain event (no sync/barrier/loop-begin semantics) whose
        // basis is already resolved needs none of the dataflow machinery:
        // apply the generic §4.2.3 rule and buffer it directly. This is the
        // bulk of any trace.
        if self.scan_error.is_none()
            && self.barrier_error.is_none()
            && self.episode_error.is_none()
            && !matches!(
                event.kind,
                EventKind::Advance { .. }
                    | EventKind::AwaitBegin { .. }
                    | EventKind::AwaitEnd { .. }
                    | EventKind::BarrierEnter { .. }
                    | EventKind::BarrierExit { .. }
                    | EventKind::LoopBegin { .. }
                    | EventKind::LockAcquire { .. }
                    | EventKind::LockRelease { .. }
                    | EventKind::SemAcquire { .. }
                    | EventKind::SemRelease { .. }
                    | EventKind::TaskFork { .. }
                    | EventKind::TaskJoin { .. }
            )
        {
            let latest_lb = self.latest_lb;
            let is_serial = Some(event.proc) == self.serial_proc;
            if let Some(s) = self.procs[pi].as_mut() {
                // Basis selection, prev-exists case — identical to the
                // general path below.
                let fork = !is_serial && latest_lb.map(|l| l.id > s.last_id).unwrap_or(false);
                let basis = if fork {
                    let l = latest_lb.expect("fork implies an anchor");
                    l.ta.map(|ta| (l.tm, ta))
                } else {
                    s.last_ta.map(|ta| (s.last_tm, ta))
                };
                if let Some((b_tm, b_ta)) = basis {
                    let oh = self.oh.instr_overhead(&event.kind);
                    // The total-order check above guarantees the basis is
                    // not in the future; only the overhead can underflow.
                    debug_assert!(event.time >= b_tm, "basis precedes the event");
                    let delta = event.time.saturating_since(b_tm);
                    let value = b_ta + delta.saturating_sub(oh);
                    s.last_id = idx;
                    s.last_tm = event.time;
                    s.last_ta = Some(value);
                    if oh > delta {
                        self.note_clamp();
                    }
                    self.buffer.push(Reverse(EmitEntry {
                        event: Event {
                            time: value,
                            ..event
                        },
                        idx,
                    }));
                    self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffer.len());
                    let resident = self.parked.len() + self.buffer.len() + self.episodes.len();
                    self.stats.peak_resident = self.stats.peak_resident.max(resident);
                    self.maybe_drain();
                    return Ok(());
                }
            }
            // No predecessor, or a parked basis: take the general path.
        }

        // --- Scan (validation) step, frozen by the first scan error. ----
        let mut await_info: Option<PendingAwait> = None;
        if self.scan_error.is_none() {
            match event.kind {
                EventKind::Advance { var, tag } => {
                    if tag.is_pre_advanced() {
                        self.scan_error = Some(TraceError::NegativeAdvanceTag { var, tag });
                    } else {
                        match self.advances.entry((var, tag)) {
                            std::collections::hash_map::Entry::Occupied(_) => {
                                self.scan_error = Some(TraceError::DuplicateAdvance { var, tag });
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(AdvanceRec { id: idx, ta: None });
                                self.dirty_advances.insert((var, tag));
                                if !self.missing_by_tag.is_empty() {
                                    if let Some(ends) = self.missing_by_tag.remove(&(var, tag)) {
                                        for end in ends {
                                            self.missing_adv.remove(&end);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                EventKind::AwaitBegin { var, tag } => {
                    let ps = &mut self.procs[pi];
                    let nested = ps.as_ref().is_some_and(|s| s.pending_await.is_some());
                    if nested {
                        self.scan_error = Some(TraceError::NestedAwait {
                            proc: event.proc,
                            var,
                            tag,
                        });
                    } else {
                        let pending = PendingAwait {
                            var,
                            tag,
                            begin_id: idx,
                            begin_ta: None,
                        };
                        match ps {
                            Some(s) => s.pending_await = Some(pending),
                            None => {
                                *ps = Some(ProcState {
                                    // Placeholder; overwritten below before
                                    // the frontier is consulted.
                                    last_id: idx,
                                    last_tm: event.time,
                                    last_ta: None,
                                    pending_await: Some(pending),
                                });
                            }
                        }
                    }
                }
                EventKind::AwaitEnd { var, tag } => {
                    let taken = self.procs[pi].as_mut().and_then(|s| s.pending_await.take());
                    match taken {
                        Some(p) if p.var == var && p.tag == tag => {
                            if !tag.is_pre_advanced() && !self.advances.contains_key(&(var, tag)) {
                                self.missing_adv.insert(idx, (var, tag));
                                self.missing_by_tag.entry((var, tag)).or_default().push(idx);
                            }
                            await_info = Some(p);
                        }
                        _ => {
                            self.scan_error = Some(TraceError::UnmatchedAwaitEnd {
                                proc: event.proc,
                                var,
                                tag,
                            });
                        }
                    }
                }
                _ => {}
            }
            if self.scan_error.is_some() {
                return Ok(());
            }
        } else {
            // Frozen: only the total-order check remains live.
            return Ok(());
        }

        // --- Barrier (episode) step, frozen by the first barrier error. --
        let mut enter_ep: Option<u64> = None;
        let mut exit_ep: Option<u64> = None;
        if self.barrier_error.is_none() {
            match event.kind {
                EventKind::BarrierEnter { barrier } => {
                    let uid = *self.open_by_barrier.entry(barrier).or_insert_with(|| {
                        let uid = self.next_ep_uid;
                        self.next_ep_uid += 1;
                        self.episodes.insert(
                            uid,
                            Episode {
                                barrier,
                                enters: Vec::new(),
                                exits: Vec::new(),
                                first_exit_key: None,
                                unresolved_enters: 0,
                                closed: false,
                                anchors: Vec::new(),
                            },
                        );
                        uid
                    });
                    let ep = self.episodes.get_mut(&uid).expect("episode is open");
                    if ep.enters.iter().any(|r| r.proc == event.proc) {
                        self.barrier_error = Some(TraceError::BarrierProtocol {
                            barrier,
                            proc: event.proc,
                        });
                    } else {
                        ep.enters.push(EnterRec {
                            id: idx,
                            proc: event.proc,
                            key,
                            ta: None,
                        });
                        ep.unresolved_enters += 1;
                        self.ep_of_enter.insert(idx, uid);
                        enter_ep = Some(uid);
                    }
                }
                EventKind::BarrierExit { barrier } => {
                    match self.open_by_barrier.get(&barrier).copied() {
                        None => {
                            self.barrier_error = Some(TraceError::BarrierProtocol {
                                barrier,
                                proc: event.proc,
                            });
                        }
                        Some(uid) => {
                            let ep = self.episodes.get_mut(&uid).expect("episode is open");
                            let entered = ep.enters.iter().any(|r| r.proc == event.proc);
                            let exited = ep.exits.iter().any(|&(_, p)| p == event.proc);
                            if !entered || exited {
                                self.barrier_error = Some(TraceError::BarrierProtocol {
                                    barrier,
                                    proc: event.proc,
                                });
                            } else {
                                ep.exits.push((idx, event.proc));
                                if ep.first_exit_key.is_none() {
                                    ep.first_exit_key = Some(key);
                                }
                                if ep.exits.len() == ep.enters.len() {
                                    let last_enter_key =
                                        ep.enters.last().expect("episode has enters").key;
                                    let first_exit_key =
                                        ep.first_exit_key.expect("episode has exits");
                                    if first_exit_key < last_enter_key {
                                        self.barrier_error =
                                            Some(TraceError::BarrierExitBeforeLastEnter {
                                                barrier,
                                            });
                                    } else {
                                        ep.closed = true;
                                        self.open_by_barrier.remove(&barrier);
                                        exit_ep = Some(uid);
                                    }
                                } else {
                                    exit_ep = Some(uid);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // --- Lock/sem/task (episode) step, frozen by its first error. ----
        // The barrier gate mirrors the batch validator, which collects
        // barriers before episodes: once a barrier error is pending, no
        // later episode verdict can matter.
        //
        // `blocked`: this event completes an episode under the blocked
        // rule, with the enabling event's arrival index and resolved time
        // (if any). `basis_override`: a child's begin fork chains from its
        // spawn, not from its own processor's frontier.
        let mut blocked: Option<Option<(usize, Option<Time>)>> = None;
        let mut basis_override: Option<(usize, Time, Option<Time>)> = None;
        if self.barrier_error.is_none() && self.episode_error.is_none() {
            match event.kind {
                EventKind::LockAcquire { lock } => {
                    let st = self.locks.entry(lock).or_insert(LockSt {
                        holder: None,
                        last_release: None,
                    });
                    if st.holder.is_some() {
                        self.episode_error = Some(TraceError::LockProtocol {
                            lock,
                            proc: event.proc,
                        });
                    } else {
                        st.holder = Some(event.proc);
                        let dep = st.last_release;
                        blocked = Some(dep.map(|d| (d, self.take_dep(d))));
                    }
                }
                EventKind::LockRelease { lock } => {
                    let held = self
                        .locks
                        .get_mut(&lock)
                        .filter(|st| st.holder == Some(event.proc));
                    match held {
                        Some(st) => {
                            st.holder = None;
                            st.last_release = Some(idx);
                            self.dep_ta.insert(idx, None);
                        }
                        None => {
                            self.episode_error = Some(TraceError::LockProtocol {
                                lock,
                                proc: event.proc,
                            });
                        }
                    }
                }
                EventKind::SemAcquire { sem } => {
                    let dep = self.sems.entry(sem).or_default().pop_release();
                    match dep {
                        Some(d) => blocked = Some(Some((d, self.take_dep(d)))),
                        None => {
                            self.episode_error = Some(TraceError::SemUnderflow {
                                sem,
                                proc: event.proc,
                            });
                        }
                    }
                }
                EventKind::SemRelease { sem } => {
                    self.sems.entry(sem).or_default().releases.push(idx);
                    self.dep_ta.insert(idx, None);
                }
                EventKind::TaskFork { task } => match self.tasks.entry(task) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(TaskSt {
                            spawn_id: idx,
                            spawn_tm: event.time,
                            spawn_ta: None,
                            spawn_proc: event.proc,
                            child_proc: None,
                            end_id: None,
                            end_proc: None,
                            last_proc: event.proc,
                        });
                        self.spawn_watch.insert(idx, task);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        let st = o.get_mut();
                        st.last_proc = event.proc;
                        if st.child_proc.is_some() || st.end_id.is_some() {
                            self.episode_error = Some(TraceError::TaskProtocol {
                                task,
                                proc: event.proc,
                            });
                        } else {
                            st.child_proc = Some(event.proc);
                            basis_override = Some((st.spawn_id, st.spawn_tm, st.spawn_ta));
                            let spawn_id = st.spawn_id;
                            self.spawn_watch.remove(&spawn_id);
                        }
                    }
                },
                EventKind::TaskJoin { task } => {
                    let mut ret_dep: Option<usize> = None;
                    match self.tasks.get_mut(&task) {
                        None => {
                            self.episode_error = Some(TraceError::TaskProtocol {
                                task,
                                proc: event.proc,
                            });
                        }
                        Some(st) => {
                            st.last_proc = event.proc;
                            if st.child_proc.is_none() {
                                // A join before the child ever began.
                                self.episode_error = Some(TraceError::TaskProtocol {
                                    task,
                                    proc: event.proc,
                                });
                            } else if st.end_id.is_none() {
                                // The child's end: an enabling event.
                                st.end_id = Some(idx);
                                st.end_proc = Some(event.proc);
                                self.dep_ta.insert(idx, None);
                            } else if st.spawn_proc != event.proc || st.child_proc != st.end_proc {
                                // Parent join-return, crosswise check: the
                                // spawn/return pair and the begin/end pair
                                // must each share a processor.
                                self.episode_error = Some(TraceError::TaskProtocol {
                                    task,
                                    proc: event.proc,
                                });
                            } else {
                                ret_dep = st.end_id;
                            }
                        }
                    }
                    if let Some(d) = ret_dep {
                        self.tasks.remove(&task);
                        blocked = Some(Some((d, self.take_dep(d))));
                    }
                }
                _ => {}
            }
        }

        // --- Resolution step, meaningful only while no error is pending. -
        if self.barrier_error.is_none() && self.episode_error.is_none() {
            self.resolve_event(
                event,
                idx,
                await_info,
                enter_ep,
                exit_ep,
                blocked,
                basis_override,
            );
        }

        // Stats + emission.
        let resident = self.parked.len() + self.buffer.len() + self.episodes.len();
        self.stats.peak_parked = self.stats.peak_parked.max(self.parked.len());
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffer.len());
        self.stats.peak_resident = self.stats.peak_resident.max(resident);
        self.maybe_drain();
        Ok(())
    }

    /// Takes the next available output, if any.
    pub fn next_output(&mut self) -> Option<StreamOutput> {
        self.out.pop_front()
    }

    /// Current resource counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Records one §4.2.3 underflow clamp: the overhead correction
    /// exceeded the measured delta, so the value rule held the
    /// approximated time at its basis instead of going negative. Counted
    /// (never silent) so downstream validation can distinguish a clean
    /// approximation from one that absorbed instrumentation uncertainty.
    #[inline]
    fn note_clamp(&mut self) {
        self.stats.clamped += 1;
        self.probes.clamped_approx.inc();
    }

    /// Ends the stream: reports the deferred validation verdict and, on
    /// success, flushes the reorder buffer.
    ///
    /// The error (if any) is exactly what [`event_based`](crate::event_based)
    /// would return for the same event sequence, chosen with the batch
    /// validator's precedence: broken total order, then scan errors in
    /// arrival order, then dangling `awaitB`s, missing advances, barrier
    /// protocol violations, open episodes, and finally unresolvable
    /// (cyclic) dependencies.
    pub fn finish(mut self) -> Result<StreamTail, AnalysisError> {
        if let Some(e) = self.fatal {
            return Err(e.into());
        }
        if let Some(e) = self.scan_error {
            return Err(e.into());
        }
        for (i, ps) in self.procs.iter().enumerate() {
            if let Some(p) = ps.as_ref().and_then(|s| s.pending_await) {
                return Err(TraceError::UnmatchedAwaitBegin {
                    proc: ProcessorId(i as u16),
                    var: p.var,
                    tag: p.tag,
                }
                .into());
            }
        }
        if let Some((_, &(var, tag))) = self.missing_adv.iter().next() {
            return Err(TraceError::MissingAdvance { var, tag }.into());
        }
        if let Some(e) = self.barrier_error {
            return Err(e.into());
        }
        if let Some((&barrier, &uid)) = self.open_by_barrier.iter().next() {
            let ep = &self.episodes[&uid];
            return Err(TraceError::BarrierArityMismatch {
                barrier,
                enters: ep.enters.len(),
                exits: ep.exits.len(),
            }
            .into());
        }
        if let Some(e) = self.episode_error {
            return Err(e.into());
        }
        if let Some((&lock, st)) = self.locks.iter().find(|(_, st)| st.holder.is_some()) {
            return Err(TraceError::LockHeldAtEnd {
                lock,
                proc: st.holder.expect("found by holder"),
            }
            .into());
        }
        if let Some((&task, st)) = self.tasks.iter().next() {
            return Err(TraceError::TaskProtocol {
                task,
                proc: st.last_proc,
            }
            .into());
        }
        if !self.parked.is_empty() {
            return Err(AnalysisError::CyclicDependencies {
                unresolved: self.parked.len(),
            });
        }
        // Flush the reorder buffer: nothing can precede anything now.
        let mut drained = 0u64;
        while let Some(Reverse(entry)) = self.buffer.pop() {
            self.out.push_back(StreamOutput::Event(entry.event));
            drained += 1;
        }
        self.probes.events_emitted.add(drained);
        self.probes.watermark_lag.set(0.0);
        self.probes.resident_events.set(0.0);
        self.probes.open_sync_episodes.set(0.0);
        Ok(StreamTail {
            outputs: self.out.into_iter().collect(),
            stats: self.stats,
            unresolved: 0,
        })
    }

    /// Ends the stream without a verdict: flushes everything resolvable
    /// and reports — rather than fails on — whatever could not resolve.
    ///
    /// This is the companion of lenient decoding. A decode gap can
    /// swallow a partner `advance`, one side of an await pair, or a
    /// barrier participant; [`finish`](Self::finish) would then report
    /// the trace as infeasible even though every *surviving* event was
    /// analyzed correctly. `finish_lenient` instead emits all resolved
    /// events (awaits and barrier passages included) and returns the
    /// count of still-parked events in [`StreamTail::unresolved`] so the
    /// caller can account for them alongside the decode gaps. Parked
    /// events are dropped — their approximated times were never
    /// computable.
    pub fn finish_lenient(mut self) -> StreamTail {
        let unresolved = self.parked.len();
        let mut drained = 0u64;
        while let Some(Reverse(entry)) = self.buffer.pop() {
            self.out.push_back(StreamOutput::Event(entry.event));
            drained += 1;
        }
        self.probes.events_emitted.add(drained);
        self.probes.watermark_lag.set(0.0);
        self.probes.resident_events.set(0.0);
        self.probes.open_sync_episodes.set(0.0);
        StreamTail {
            outputs: self.out.into_iter().collect(),
            stats: self.stats,
            unresolved,
        }
    }

    /// Serializes the analyzer's complete state into a plain data image.
    ///
    /// The image, embedded in a checkpoint file (see `ppa_core`'s
    /// checkpoint module), lets a later process [`restore`](Self::restore)
    /// the analyzer and continue the stream with observationally identical
    /// results: feeding the same remaining events to the restored analyzer
    /// produces the same outputs, stats, and verdict as never having
    /// stopped. Internal hash maps are stored key-sorted, so equal states
    /// serialize to equal bytes.
    pub fn snapshot(&self) -> AnalyzerSnapshot {
        let mut keys: Vec<(SyncVarId, SyncTag)> = self.advances.keys().copied().collect();
        keys.sort_unstable();
        let advances = self.pack_advances(keys.iter().copied());
        self.snapshot_with_advances(advances)
    }

    /// Packs the advance records for `keys` (which must be sorted) as
    /// flat quads — the [`AnalyzerSnapshot::advances`] layout.
    fn pack_advances(&self, keys: impl Iterator<Item = (SyncVarId, SyncTag)>) -> Vec<u64> {
        let mut out = Vec::with_capacity(keys.size_hint().0 * 4);
        for key in keys {
            let rec = &self.advances[&key];
            out.push(u64::from(key.0 .0));
            out.push(((key.1 .0 << 1) ^ (key.1 .0 >> 63)) as u64);
            out.push(rec.id as u64);
            out.push(rec.ta.map_or(0, |t| t.as_nanos() + 1));
        }
        out
    }

    fn snapshot_with_advances(&self, advances: Vec<u64>) -> AnalyzerSnapshot {
        fn sorted<K: Ord + Clone, V: Clone>(map: &FxMap<K, V>) -> Vec<(K, V)> {
            let mut v: Vec<(K, V)> = map.iter().map(|(k, x)| (k.clone(), x.clone())).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        }
        let mut buffer: Vec<EmitEntry> = self.buffer.iter().map(|Reverse(e)| e.clone()).collect();
        buffer.sort_by_key(|e| e.key());
        AnalyzerSnapshot {
            oh: self.oh,
            next_idx: self.next_idx,
            last_key: self.last_key,
            last_tm: self.last_tm,
            serial_proc: self.serial_proc,
            fatal: self.fatal.clone(),
            scan_error: self.scan_error.clone(),
            barrier_error: self.barrier_error.clone(),
            episode_error: self.episode_error.clone(),
            procs: self.procs.clone(),
            advances,
            missing_adv: self.missing_adv.iter().map(|(k, v)| (*k, *v)).collect(),
            latest_lb: self.latest_lb,
            episodes: sorted(&self.episodes),
            open_by_barrier: self.open_by_barrier.iter().map(|(k, v)| (*k, *v)).collect(),
            next_ep_uid: self.next_ep_uid,
            parked: sorted(&self.parked),
            awaiting_advance: sorted(&self.awaiting_advance),
            locks: self.locks.iter().map(|(k, v)| (*k, v.clone())).collect(),
            sems: self.sems.iter().map(|(k, v)| (*k, v.clone())).collect(),
            tasks: self.tasks.iter().map(|(k, v)| (*k, v.clone())).collect(),
            dep_ta: sorted(&self.dep_ta),
            spawn_watch: sorted(&self.spawn_watch),
            anchors: self.anchors.iter().map(|(k, v)| (*k, *v)).collect(),
            buffer,
            out: self.out.iter().copied().collect(),
            since_drain: self.since_drain,
            stats: self.stats,
        }
    }

    /// Serializes only what changed since the last
    /// [`clear_advance_dirty`](Self::clear_advance_dirty): the full
    /// frontier (which is bounded by the live synchronization horizon)
    /// plus the dirty subset of the advance table (the one structure
    /// that grows with the whole trace). Applying the delta to the
    /// previous snapshot with [`AnalyzerSnapshot::apply_delta`] yields
    /// exactly [`snapshot`](Self::snapshot)'s image.
    ///
    /// The dirty set is *not* cleared here — the caller clears it once
    /// the delta is durably written, so a failed write loses nothing.
    pub fn delta_snapshot(&self) -> AnalyzerDelta {
        let advances = self.pack_advances(self.dirty_advances.iter().copied());
        AnalyzerDelta {
            frontier: self.snapshot_with_advances(advances),
            advances_len: self.advances.len() as u64,
        }
    }

    /// Resets the dirty-advance set after a delta (or full) checkpoint
    /// has been durably written.
    pub fn clear_advance_dirty(&mut self) {
        self.dirty_advances.clear();
    }

    /// Rebuilds an analyzer from a [`snapshot`](Self::snapshot) image,
    /// with detached probes.
    pub fn restore(snapshot: &AnalyzerSnapshot) -> Self {
        Self::restore_with_probes(snapshot, AnalyzerProbes::noop())
    }

    /// Like [`restore`](Self::restore), recording pipeline metrics into
    /// `probes` from this point on (probe counters restart at zero — they
    /// meter the work of *this* process, not the cumulative analysis,
    /// which [`StreamStats`] carries across the checkpoint).
    pub fn restore_with_probes(snapshot: &AnalyzerSnapshot, probes: AnalyzerProbes) -> Self {
        fn unpack_advances(packed: &[u64]) -> FxMap<(SyncVarId, SyncTag), AdvanceRec> {
            packed
                .chunks_exact(4)
                .map(|quad| {
                    let var = SyncVarId(quad[0] as u32);
                    let tag = SyncTag(((quad[1] >> 1) as i64) ^ -((quad[1] & 1) as i64));
                    let ta = match quad[3] {
                        0 => None,
                        ns => Some(Time::from_nanos(ns - 1)),
                    };
                    (
                        (var, tag),
                        AdvanceRec {
                            id: quad[2] as usize,
                            ta,
                        },
                    )
                })
                .collect()
        }
        let s = snapshot.clone();
        let mut a = EventBasedAnalyzer::new(&s.oh);
        a.probes = probes;
        a.next_idx = s.next_idx;
        a.last_key = s.last_key;
        a.last_tm = s.last_tm;
        a.serial_proc = s.serial_proc;
        a.fatal = s.fatal;
        a.scan_error = s.scan_error;
        a.barrier_error = s.barrier_error;
        a.episode_error = s.episode_error;
        a.procs = s.procs;
        a.advances = unpack_advances(&s.advances);
        a.missing_adv = s.missing_adv.into_iter().collect();
        // `missing_by_tag` indexes `missing_adv` by tag, in end-arrival
        // order — which is exactly the BTreeMap's ascending key order.
        for (&end, &key) in &a.missing_adv {
            a.missing_by_tag.entry(key).or_default().push(end);
        }
        a.latest_lb = s.latest_lb;
        a.episodes = s.episodes.into_iter().collect();
        a.open_by_barrier = s.open_by_barrier.into_iter().collect();
        // `ep_of_enter` maps each live episode's enters back to it; dead
        // episodes were removed from both structures together.
        for (uid, ep) in &a.episodes {
            for rec in &ep.enters {
                a.ep_of_enter.insert(rec.id, *uid);
            }
        }
        a.next_ep_uid = s.next_ep_uid;
        a.parked = s.parked.into_iter().collect();
        a.awaiting_advance = s.awaiting_advance.into_iter().collect();
        a.locks = s.locks.into_iter().collect();
        a.sems = s.sems.into_iter().collect();
        a.tasks = s.tasks.into_iter().collect();
        a.dep_ta = s.dep_ta.into_iter().collect();
        a.spawn_watch = s.spawn_watch.into_iter().collect();
        a.anchors = s.anchors.into_iter().collect();
        a.buffer = s.buffer.into_iter().map(Reverse).collect();
        a.out = s.out.into_iter().collect();
        a.since_drain = s.since_drain;
        a.stats = s.stats;
        a
    }

    // --- Resolution internals -------------------------------------------

    /// Computes this event's dependencies, then either resolves it on the
    /// spot or parks it.
    #[allow(clippy::too_many_arguments)]
    fn resolve_event(
        &mut self,
        event: Event,
        idx: usize,
        await_info: Option<PendingAwait>,
        enter_ep: Option<u64>,
        exit_ep: Option<u64>,
        blocked: Option<Option<(usize, Option<Time>)>>,
        basis_override: Option<(usize, Time, Option<Time>)>,
    ) {
        let mut queue: VecDeque<usize> = VecDeque::new();

        // The fork anchor includes the current event (`last_loop_begin[i]`
        // covers position `i` itself in the batch analysis).
        if matches!(event.kind, EventKind::LoopBegin { .. }) {
            self.latest_lb = Some(LoopAnchor {
                id: idx,
                tm: event.time,
                ta: None,
            });
        }

        // Basis selection — identical to the batch analysis.
        let pi = event.proc.index();
        let prev = self.procs[pi]
            .as_ref()
            // A state created by this very push (awaitB on a fresh
            // processor) holds no predecessor.
            .filter(|s| s.last_id != idx)
            .map(|s| (s.last_id, s.last_tm, s.last_ta));
        let is_serial = Some(event.proc) == self.serial_proc;
        let basis: Option<(usize, Time, Option<Time>)> = match prev {
            Some((p_id, p_tm, p_ta)) => {
                let fork = !is_serial && self.latest_lb.map(|l| l.id > p_id).unwrap_or(false);
                if fork {
                    let l = self.latest_lb.expect("fork implies an anchor");
                    Some((l.id, l.tm, l.ta))
                } else {
                    Some((p_id, p_tm, p_ta))
                }
            }
            None => match self.latest_lb {
                Some(l) if l.id != idx => Some((l.id, l.tm, l.ta)),
                _ => None,
            },
        };
        // A child's begin fork chains from its spawn, wherever the child
        // processor's own frontier stands.
        let basis = match basis_override {
            Some(over) => Some(over),
            None => basis,
        };

        // Advance the frontier before resolving, so the resolution hook
        // sees this event as its processor's latest.
        match &mut self.procs[pi] {
            Some(s) => {
                s.last_id = idx;
                s.last_tm = event.time;
                s.last_ta = None;
            }
            slot @ None => {
                *slot = Some(ProcState {
                    last_id: idx,
                    last_tm: event.time,
                    last_ta: None,
                    pending_await: None,
                });
            }
        }

        // Assemble the rule and its dependencies. Both scratch lists have
        // small static bounds (begin + advance + basis), so they live on
        // the stack.
        let mut pending = 0u32;
        let mut pending_deps = [(0usize, Slot::Basis); 3];
        let mut n_deps = 0usize;
        let mut ready_anchors = [Time::ZERO; 2];
        let mut n_ready = 0usize;
        // A floor already registered by the awaitB hook (or, for a child's
        // begin fork, by the spawn hook) whose ownership transfers to this
        // event (it must persist until resolution, but is already counted
        // in the multiset).
        let mut transferred_anchor: Option<Time> = None;
        if let Some((_, _, Some(v))) = basis_override {
            transferred_anchor = Some(v);
        }

        let rule = if let Some(info) = await_info {
            if let Some(tb) = info.begin_ta {
                transferred_anchor = Some(tb);
            } else {
                pending += 1;
                pending_deps[n_deps] = (info.begin_id, Slot::Begin);
                n_deps += 1;
            }
            let (var, tag) = match event.kind {
                EventKind::AwaitEnd { var, tag } => (var, tag),
                _ => unreachable!("await_info implies an awaitE"),
            };
            let adv = if tag.is_pre_advanced() {
                Adv::NotNeeded
            } else {
                match self.advances.get(&(var, tag)) {
                    Some(rec) => match rec.ta {
                        Some(v) => {
                            ready_anchors[n_ready] = v;
                            n_ready += 1;
                            Adv::Got(v)
                        }
                        None => {
                            pending += 1;
                            pending_deps[n_deps] = (rec.id, Slot::Advance);
                            n_deps += 1;
                            Adv::Pending
                        }
                    },
                    None => {
                        pending += 1;
                        self.awaiting_advance
                            .entry((var, tag))
                            .or_default()
                            .push(idx);
                        Adv::Pending
                    }
                }
            };
            if let Some((b_id, _, b_ta)) = basis {
                match b_ta {
                    Some(v) => {
                        ready_anchors[n_ready] = v;
                        n_ready += 1;
                    }
                    None => {
                        pending += 1;
                        pending_deps[n_deps] = (b_id, Slot::Order);
                        n_deps += 1;
                    }
                }
            }
            Rule::AwaitEnd {
                begin_ta: info.begin_ta,
                adv,
            }
        } else if let Some(uid) = exit_ep {
            // The episode delivers the exit time as a whole.
            pending += 1;
            let ep = &self.episodes[&uid];
            let own = ep
                .enters
                .iter()
                .find(|r| r.proc == event.proc)
                .expect("exit protocol guarantees an enter");
            match own.ta {
                Some(v) => {
                    ready_anchors[n_ready] = v;
                    n_ready += 1;
                }
                None => {
                    pending += 1;
                    pending_deps[n_deps] = (own.id, Slot::Order);
                    n_deps += 1;
                }
            }
            if let Some((b_id, _, b_ta)) = basis {
                match b_ta {
                    Some(v) => {
                        ready_anchors[n_ready] = v;
                        n_ready += 1;
                    }
                    None => {
                        pending += 1;
                        pending_deps[n_deps] = (b_id, Slot::Order);
                        n_deps += 1;
                    }
                }
            }
            Rule::Exit { value: None }
        } else if let Some(dep) = blocked {
            // A blocked completion (lock acquire, sem P, task join-return):
            // the chain value is the ready time, and the enabling event
            // plays the advance's role in the §4.2.3 case split.
            let adv = match dep {
                None => Adv::NotNeeded,
                Some((_, Some(v))) => {
                    ready_anchors[n_ready] = v;
                    n_ready += 1;
                    Adv::Got(v)
                }
                Some((d_id, None)) => {
                    pending += 1;
                    pending_deps[n_deps] = (d_id, Slot::Advance);
                    n_deps += 1;
                    Adv::Pending
                }
            };
            let basis_tm = match basis {
                Some((b_id, b_tm, b_ta)) => {
                    match b_ta {
                        Some(v) => {
                            ready_anchors[n_ready] = v;
                            n_ready += 1;
                        }
                        None => {
                            pending += 1;
                            pending_deps[n_deps] = (b_id, Slot::Basis);
                            n_deps += 1;
                        }
                    }
                    Some(b_tm)
                }
                None => {
                    // Origin ready rule: floor the watermark at the
                    // event's own measured time less its overhead.
                    let oh = self.oh.instr_overhead(&event.kind);
                    ready_anchors[n_ready] = event.time.saturating_sub_span(oh);
                    n_ready += 1;
                    None
                }
            };
            Rule::Blocked {
                basis_tm,
                basis_ta: basis.and_then(|(_, _, ta)| ta),
                dep: adv,
            }
        } else {
            match basis {
                None => {
                    // Origin rule: resolves immediately.
                    let oh = self.oh.instr_overhead(&event.kind);
                    if event.time.checked_sub_span(oh).is_none() {
                        self.note_clamp();
                    }
                    let value = event.time.saturating_sub_span(oh);
                    self.finish_resolution(event, idx, value, &mut queue);
                    self.run_queue(&mut queue);
                    return;
                }
                Some((b_id, b_tm, b_ta)) => {
                    if b_ta.is_none() {
                        pending += 1;
                        pending_deps[n_deps] = (b_id, Slot::Basis);
                        n_deps += 1;
                    }
                    Rule::Chain {
                        basis_tm: b_tm,
                        basis_ta: b_ta,
                    }
                }
            }
        };

        if pending == 0 {
            // Resolvable on the spot; drop any floor we held through the
            // pending await, and discard ready anchors (never registered).
            if let Some(a) = transferred_anchor {
                self.anchor_remove(a);
            }
            let value = self.compute_value(&event, &rule);
            self.emit_await_outcome(&event, idx, &rule, value);
            self.finish_resolution(event, idx, value, &mut queue);
        } else {
            let mut anchors = Vec::with_capacity(n_ready + 1);
            if let Some(a) = transferred_anchor {
                anchors.push(a); // already in the multiset
            }
            for &a in &ready_anchors[..n_ready] {
                self.anchor_add(a);
                anchors.push(a);
            }
            self.parked.insert(
                idx,
                Node {
                    event,
                    pending,
                    rule,
                    anchors,
                    waiters: Vec::new(),
                },
            );
            for &(dep, slot) in &pending_deps[..n_deps] {
                self.parked
                    .get_mut(&dep)
                    .expect("unresolved dependencies are parked")
                    .waiters
                    .push((idx, slot));
            }
        }

        // A just-closed episode may already be fully resolved.
        if let Some(uid) = exit_ep {
            let ready = {
                let ep = &self.episodes[&uid];
                ep.closed && ep.unresolved_enters == 0
            };
            if ready {
                self.finalize_episode(uid, &mut queue);
            }
        }

        // A newly arrived advance may wake parked awaitEs.
        if !self.awaiting_advance.is_empty() {
            if let EventKind::Advance { var, tag } = event.kind {
                if let Some(rec) = self.advances.get(&(var, tag)) {
                    if rec.id == idx {
                        let rec_ta = rec.ta;
                        if let Some(waiters) = self.awaiting_advance.remove(&(var, tag)) {
                            for w in waiters {
                                match rec_ta {
                                    Some(v) => self.deliver(w, Slot::Advance, v, &mut queue),
                                    None => self
                                        .parked
                                        .get_mut(&idx)
                                        .expect("unresolved advance is parked")
                                        .waiters
                                        .push((w, Slot::Advance)),
                                }
                            }
                        }
                    }
                }
            }
        }

        let _ = enter_ep; // membership is tracked via `ep_of_enter`
        self.run_queue(&mut queue);
    }

    /// Consumes a live enabling event's resolved time — the blocked side
    /// claims it exactly once.
    fn take_dep(&mut self, dep: usize) -> Option<Time> {
        self.dep_ta.remove(&dep).expect("enabling event is live")
    }

    /// Delivers a resolved dependency value into a parked event's slot.
    fn deliver(&mut self, id: usize, slot: Slot, value: Time, queue: &mut VecDeque<usize>) {
        let node = self.parked.get_mut(&id).expect("waiter is parked");
        match (slot, &mut node.rule) {
            (Slot::Basis, Rule::Chain { basis_ta, .. }) => *basis_ta = Some(value),
            (Slot::Basis, Rule::Blocked { basis_ta, .. }) => *basis_ta = Some(value),
            (Slot::Begin, Rule::AwaitEnd { begin_ta, .. }) => *begin_ta = Some(value),
            (Slot::Advance, Rule::AwaitEnd { adv, .. }) => *adv = Adv::Got(value),
            (Slot::Advance, Rule::Blocked { dep, .. }) => *dep = Adv::Got(value),
            (Slot::Order, _) => {}
            (slot, rule) => unreachable!("slot {slot:?} does not fit rule {rule:?}"),
        }
        node.anchors.push(value);
        node.pending -= 1;
        let ready = node.pending == 0;
        self.anchor_add(value);
        if ready {
            queue.push_back(id);
        }
    }

    /// Resolves queued events until the cascade settles.
    fn run_queue(&mut self, queue: &mut VecDeque<usize>) {
        while let Some(id) = queue.pop_front() {
            let node = self.parked.remove(&id).expect("queued events are parked");
            for a in &node.anchors {
                self.anchor_remove(*a);
            }
            let value = self.compute_value(&node.event, &node.rule);
            self.emit_await_outcome(&node.event, id, &node.rule, value);
            self.finish_resolution(node.event, id, value, queue);
            for (w, slot) in node.waiters {
                self.deliver(w, slot, value, queue);
            }
        }
    }

    /// Applies the §4.2.3 value rules.
    fn compute_value(&mut self, event: &Event, rule: &Rule) -> Time {
        match rule {
            Rule::Chain { basis_tm, basis_ta } => {
                let tb = basis_ta.expect("basis resolved first");
                let oh = self.oh.instr_overhead(&event.kind);
                // The basis is an earlier event of the total order, so the
                // delta itself cannot underflow — only the overhead can.
                debug_assert!(event.time >= *basis_tm, "basis precedes the event");
                let delta = event.time.saturating_since(*basis_tm);
                if oh > delta {
                    self.note_clamp();
                }
                tb + delta.saturating_sub(oh)
            }
            Rule::AwaitEnd { begin_ta, adv } => {
                let tb = begin_ta.expect("awaitB resolved before awaitE");
                match adv {
                    Adv::NotNeeded => tb + self.oh.s_nowait,
                    Adv::Got(tadv) => {
                        if *tadv <= tb {
                            tb + self.oh.s_nowait
                        } else {
                            *tadv + self.oh.s_wait
                        }
                    }
                    Adv::Pending => unreachable!("advance resolved before awaitE"),
                }
            }
            Rule::Exit { value } => value.expect("episode resolved before exit"),
            Rule::Blocked {
                basis_tm,
                basis_ta,
                dep,
            } => {
                let oh = self.oh.instr_overhead(&event.kind);
                let ready = match basis_tm {
                    Some(b_tm) => {
                        let tb = basis_ta.expect("basis resolved first");
                        debug_assert!(event.time >= *b_tm, "basis precedes the event");
                        let delta = event.time.saturating_since(*b_tm);
                        if oh > delta {
                            self.note_clamp();
                        }
                        tb + delta.saturating_sub(oh)
                    }
                    None => {
                        if event.time.checked_sub_span(oh).is_none() {
                            self.note_clamp();
                        }
                        event.time.saturating_sub_span(oh)
                    }
                };
                match dep {
                    Adv::NotNeeded => ready,
                    Adv::Got(td) => {
                        if *td <= ready {
                            ready
                        } else {
                            *td + self.oh.s_wait
                        }
                    }
                    Adv::Pending => {
                        unreachable!("enabling event resolved before the blocked one")
                    }
                }
            }
        }
    }

    /// Emits the [`AwaitOutcome`] for a resolving `awaitE`.
    fn emit_await_outcome(&mut self, event: &Event, idx: usize, rule: &Rule, end: Time) {
        if let Rule::AwaitEnd { begin_ta, adv } = rule {
            let (var, tag) = match event.kind {
                EventKind::AwaitEnd { var, tag } => (var, tag),
                _ => unreachable!("AwaitEnd rule implies an awaitE"),
            };
            let begin = begin_ta.expect("awaitB resolved before awaitE");
            let wait = match adv {
                Adv::Got(tadv) => tadv.saturating_since(begin),
                _ => Span::ZERO,
            };
            self.out.push_back(StreamOutput::Await {
                ordinal: idx,
                outcome: AwaitOutcome {
                    proc: event.proc,
                    var,
                    tag,
                    begin,
                    end,
                    wait,
                },
            });
        } else if let Rule::Blocked {
            basis_tm,
            basis_ta,
            dep,
        } = rule
        {
            let (family, object) = match event.kind {
                EventKind::LockAcquire { lock } => (EpisodeFamily::Lock, lock.0),
                EventKind::SemAcquire { sem } => (EpisodeFamily::Sem, sem.0),
                EventKind::TaskJoin { task } => (EpisodeFamily::Task, task.0),
                _ => unreachable!("Blocked rule implies a blocked completion"),
            };
            // The ready time, recomputed without clamp counting —
            // `compute_value` already metered this event's clamp.
            let oh = self.oh.instr_overhead(&event.kind);
            let ready = match basis_tm {
                Some(b_tm) => {
                    let tb = basis_ta.expect("basis resolved first");
                    tb + event.time.saturating_since(*b_tm).saturating_sub(oh)
                }
                None => event.time.saturating_sub_span(oh),
            };
            let wait = match dep {
                Adv::Got(td) => td.saturating_since(ready),
                _ => Span::ZERO,
            };
            self.out.push_back(StreamOutput::Episode {
                ordinal: idx,
                outcome: EpisodeOutcome {
                    family,
                    object,
                    proc: event.proc,
                    ready,
                    end,
                    wait,
                },
            });
        }
    }

    /// Books a freshly computed approximated time: updates the frontiers
    /// and hooks, then buffers the event for ordered emission.
    fn finish_resolution(
        &mut self,
        event: Event,
        idx: usize,
        value: Time,
        queue: &mut VecDeque<usize>,
    ) {
        match event.kind {
            EventKind::Advance { var, tag } => {
                if let Some(rec) = self.advances.get_mut(&(var, tag)) {
                    if rec.id == idx {
                        rec.ta = Some(value);
                        self.dirty_advances.insert((var, tag));
                    }
                }
            }
            EventKind::AwaitBegin { .. } => {
                let pi = event.proc.index();
                if let Some(p) = self.procs[pi]
                    .as_mut()
                    .and_then(|s| s.pending_await.as_mut())
                {
                    if p.begin_id == idx {
                        p.begin_ta = Some(value);
                        self.anchor_add(value);
                    }
                }
            }
            EventKind::BarrierEnter { .. } => {
                if let Some(&uid) = self.ep_of_enter.get(&idx) {
                    let ep = self
                        .episodes
                        .get_mut(&uid)
                        .expect("enter's episode is live");
                    let rec = ep
                        .enters
                        .iter_mut()
                        .find(|r| r.id == idx)
                        .expect("enter is recorded");
                    rec.ta = Some(value);
                    ep.anchors.push(value);
                    ep.unresolved_enters -= 1;
                    let ready = ep.closed && ep.unresolved_enters == 0;
                    self.anchor_add(value);
                    if ready {
                        self.finalize_episode(uid, queue);
                    }
                }
            }
            EventKind::LoopBegin { .. } => {
                if let Some(l) = self.latest_lb.as_mut() {
                    if l.id == idx {
                        l.ta = Some(value);
                    }
                }
            }
            EventKind::LockRelease { .. }
            | EventKind::SemRelease { .. }
            | EventKind::TaskJoin { .. } => {
                // An enabling event (a join-return's own slot was already
                // consumed, so `get_mut` misses for it).
                if let Some(slot) = self.dep_ta.get_mut(&idx) {
                    *slot = Some(value);
                }
            }
            EventKind::TaskFork { .. } => {
                // A spawn still awaiting its child's begin: hold the
                // resolved time as a watermark floor until the begin fork
                // takes ownership of it.
                if let Some(&task) = self.spawn_watch.get(&idx) {
                    if let Some(st) = self.tasks.get_mut(&task) {
                        if st.spawn_id == idx {
                            st.spawn_ta = Some(value);
                            self.anchor_add(value);
                        }
                    }
                }
            }
            _ => {}
        }
        let pi = event.proc.index();
        if let Some(s) = self.procs[pi].as_mut() {
            if s.last_id == idx {
                s.last_ta = Some(value);
            }
        }
        self.buffer.push(Reverse(EmitEntry {
            event: Event {
                time: value,
                ..event
            },
            idx,
        }));
    }

    /// A closed episode with all enters resolved: computes the release,
    /// emits the barrier outcomes, and wakes the parked exits.
    fn finalize_episode(&mut self, uid: u64, queue: &mut VecDeque<usize>) {
        let ep = self
            .episodes
            .remove(&uid)
            .expect("finalized episode is live");
        for a in &ep.anchors {
            self.anchor_remove(*a);
        }
        let release = ep
            .enters
            .iter()
            .map(|r| r.ta.expect("enters resolved before release"))
            .max()
            .expect("episodes have enters");
        let exit_time = release + self.oh.barrier_release;
        let ordinal = ep.enters.first().expect("episodes have enters").id;
        for rec in &ep.enters {
            self.ep_of_enter.remove(&rec.id);
            let enter = rec.ta.expect("enters resolved");
            self.out.push_back(StreamOutput::Barrier {
                ordinal,
                outcome: BarrierOutcome {
                    barrier: ep.barrier,
                    proc: rec.proc,
                    enter,
                    exit: exit_time,
                    wait: release.saturating_since(enter),
                },
            });
        }
        for (exit_id, _) in ep.exits {
            let node = self
                .parked
                .get_mut(&exit_id)
                .expect("exits park until release");
            match &mut node.rule {
                Rule::Exit { value } => *value = Some(exit_time),
                rule => unreachable!("exit node carries an Exit rule, not {rule:?}"),
            }
            node.pending -= 1;
            if node.pending == 0 {
                queue.push_back(exit_id);
            }
        }
    }

    // --- Watermark-driven emission --------------------------------------

    fn anchor_add(&mut self, t: Time) {
        *self.anchors.entry(t).or_insert(0) += 1;
    }

    fn anchor_remove(&mut self, t: Time) {
        match self.anchors.get_mut(&t) {
            Some(1) => {
                self.anchors.remove(&t);
            }
            Some(n) => *n -= 1,
            None => unreachable!("anchor removed twice"),
        }
    }

    /// A lower bound on the approximated time of every event that has not
    /// yet been emitted — the buffered ones excepted.
    ///
    /// The saturating arithmetic here is *not* a silent clamp of a §4.2.3
    /// value (those are counted via [`note_clamp`](Self::note_clamp)): a
    /// future event chaining from a frontier will itself clamp at the
    /// basis when `max_instr_oh` exceeds its delta, so
    /// `ta + max(0, gained - max_instr_oh)` is the exact lower bound of
    /// the clamped value rule, and the origin floor saturates at
    /// [`Time::ZERO`] exactly as the origin rule does. Counting these
    /// would fire on nearly every drain and drown the real signal.
    fn watermark(&self) -> Time {
        // Unseen processors start at the origin rule's floor.
        let mut wm = self.last_tm.saturating_sub_span(self.max_instr_oh);
        // Known processors: any future event chains from (at least) the
        // frontier, and the measured clock has advanced by
        // `last_tm - frontier.tm` since, of which at most `max_instr_oh`
        // is deductible.
        for s in self.procs.iter().flatten() {
            if let Some(ta) = s.last_ta {
                let gained = self.last_tm.saturating_since(s.last_tm);
                wm = wm.min(ta + gained.saturating_sub(self.max_instr_oh));
            }
        }
        if let Some(l) = self.latest_lb {
            if let Some(ta) = l.ta {
                let gained = self.last_tm.saturating_since(l.tm);
                wm = wm.min(ta + gained.saturating_sub(self.max_instr_oh));
            }
        }
        if let Some((&floor, _)) = self.anchors.iter().next() {
            wm = wm.min(floor);
        }
        wm
    }

    /// Runs a drain every 16 pushes: the watermark moves little between
    /// consecutive events, so checking it per push buys nothing but cost.
    #[inline]
    fn maybe_drain(&mut self) {
        self.since_drain += 1;
        if self.since_drain >= 16 {
            self.since_drain = 0;
            self.drain_emission();
        }
    }

    /// Moves every buffered event that is provably final into the output.
    fn drain_emission(&mut self) {
        let wm = self.watermark();
        let mut drained = 0u64;
        while let Some(Reverse(entry)) = self.buffer.peek() {
            if entry.event.time >= wm {
                break;
            }
            let Some(Reverse(entry)) = self.buffer.pop() else {
                unreachable!()
            };
            self.out.push_back(StreamOutput::Event(entry.event));
            drained += 1;
        }
        // Gauge refresh rides the drain cadence (every 16 pushes), keeping
        // observability cost off the per-event path.
        self.probes.events_emitted.add(drained);
        self.probes
            .watermark_lag
            .set(self.last_tm.saturating_since(wm).as_nanos() as f64);
        let resident = self.parked.len() + self.buffer.len() + self.episodes.len();
        self.probes.resident_events.set(resident as f64);
        self.probes
            .open_sync_episodes
            .set(self.open_by_barrier.len() as f64);
    }
}
