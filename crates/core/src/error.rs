//! Analysis errors.

use ppa_trace::{IoError, TraceError};
use std::fmt;

/// Failure of a perturbation analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The measured trace failed validation / synchronization pairing.
    Trace(TraceError),
    /// The event dependency graph contains a cycle — the measured trace
    /// cannot have come from a real execution.
    CyclicDependencies {
        /// Number of events left unresolved when progress stopped.
        unresolved: usize,
    },
    /// The analysis needs synchronization events but the trace has none
    /// (e.g. event-based analysis of a statements-only instrumentation).
    NoSyncEvents,
    /// Liberal analysis could not segment the trace into iterations (a
    /// processor's events do not follow the program's body structure).
    UnrecognizedStructure {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Trace(e) => write!(f, "invalid trace: {e}"),
            AnalysisError::CyclicDependencies { unresolved } => {
                write!(
                    f,
                    "event dependencies are cyclic ({unresolved} events unresolved)"
                )
            }
            AnalysisError::NoSyncEvents => {
                write!(
                    f,
                    "event-based analysis requires synchronization events in the trace"
                )
            }
            AnalysisError::UnrecognizedStructure { detail } => {
                write!(f, "trace does not match the program structure: {detail}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<TraceError> for AnalysisError {
    fn from(e: TraceError) -> Self {
        AnalysisError::Trace(e)
    }
}

/// Failure of an analysis run that ingests its trace from a stream:
/// either the decode failed or the decoded trace failed analysis.
///
/// Produced by entry points like
/// [`event_based_sharded_from_reader`](crate::event_based_sharded_from_reader)
/// that fuse trace I/O and analysis into one call.
#[derive(Debug)]
pub enum IngestError {
    /// The trace stream could not be decoded.
    Io(IoError),
    /// The decoded trace failed perturbation analysis.
    Analysis(AnalysisError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "trace ingest failed: {e}"),
            IngestError::Analysis(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Analysis(e) => Some(e),
        }
    }
}

impl From<IoError> for IngestError {
    fn from(e: IoError) -> Self {
        IngestError::Io(e)
    }
}

impl From<AnalysisError> for IngestError {
    fn from(e: AnalysisError) -> Self {
        IngestError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AnalysisError::CyclicDependencies { unresolved: 3 };
        assert!(e.to_string().contains("3 events"));
        assert!(AnalysisError::NoSyncEvents
            .to_string()
            .contains("synchronization"));
    }

    #[test]
    fn from_trace_error() {
        let te = TraceError::NotTotallyOrdered { position: 1 };
        let ae: AnalysisError = te.clone().into();
        assert_eq!(ae, AnalysisError::Trace(te));
    }
}
