//! CSV export of analysis products, for external plotting.

use crate::parallelism::ParallelismProfile;
use crate::ratio::RatioRow;
use crate::timeline::Timeline;
use crate::waiting::WaitingTable;
use std::io::{self, BufWriter, Write};

/// Writes ratio rows: `label,measured_over_actual,approx_over_actual,paper_measured,paper_approx`.
pub fn write_ratios_csv<W: Write>(rows: &[RatioRow], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "label,measured_over_actual,approx_over_actual,paper_measured,paper_approx"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{:.6},{:.6},{},{}",
            r.label,
            r.measured_over_actual,
            r.approx_over_actual,
            r.paper_measured
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default(),
            r.paper_approx
                .map(|v| format!("{v:.2}"))
                .unwrap_or_default(),
        )?;
    }
    w.flush()
}

/// Writes the waiting table: `proc,sync_wait_ns,barrier_wait_ns,sync_pct`.
pub fn write_waiting_csv<W: Write>(table: &WaitingTable, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "proc,sync_wait_ns,barrier_wait_ns,sync_pct")?;
    for r in &table.rows {
        writeln!(
            w,
            "{},{},{},{:.4}",
            r.proc, r.sync_wait_ns, r.barrier_wait_ns, r.sync_pct
        )?;
    }
    w.flush()
}

/// Writes timeline intervals: `proc,start_ns,end_ns,state`.
pub fn write_timeline_csv<W: Write>(timeline: &Timeline, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "proc,start_ns,end_ns,state")?;
    for (p, row) in timeline.rows.iter().enumerate() {
        for iv in row {
            writeln!(
                w,
                "{},{},{},{:?}",
                p,
                iv.start.as_nanos(),
                iv.end.as_nanos(),
                iv.state
            )?;
        }
    }
    w.flush()
}

/// Writes the parallelism step function: `time_ns,parallelism`.
pub fn write_parallelism_csv<W: Write>(profile: &ParallelismProfile, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "time_ns,parallelism")?;
    for &(t, c) in &profile.steps {
        writeln!(w, "{},{}", t.as_nanos(), c)?;
    }
    writeln!(w, "{},0", profile.end.as_nanos())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Interval, ProcState};
    use ppa_trace::{Span, Time};

    #[test]
    fn ratios_csv() {
        let rows = vec![RatioRow::from_times(
            "lfk03",
            Span::from_nanos(100),
            Span::from_nanos(456),
            Span::from_nanos(96),
        )
        .with_paper(Some(4.56), Some(0.96))];
        let mut buf = Vec::new();
        write_ratios_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("label,"));
        assert!(text.contains("lfk03,4.56"));
        assert!(text.contains("0.96"));
    }

    #[test]
    fn timeline_csv() {
        let tl = Timeline {
            rows: vec![vec![Interval {
                start: Time::ZERO,
                end: Time::from_nanos(5),
                state: ProcState::Active,
            }]],
            start: Time::ZERO,
            end: Time::from_nanos(5),
        };
        let mut buf = Vec::new();
        write_timeline_csv(&tl, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0,0,5,Active"));
    }

    #[test]
    fn parallelism_csv() {
        let p = ParallelismProfile {
            steps: vec![(Time::ZERO, 1), (Time::from_nanos(10), 3)],
            end: Time::from_nanos(20),
        };
        let mut buf = Vec::new();
        write_parallelism_csv(&p, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0,1"));
        assert!(text.contains("10,3"));
        assert!(text.contains("20,0"));
    }
}
