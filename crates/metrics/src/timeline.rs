//! Per-processor execution timelines (the paper's Figure 4).
//!
//! A timeline slices each processor's approximated execution into
//! `Active`, `Waiting` (blocked in an await or at a barrier), and `Idle`
//! (no events — the processor is not participating, e.g. during serial
//! sections) intervals. The sequential portions before and after a
//! parallel loop show as processor zero active, as in the paper's figure.

use ppa_core::EventBasedResult;
use ppa_trace::{ProcessorId, Span, Time};
use serde::{Deserialize, Serialize};

/// A processor's state over one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcState {
    /// Executing work (including synchronization processing).
    Active,
    /// Blocked in an await or at a barrier.
    Waiting,
    /// Not participating.
    Idle,
}

/// One maximal interval of constant state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Interval start.
    pub start: Time,
    /// Interval end (exclusive).
    pub end: Time,
    /// The processor's state throughout.
    pub state: ProcState,
}

impl Interval {
    /// The interval's length.
    pub fn span(&self) -> Span {
        self.end.saturating_since(self.start)
    }
}

/// Per-processor interval rows over a common time range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Row per processor (index = processor id).
    pub rows: Vec<Vec<Interval>>,
    /// Earliest time.
    pub start: Time,
    /// Latest time.
    pub end: Time,
}

impl Timeline {
    /// Total `Waiting` span on one processor.
    pub fn waiting(&self, proc: usize) -> Span {
        self.rows
            .get(proc)
            .map(|row| {
                row.iter()
                    .filter(|iv| iv.state == ProcState::Waiting)
                    .map(|iv| iv.span())
                    .sum()
            })
            .unwrap_or(Span::ZERO)
    }

    /// Total `Active` span on one processor.
    pub fn active(&self, proc: usize) -> Span {
        self.rows
            .get(proc)
            .map(|row| {
                row.iter()
                    .filter(|iv| iv.state == ProcState::Active)
                    .map(|iv| iv.span())
                    .sum()
            })
            .unwrap_or(Span::ZERO)
    }
}

/// Builds the timeline of an approximated execution.
pub fn build_timeline(result: &EventBasedResult, processors: usize) -> Timeline {
    let start = result.trace.start_time().unwrap_or(Time::ZERO);
    let end = result.trace.end_time().unwrap_or(Time::ZERO);

    let mut rows = Vec::with_capacity(processors);
    for p in 0..processors {
        let pid = ProcessorId(p as u16);
        // Present span: first to last event of this processor.
        let mut first: Option<Time> = None;
        let mut last: Option<Time> = None;
        for e in result.trace.iter().filter(|e| e.proc == pid) {
            if first.is_none() {
                first = Some(e.time);
            }
            last = Some(e.time);
        }

        // Waiting windows: awaits (blocked until the advance) + barriers.
        let mut waits: Vec<(Time, Time)> = Vec::new();
        for a in result.awaits.iter().filter(|a| a.proc == pid && a.waited()) {
            waits.push((a.begin, a.begin + a.wait));
        }
        for b in result
            .barriers
            .iter()
            .filter(|b| b.proc == pid && !b.wait.is_zero())
        {
            waits.push((b.enter, b.enter + b.wait));
        }
        waits.sort();

        let mut row = Vec::new();
        match (first, last) {
            (Some(f), Some(l)) => {
                if f > start {
                    row.push(Interval {
                        start,
                        end: f,
                        state: ProcState::Idle,
                    });
                }
                let mut cursor = f;
                for (wb, we) in waits {
                    let wb = wb.max(cursor);
                    let we = we.min(l);
                    if we <= wb {
                        continue;
                    }
                    if wb > cursor {
                        row.push(Interval {
                            start: cursor,
                            end: wb,
                            state: ProcState::Active,
                        });
                    }
                    row.push(Interval {
                        start: wb,
                        end: we,
                        state: ProcState::Waiting,
                    });
                    cursor = we;
                }
                if l > cursor {
                    row.push(Interval {
                        start: cursor,
                        end: l,
                        state: ProcState::Active,
                    });
                }
                if end > l {
                    row.push(Interval {
                        start: l,
                        end,
                        state: ProcState::Idle,
                    });
                }
            }
            _ => {
                if end > start {
                    row.push(Interval {
                        start,
                        end,
                        state: ProcState::Idle,
                    });
                }
            }
        }
        rows.push(row);
    }
    Timeline { rows, start, end }
}

/// Extracts the loop windows of a trace from its loop begin/end markers:
/// `(loop id, begin time, end time)` per executed loop, in order. Useful
/// for windowing other metrics (per-loop parallelism averages, per-loop
/// ratios) to one construct.
pub fn loop_windows(trace: &ppa_trace::Trace) -> Vec<(ppa_trace::LoopId, Time, Time)> {
    use ppa_trace::EventKind;
    let mut open: std::collections::BTreeMap<ppa_trace::LoopId, Time> = Default::default();
    let mut out = Vec::new();
    for e in trace.iter() {
        match e.kind {
            EventKind::LoopBegin { loop_id } => {
                open.insert(loop_id, e.time);
            }
            EventKind::LoopEnd { loop_id } => {
                if let Some(begin) = open.remove(&loop_id) {
                    out.push((loop_id, begin, e.time));
                }
            }
            _ => {}
        }
    }
    out
}

/// Renders the timeline as an ASCII Gantt chart of the given width:
/// `#` active, `.` waiting, space idle.
pub fn render_timeline(timeline: &Timeline, width: usize) -> String {
    let width = width.max(10);
    let total = timeline
        .end
        .saturating_since(timeline.start)
        .as_nanos()
        .max(1);
    let mut out = String::new();
    for (p, row) in timeline.rows.iter().enumerate() {
        let mut line = vec![' '; width];
        for iv in row {
            let a = ((iv.start.saturating_since(timeline.start).as_nanos() as u128 * width as u128)
                / total as u128) as usize;
            let b = ((iv.end.saturating_since(timeline.start).as_nanos() as u128 * width as u128)
                / total as u128) as usize;
            let ch = match iv.state {
                ProcState::Active => '#',
                ProcState::Waiting => '.',
                ProcState::Idle => ' ',
            };
            for cell in line.iter_mut().take(b.min(width)).skip(a) {
                *cell = ch;
            }
        }
        out.push_str(&format!("P{p:<2} |{}|\n", line.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "     0{}{}\n",
        " ".repeat(width.saturating_sub(12)),
        format_args!(
            "{:>10.1}us",
            timeline
                .end
                .saturating_since(timeline.start)
                .as_micros_f64()
        )
    ));
    out.push_str("     ('#' active, '.' waiting, ' ' idle)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::event_based;
    use ppa_trace::{OverheadSpec, TraceBuilder};

    fn sample() -> EventBasedResult {
        // P0 active 0..400 (serial + advance); P1 idle until 100, waits
        // 100..200, active 200..300, idle after.
        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .program_begin()
            .at(200)
            .advance(0, 0)
            .at(400)
            .program_end()
            .on(1)
            .at(100)
            .await_begin(0, 0)
            .at(200)
            .await_end(0, 0)
            .at(300)
            .stmt(0)
            .build();
        event_based(&t, &OverheadSpec::ZERO).unwrap()
    }

    #[test]
    fn states_partition_the_range() {
        let tl = build_timeline(&sample(), 2);
        assert_eq!(tl.start, Time::ZERO);
        assert_eq!(tl.end, Time::from_nanos(400));
        for row in &tl.rows {
            // Contiguity: each interval begins where the previous ended.
            for w in row.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert_eq!(row.first().unwrap().start, tl.start);
            assert_eq!(row.last().unwrap().end, tl.end);
        }
    }

    #[test]
    fn waiting_and_active_accounting() {
        let tl = build_timeline(&sample(), 2);
        assert_eq!(tl.waiting(0), Span::ZERO);
        assert_eq!(tl.waiting(1), Span::from_nanos(100));
        assert_eq!(tl.active(0), Span::from_nanos(400));
        assert_eq!(tl.active(1), Span::from_nanos(100));
    }

    #[test]
    fn render_shape() {
        let tl = build_timeline(&sample(), 2);
        let s = render_timeline(&tl, 40);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("P0 "));
        assert!(lines[1].starts_with("P1 "));
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn loop_windows_pair_markers() {
        let t = ppa_trace::TraceBuilder::measured()
            .on(0)
            .at(0)
            .program_begin()
            .at(10)
            .loop_begin(0)
            .at(50)
            .loop_end(0)
            .at(60)
            .loop_begin(1)
            .at(90)
            .loop_end(1)
            .at(100)
            .program_end()
            .build();
        let w = loop_windows(&t);
        assert_eq!(w.len(), 2);
        assert_eq!(
            w[0],
            (
                ppa_trace::LoopId(0),
                Time::from_nanos(10),
                Time::from_nanos(50)
            )
        );
        assert_eq!(
            w[1],
            (
                ppa_trace::LoopId(1),
                Time::from_nanos(60),
                Time::from_nanos(90)
            )
        );
        // Unclosed loops are skipped.
        let t2 = ppa_trace::TraceBuilder::measured()
            .on(0)
            .at(5)
            .loop_begin(3)
            .build();
        assert!(loop_windows(&t2).is_empty());
    }

    #[test]
    fn missing_processor_row_is_idle() {
        let tl = build_timeline(&sample(), 3);
        assert_eq!(tl.rows[2].len(), 1);
        assert_eq!(tl.rows[2][0].state, ProcState::Idle);
        assert_eq!(tl.waiting(7), Span::ZERO); // out of range is zero
    }
}
