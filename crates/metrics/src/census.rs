//! Trace census: volume and distribution statistics of a trace.
//!
//! The volume side of the Instrumentation Uncertainty Principle made
//! measurable: how many events of each kind, how they distribute over
//! processors, and how dense the event stream is — the quantities an
//! experimenter weighs against a perturbation budget before instrumenting.

use ppa_trace::{Span, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Volume statistics of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceCensus {
    /// Total events.
    pub events: usize,
    /// Events per kind mnemonic.
    pub by_kind: BTreeMap<String, usize>,
    /// Events per processor.
    pub by_proc: BTreeMap<u16, usize>,
    /// Trace span.
    pub span_ns: u64,
    /// Mean events per microsecond over the span.
    pub events_per_us: f64,
    /// Mean gap between consecutive events (total order).
    pub mean_gap_ns: f64,
    /// Largest gap between consecutive events.
    pub max_gap_ns: u64,
}

/// Computes the census of a trace.
pub fn census(trace: &Trace) -> TraceCensus {
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_proc: BTreeMap<u16, usize> = BTreeMap::new();
    for e in trace.iter() {
        *by_kind.entry(e.kind.mnemonic().to_string()).or_default() += 1;
        *by_proc.entry(e.proc.0).or_default() += 1;
    }

    let span = trace.total_time();
    let mut max_gap = 0u64;
    let mut gap_sum = 0u128;
    let mut gaps = 0usize;
    for w in trace.events().windows(2) {
        let gap = w[1].time.saturating_since(w[0].time).as_nanos();
        max_gap = max_gap.max(gap);
        gap_sum += gap as u128;
        gaps += 1;
    }

    TraceCensus {
        events: trace.len(),
        by_kind,
        by_proc,
        span_ns: span.as_nanos(),
        events_per_us: if span.is_zero() {
            0.0
        } else {
            trace.len() as f64 / span.as_micros_f64()
        },
        mean_gap_ns: if gaps == 0 {
            0.0
        } else {
            gap_sum as f64 / gaps as f64
        },
        max_gap_ns: max_gap,
    }
}

/// Compares two censuses (e.g. measured traces under different plans):
/// event-count ratio and the kinds unique to each.
#[derive(Debug, Clone, PartialEq)]
pub struct CensusDelta {
    /// `b.events / a.events`.
    pub volume_ratio: f64,
    /// Kinds present in `b` but not `a`.
    pub added_kinds: Vec<String>,
    /// Kinds present in `a` but not `b`.
    pub removed_kinds: Vec<String>,
}

/// Computes the volume delta from `a` to `b`.
pub fn census_delta(a: &TraceCensus, b: &TraceCensus) -> CensusDelta {
    CensusDelta {
        volume_ratio: if a.events == 0 {
            f64::INFINITY
        } else {
            b.events as f64 / a.events as f64
        },
        added_kinds: b
            .by_kind
            .keys()
            .filter(|k| !a.by_kind.contains_key(*k))
            .cloned()
            .collect(),
        removed_kinds: a
            .by_kind
            .keys()
            .filter(|k| !b.by_kind.contains_key(*k))
            .cloned()
            .collect(),
    }
}

/// Formats a census for terminal output.
pub fn format_census(title: &str, c: &TraceCensus) -> String {
    let mut out = format!(
        "{title}\n  {} events over {} ({:.1} events/us, mean gap {:.0}ns, max gap {})\n",
        c.events,
        Span::from_nanos(c.span_ns),
        c.events_per_us,
        c.mean_gap_ns,
        Span::from_nanos(c.max_gap_ns),
    );
    out.push_str("  by kind:");
    for (k, n) in &c.by_kind {
        out.push_str(&format!(" {k}={n}"));
    }
    out.push_str("\n  by proc:");
    for (p, n) in &c.by_proc {
        out.push_str(&format!(" P{p}={n}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::TraceBuilder;

    fn sample() -> Trace {
        TraceBuilder::measured()
            .on(0)
            .at(0)
            .stmt(0)
            .at(100)
            .stmt(1)
            .at(400)
            .advance(0, 0)
            .on(1)
            .at(50)
            .stmt(2)
            .build()
    }

    #[test]
    fn counts_and_gaps() {
        let c = census(&sample());
        assert_eq!(c.events, 4);
        assert_eq!(c.by_kind["stmt"], 3);
        assert_eq!(c.by_kind["advance"], 1);
        assert_eq!(c.by_proc[&0], 3);
        assert_eq!(c.by_proc[&1], 1);
        assert_eq!(c.span_ns, 400);
        // Gaps in total order: 0->50 (50), 50->100 (50), 100->400 (300).
        assert_eq!(c.max_gap_ns, 300);
        assert!((c.mean_gap_ns - (50.0 + 50.0 + 300.0) / 3.0).abs() < 1e-9);
        assert!((c.events_per_us - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_census() {
        let c = census(&Trace::new(ppa_trace::TraceKind::Actual));
        assert_eq!(c.events, 0);
        assert_eq!(c.events_per_us, 0.0);
        assert_eq!(c.mean_gap_ns, 0.0);
    }

    #[test]
    fn delta_detects_added_kinds() {
        let a = census(
            &TraceBuilder::measured()
                .on(0)
                .at(0)
                .stmt(0)
                .at(10)
                .stmt(1)
                .build(),
        );
        let b = census(&sample());
        let d = census_delta(&a, &b);
        assert_eq!(d.volume_ratio, 2.0);
        assert_eq!(d.added_kinds, vec!["advance".to_string()]);
        assert!(d.removed_kinds.is_empty());
    }

    #[test]
    fn formatting_contains_sections() {
        let s = format_census("census", &census(&sample()));
        assert!(s.contains("4 events"));
        assert!(s.contains("by kind:"));
        assert!(s.contains("P0=3"));
    }
}
