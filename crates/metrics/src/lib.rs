//! # ppa-metrics — analysis products and presentation
//!
//! Turns analysis results into the artifacts the paper reports:
//!
//! - [`RatioRow`]/[`format_ratio_table`] — measured/actual and
//!   approximated/actual ratio tables (Tables 1 and 2, Figure 1's bars);
//! - [`waiting_table`] — per-processor waiting percentages of the
//!   approximated execution (Table 3);
//! - [`build_timeline`]/[`render_timeline`] — per-processor
//!   active/waiting/idle Gantt rows (Figure 4);
//! - [`parallelism_profile`]/[`render_parallelism`] — parallelism over
//!   time and its average (Figure 5);
//! - CSV export of each for external plotting.

#![warn(missing_docs)]

mod census;
mod chart;
mod decompose;
mod export;
mod histogram;
mod order;
mod parallelism;
mod ratio;
mod timeline;
mod waiting;

pub use census::{census, census_delta, format_census, CensusDelta, TraceCensus};
pub use chart::{render_bars, render_simple_bars, BarGroup};
pub use decompose::{decompose_slowdown, format_decomposition, SlowdownDecomposition};
pub use export::{write_parallelism_csv, write_ratios_csv, write_timeline_csv, write_waiting_csv};
pub use histogram::{render_histogram, wait_histogram, SpanHistogram};
pub use order::{order_perturbation, OrderPerturbation};
pub use parallelism::{parallelism_profile, render_parallelism, ParallelismProfile};
pub use ratio::{format_ratio_table, signed_error_pct, RatioRow};
pub use timeline::{build_timeline, loop_windows, render_timeline, Interval, ProcState, Timeline};
pub use waiting::{format_waiting_table, waiting_table, ProcWaiting, WaitingTable};

#[cfg(test)]
mod proptests {
    use super::*;
    use ppa_trace::Time;
    use proptest::prelude::*;

    fn arb_timeline() -> impl Strategy<Value = Timeline> {
        // Random per-proc partitions of [0, total) into intervals with
        // random states.
        (
            1usize..6,
            1u64..50,
            proptest::collection::vec(0u8..3, 1..64),
        )
            .prop_map(|(procs, unit, states)| {
                let per = states.len() / procs + 1;
                let mut rows = Vec::new();
                let total = per as u64 * unit * procs as u64;
                for p in 0..procs {
                    let mut row = Vec::new();
                    let mut t = 0u64;
                    for k in 0..per {
                        let state = match states[(p * per + k) % states.len()] {
                            0 => ProcState::Active,
                            1 => ProcState::Waiting,
                            _ => ProcState::Idle,
                        };
                        row.push(Interval {
                            start: Time::from_nanos(t),
                            end: Time::from_nanos(t + unit * procs as u64),
                            state,
                        });
                        t += unit * procs as u64;
                    }
                    // Pad to the common end.
                    if t < total {
                        row.push(Interval {
                            start: Time::from_nanos(t),
                            end: Time::from_nanos(total),
                            state: ProcState::Idle,
                        });
                    }
                    rows.push(row);
                }
                Timeline {
                    rows,
                    start: Time::ZERO,
                    end: Time::from_nanos(total),
                }
            })
    }

    proptest! {
        /// Parallelism never exceeds the processor count, and the profile
        /// average over the full range equals total active time divided by
        /// the range.
        #[test]
        fn parallelism_is_consistent_with_active_time(tl in arb_timeline()) {
            let profile = parallelism_profile(&tl);
            prop_assert!(profile.peak() <= tl.rows.len());

            let total_active: f64 = (0..tl.rows.len())
                .map(|p| tl.active(p).as_nanos() as f64)
                .sum();
            let range = tl.end.saturating_since(tl.start).as_nanos() as f64;
            if range > 0.0 {
                let avg = profile.average(tl.start, tl.end);
                let expected = total_active / range;
                prop_assert!((avg - expected).abs() < 1e-6,
                    "avg {avg} vs expected {expected}");
            }
        }

        /// Order perturbation on randomly shuffled single-event-per-proc
        /// traces matches a brute-force discordant-pair count.
        #[test]
        fn order_inversions_match_brute_force(perm in proptest::sample::subsequence((0u16..12).collect::<Vec<_>>(), 2..12)) {
            use ppa_trace::{Event, EventKind, ProcessorId, StatementId, Trace, TraceKind};
            // Reference: procs in ascending time order; perturbed: the
            // shuffled (here: reversed subsequence) order.
            let mut shuffled = perm.clone();
            shuffled.reverse();
            let make = |order: &[u16]| {
                let events = order
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        Event::new(
                            Time::from_nanos((i as u64 + 1) * 10),
                            ProcessorId(p),
                            i as u64,
                            EventKind::Statement { stmt: StatementId(0) },
                        )
                    })
                    .collect();
                Trace::from_events(TraceKind::Measured, events)
            };
            let reference = make(&perm);
            let perturbed = make(&shuffled);
            let r = order_perturbation(&reference, &perturbed);
            // Brute force: positions of each proc in both orders.
            let pos = |order: &[u16], p: u16| order.iter().position(|&x| x == p).unwrap();
            let mut brute = 0u64;
            for i in 0..perm.len() {
                for j in i + 1..perm.len() {
                    let (a, b) = (perm[i], perm[j]);
                    let same = (pos(&perm, a) < pos(&perm, b))
                        == (pos(&shuffled, a) < pos(&shuffled, b));
                    if !same {
                        brute += 1;
                    }
                }
            }
            prop_assert_eq!(r.inversions, brute);
        }

        /// `span_at_least` is monotonically decreasing in the level.
        #[test]
        fn span_at_least_is_monotone(tl in arb_timeline()) {
            let profile = parallelism_profile(&tl);
            let mut prev = None;
            for k in 1..=tl.rows.len() + 1 {
                let s = profile.span_at_least(k);
                if let Some(p) = prev {
                    prop_assert!(s <= p);
                }
                prev = Some(s);
            }
        }
    }
}
