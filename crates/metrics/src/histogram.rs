//! Waiting-duration histograms.
//!
//! Beyond totals and percentages, the *distribution* of waiting durations
//! distinguishes regimes: a blocked critical-section chain produces many
//! similar medium waits; a nearly-parallel loop produces a mass of tiny
//! jitter-absorbing waits plus a pipeline-fill tail. Log-spaced buckets
//! make both readable in one view.

use ppa_core::EventBasedResult;
use ppa_trace::Span;
use serde::{Deserialize, Serialize};

/// A log₂-bucketed histogram of spans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanHistogram {
    /// Bucket `i` counts spans in `[2^i, 2^(i+1))` ns; bucket 0 also
    /// holds zero-length spans.
    pub buckets: Vec<u64>,
    /// Samples histogrammed.
    pub count: u64,
    /// Sum of all samples.
    pub total: Span,
    /// Largest sample.
    pub max: Span,
}

impl SpanHistogram {
    /// Builds a histogram from spans.
    pub fn from_spans(spans: impl IntoIterator<Item = Span>) -> Self {
        let mut buckets: Vec<u64> = Vec::new();
        let mut count = 0u64;
        let mut total = Span::ZERO;
        let mut max = Span::ZERO;
        for s in spans {
            let idx = if s.as_nanos() <= 1 {
                0
            } else {
                (63 - s.as_nanos().leading_zeros()) as usize
            };
            if buckets.len() <= idx {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += 1;
            count += 1;
            total += s;
            max = max.max(s);
        }
        SpanHistogram {
            buckets,
            count,
            total,
            max,
        }
    }

    /// Mean sample length.
    pub fn mean(&self) -> Span {
        self.total
            .as_nanos()
            .checked_div(self.count)
            .map_or(Span::ZERO, Span::from_nanos)
    }

    /// The bucket index holding the most samples.
    pub fn mode_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, i))
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| i)
    }
}

/// Histogram of all (nonzero) synchronization waits in an analysis
/// result.
pub fn wait_histogram(result: &EventBasedResult) -> SpanHistogram {
    SpanHistogram::from_spans(result.awaits.iter().filter(|a| a.waited()).map(|a| a.wait))
}

/// Renders the histogram with one row per occupied bucket.
pub fn render_histogram(title: &str, h: &SpanHistogram, width: usize) -> String {
    let width = width.max(10);
    let peak = h.buckets.iter().copied().max().unwrap_or(0).max(1);
    let mut out = format!(
        "{title}  ({} waits, mean {}, max {})\n",
        h.count,
        h.mean(),
        h.max
    );
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = (c as usize * width).div_ceil(peak as usize).min(width);
        out.push_str(&format!(
            "  {:>10} |{}{} {}\n",
            Span::from_nanos(1u64 << i).to_string(),
            "█".repeat(bar),
            " ".repeat(width - bar),
            c
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let h = SpanHistogram::from_spans(
            [0u64, 1, 2, 3, 4, 7, 8, 1024]
                .into_iter()
                .map(Span::from_nanos),
        );
        assert_eq!(h.count, 8);
        // 0,1 -> bucket 0; 2,3 -> bucket 1; 4,7 -> bucket 2; 8 -> 3; 1024 -> 10.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.max, Span::from_nanos(1024));
    }

    #[test]
    fn empty_histogram() {
        let h = SpanHistogram::from_spans([]);
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), Span::ZERO);
        assert_eq!(h.mode_bucket(), None);
    }

    #[test]
    fn mode_and_mean() {
        let h =
            SpanHistogram::from_spans([100u64, 110, 120, 5000].into_iter().map(Span::from_nanos));
        assert_eq!(h.mode_bucket(), Some(6)); // 64..128ns holds three
        assert_eq!(h.mean(), Span::from_nanos((100 + 110 + 120 + 5000) / 4));
    }

    #[test]
    fn render_skips_empty_buckets() {
        let h = SpanHistogram::from_spans([Span::from_nanos(3), Span::from_nanos(5000)]);
        let s = render_histogram("waits", &h, 20);
        assert!(s.contains("2 waits"));
        // Two occupied buckets -> two bar rows plus the title.
        assert_eq!(s.lines().count(), 3);
    }
}
