//! Slowdown decomposition: *where* did the intrusion go?
//!
//! A measured run is slower than the approximated (actual) one for two
//! reasons the perturbation framework separates cleanly:
//!
//! 1. **direct instrumentation overhead** — the recording code itself,
//!    summed per event kind from the overhead specification;
//! 2. **induced waiting change** — synchronization and barrier waiting
//!    that the instrumentation added to (or removed from!) the execution,
//!    obtained by comparing each await/barrier episode's *apparent*
//!    measured waiting with its recomputed approximated waiting.
//!
//! The two leave a residual (pipeline-structure effects: overhead that
//! hid inside waiting another processor was doing anyway, or serial-path
//! overhead that did not extend the critical path), which is reported
//! rather than smeared.

use ppa_core::EventBasedResult;
use ppa_trace::{pair_sync_events, OverheadSpec, Span, Trace};
use serde::{Deserialize, Serialize};

/// Decomposition of one measured run's slowdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownDecomposition {
    /// Measured total execution time.
    pub measured_total_ns: u64,
    /// Approximated (recovered actual) total.
    pub approx_total_ns: u64,
    /// Events recorded, by count.
    pub events: usize,
    /// Direct instrumentation overhead across all events (per-kind
    /// overhead × count). This counts *all* recording work, whether or
    /// not it extended the critical path.
    pub direct_overhead_ns: u64,
    /// Apparent synchronization waiting in the measured trace
    /// (awaitB→awaitE spans beyond the no-wait processing cost).
    pub measured_sync_wait_ns: u64,
    /// Synchronization waiting in the approximated execution.
    pub approx_sync_wait_ns: u64,
    /// Apparent barrier waiting in the measured trace.
    pub measured_barrier_wait_ns: u64,
    /// Barrier waiting in the approximated execution.
    pub approx_barrier_wait_ns: u64,
}

impl SlowdownDecomposition {
    /// The slowdown the instrumentation caused (measured / approximated).
    pub fn slowdown(&self) -> f64 {
        self.measured_total_ns as f64 / self.approx_total_ns.max(1) as f64
    }

    /// Signed waiting induced by instrumentation: positive means the
    /// measured run waited more than the actual would have (the loop-17
    /// mechanism), negative means instrumentation masked waiting (the
    /// loop-3/4 mechanism).
    pub fn induced_wait_ns(&self) -> i64 {
        (self.measured_sync_wait_ns + self.measured_barrier_wait_ns) as i64
            - (self.approx_sync_wait_ns + self.approx_barrier_wait_ns) as i64
    }
}

/// Decomposes a measured run's slowdown given its event-based analysis.
pub fn decompose_slowdown(
    measured: &Trace,
    analysis: &EventBasedResult,
    overheads: &OverheadSpec,
) -> SlowdownDecomposition {
    let direct: u128 = measured
        .iter()
        .map(|e| overheads.instr_overhead(&e.kind).as_nanos() as u128)
        .sum();

    // Apparent measured waiting: awaitB→awaitE beyond processing cost.
    let mut measured_sync_wait = 0u64;
    let mut measured_barrier_wait = 0u64;
    if let Ok(index) = pair_sync_events(measured) {
        let events = measured.events();
        for pair in &index.awaits {
            let span = events[pair.end]
                .time
                .saturating_since(events[pair.begin].time);
            let floor = overheads.s_nowait + overheads.await_end_instr;
            measured_sync_wait += span.saturating_sub(floor).as_nanos();
        }
        for ep in &index.barriers {
            let release = ep.enters.iter().map(|&i| events[i].time).max();
            if let Some(release) = release {
                for &en in &ep.enters {
                    measured_barrier_wait += release.saturating_since(events[en].time).as_nanos();
                }
            }
        }
    }

    let approx_sync_wait: Span = analysis.awaits.iter().map(|a| a.wait).sum();
    let approx_barrier_wait: Span = analysis.barriers.iter().map(|b| b.wait).sum();

    SlowdownDecomposition {
        measured_total_ns: measured.total_time().as_nanos(),
        approx_total_ns: analysis.total_time().as_nanos(),
        events: measured.len(),
        direct_overhead_ns: direct as u64,
        measured_sync_wait_ns: measured_sync_wait,
        approx_sync_wait_ns: approx_sync_wait.as_nanos(),
        measured_barrier_wait_ns: measured_barrier_wait,
        approx_barrier_wait_ns: approx_barrier_wait.as_nanos(),
    }
}

/// Formats a decomposition for terminal output.
pub fn format_decomposition(title: &str, d: &SlowdownDecomposition) -> String {
    let induced = d.induced_wait_ns();
    format!(
        "{title}\n\
           measured total:      {}\n\
           recovered actual:    {}   ({:.2}x slowdown)\n\
           direct overhead:     {}   ({} events)\n\
           sync waiting:        measured {} vs actual {}\n\
           barrier waiting:     measured {} vs actual {}\n\
           induced waiting:     {}{}\n",
        Span::from_nanos(d.measured_total_ns),
        Span::from_nanos(d.approx_total_ns),
        d.slowdown(),
        Span::from_nanos(d.direct_overhead_ns),
        d.events,
        Span::from_nanos(d.measured_sync_wait_ns),
        Span::from_nanos(d.approx_sync_wait_ns),
        Span::from_nanos(d.measured_barrier_wait_ns),
        Span::from_nanos(d.approx_barrier_wait_ns),
        if induced >= 0 { "+" } else { "-" },
        Span::from_nanos(induced.unsigned_abs()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::event_based;
    use ppa_trace::TraceBuilder;

    #[test]
    fn direct_overhead_counts_every_event() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(100)
            .stmt(0)
            .at(200)
            .stmt(1)
            .at(300)
            .advance(0, 0)
            .build();
        let mut oh = OverheadSpec::ZERO;
        oh.statement_event = Span::from_nanos(10);
        oh.advance_instr = Span::from_nanos(7);
        let analysis = event_based(&t, &oh).unwrap();
        let d = decompose_slowdown(&t, &analysis, &oh);
        assert_eq!(d.direct_overhead_ns, 2 * 10 + 7);
        assert_eq!(d.events, 3);
        assert!(d.slowdown() >= 1.0);
    }

    #[test]
    fn induced_waiting_sign_matches_the_mechanisms() {
        // Waiting present in the measurement but absent in the
        // approximation (instrumentation-caused): induced > 0 from the
        // *measured* side... Construct the opposite too.
        let mut oh = OverheadSpec::ZERO;
        oh.statement_event = Span::from_nanos(40);
        oh.s_wait = Span::from_nanos(5);
        oh.s_nowait = Span::from_nanos(2);

        // Case A (loop-17-like): the measured run waited 100ns; without
        // instrumentation the advance would come earlier, so approximated
        // waiting is smaller.
        let t = TraceBuilder::measured()
            .on(0)
            .at(140)
            .stmt(0)
            .at(145)
            .advance(0, 0)
            .on(1)
            .at(10)
            .await_begin(0, 0)
            .at(150)
            .await_end(0, 0)
            .build();
        let analysis = event_based(&t, &oh).unwrap();
        let d = decompose_slowdown(&t, &analysis, &oh);
        assert!(
            d.measured_sync_wait_ns > d.approx_sync_wait_ns,
            "measured {} vs approx {}",
            d.measured_sync_wait_ns,
            d.approx_sync_wait_ns
        );
        assert!(d.induced_wait_ns() > 0);
    }

    #[test]
    fn formatting_includes_all_sections() {
        let t = TraceBuilder::measured().on(0).at(10).stmt(0).build();
        let analysis = event_based(&t, &OverheadSpec::ZERO).unwrap();
        let d = decompose_slowdown(&t, &analysis, &OverheadSpec::ZERO);
        let s = format_decomposition("decomposition", &d);
        assert!(s.contains("measured total"));
        assert!(s.contains("direct overhead"));
        assert!(s.contains("induced waiting"));
    }
}
