//! Event-order perturbation.
//!
//! Instrumentation perturbs "execution time and, possibly, event order"
//! (§2). This module quantifies the order side: align two traces by
//! (processor, kind) occurrence and count the pairs of matched events
//! whose relative total order differs — Kendall-style discordant pairs,
//! counted exactly in `O(n log n)` with a merge-sort inversion count.

use ppa_trace::{Event, ProcessorId, Trace};
use std::collections::HashMap;

/// Order-perturbation summary between two traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderPerturbation {
    /// Matched events.
    pub matched: usize,
    /// Discordant pairs: matched event pairs ordered differently in the
    /// two traces.
    pub inversions: u64,
    /// `inversions / C(matched, 2)` — 0.0 for identical order, 1.0 for
    /// full reversal.
    pub inversion_rate: f64,
    /// Discordant pairs involving events on *different* processors (the
    /// dependence-relevant reorderings; same-processor order can never
    /// change in a well-formed trace).
    pub cross_processor_inversions: u64,
}

/// Counts inversions in `a`, returning the permutation's discordant-pair
/// count (merge sort).
fn count_inversions(a: &mut [usize]) -> u64 {
    let n = a.len();
    if n < 2 {
        return 0;
    }
    let mut buf = vec![0usize; n];
    fn sort(a: &mut [usize], buf: &mut [usize]) -> u64 {
        let n = a.len();
        if n < 2 {
            return 0;
        }
        let mid = n / 2;
        let mut inv = sort(&mut a[..mid], buf) + sort(&mut a[mid..], buf);
        // Merge.
        let (mut i, mut j, mut k) = (0usize, mid, 0usize);
        while i < mid && j < n {
            if a[i] <= a[j] {
                buf[k] = a[i];
                i += 1;
            } else {
                buf[k] = a[j];
                inv += (mid - i) as u64;
                j += 1;
            }
            k += 1;
        }
        buf[k..k + (mid - i)].copy_from_slice(&a[i..mid]);
        let tail_start = k + (mid - i);
        buf[tail_start..n].copy_from_slice(&a[j..n]);
        a.copy_from_slice(&buf[..n]);
        inv
    }
    sort(a, &mut buf)
}

/// Measures order perturbation from `reference` (e.g. the actual trace)
/// to `perturbed` (e.g. the measured trace).
pub fn order_perturbation(reference: &Trace, perturbed: &Trace) -> OrderPerturbation {
    // Position of each reference event, bucketed by alignment key.
    let mut ref_positions: HashMap<(ProcessorId, ppa_trace::EventKind), Vec<usize>> =
        HashMap::new();
    for (pos, e) in reference.iter().enumerate() {
        ref_positions.entry(key(e)).or_default().push(pos);
    }
    let mut cursor: HashMap<(ProcessorId, ppa_trace::EventKind), usize> = HashMap::new();

    // For the perturbed trace in order, collect each matched event's
    // reference position (plus its processor for the cross-proc count).
    let mut seq: Vec<usize> = Vec::new();
    let mut procs: Vec<ProcessorId> = Vec::new();
    for e in perturbed.iter() {
        let k = key(e);
        let idx = cursor.entry(k).or_insert(0);
        if let Some(pos) = ref_positions.get(&k).and_then(|v| v.get(*idx)) {
            *idx += 1;
            seq.push(*pos);
            procs.push(e.proc);
        }
    }

    let matched = seq.len();
    let inversions = count_inversions(&mut seq.clone());

    // Cross-processor discordant pairs: total minus the same-processor
    // ones. Same-processor subsequences are order-preserved in well-formed
    // traces, so their inversion count is zero — but count defensively.
    let mut same_proc = 0u64;
    let mut by_proc: HashMap<ProcessorId, Vec<usize>> = HashMap::new();
    for (p, s) in procs.iter().zip(&seq) {
        by_proc.entry(*p).or_default().push(*s);
    }
    for (_, mut positions) in by_proc {
        same_proc += count_inversions(&mut positions);
    }

    let pairs = matched as u64 * matched.saturating_sub(1) as u64 / 2;
    OrderPerturbation {
        matched,
        inversions,
        inversion_rate: if pairs == 0 {
            0.0
        } else {
            inversions as f64 / pairs as f64
        },
        cross_processor_inversions: inversions - same_proc,
    }
}

fn key(e: &Event) -> (ProcessorId, ppa_trace::EventKind) {
    (e.proc, e.kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_trace::TraceBuilder;

    #[test]
    fn identical_traces_have_zero_inversions() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .at(20)
            .stmt(1)
            .on(1)
            .at(15)
            .stmt(2)
            .build();
        let r = order_perturbation(&t, &t);
        assert_eq!(r.matched, 3);
        assert_eq!(r.inversions, 0);
        assert_eq!(r.inversion_rate, 0.0);
    }

    #[test]
    fn cross_processor_swap_is_one_inversion() {
        // Reference: P0 stmt at 10, P1 stmt at 20. Perturbed: P1 first.
        let reference = TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .on(1)
            .at(20)
            .stmt(1)
            .build();
        let perturbed = TraceBuilder::measured()
            .on(1)
            .at(5)
            .stmt(1)
            .on(0)
            .at(10)
            .stmt(0)
            .build();
        let r = order_perturbation(&reference, &perturbed);
        assert_eq!(r.matched, 2);
        assert_eq!(r.inversions, 1);
        assert_eq!(r.cross_processor_inversions, 1);
        assert_eq!(r.inversion_rate, 1.0);
    }

    #[test]
    fn full_reversal_rate_is_one() {
        // Four events on four processors, fully reversed.
        let mut fwd = TraceBuilder::measured();
        let mut rev = TraceBuilder::measured();
        for i in 0..4u16 {
            fwd = fwd.on(i).at(10 * (i as u64 + 1)).stmt(i as u32);
            rev = rev.on(i).at(10 * (4 - i as u64)).stmt(i as u32);
        }
        let r = order_perturbation(&fwd.build(), &rev.build());
        assert_eq!(r.matched, 4);
        assert_eq!(r.inversions, 6); // C(4,2)
        assert_eq!(r.inversion_rate, 1.0);
    }

    #[test]
    fn inversion_counter_matches_brute_force() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![1],
            vec![1, 2, 3],
            vec![3, 2, 1],
            vec![2, 1, 4, 3],
            vec![5, 1, 4, 2, 3],
        ];
        for case in cases {
            let brute = {
                let mut c = 0u64;
                for i in 0..case.len() {
                    for j in i + 1..case.len() {
                        if case[i] > case[j] {
                            c += 1;
                        }
                    }
                }
                c
            };
            let mut arr = case.clone();
            assert_eq!(count_inversions(&mut arr), brute, "case {case:?}");
        }
    }

    #[test]
    fn unmatched_events_are_ignored() {
        let reference = TraceBuilder::measured().on(0).at(10).stmt(0).build();
        let perturbed = TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .at(20)
            .stmt(9)
            .build();
        let r = order_perturbation(&reference, &perturbed);
        assert_eq!(r.matched, 1);
        assert_eq!(r.inversions, 0);
    }
}
