//! Parallelism over time (the paper's Figure 5).
//!
//! The parallelism profile counts processors in the `Active` state at each
//! instant of the approximated execution, as a step function. The paper
//! reports the average level of parallelism of loop 17, excluding the
//! sequential portions, as 7.5.

use crate::timeline::{ProcState, Timeline};
use ppa_trace::{Span, Time};
use serde::{Deserialize, Serialize};

/// A step function: the active-processor count between consecutive
/// breakpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    /// `(start, count)` steps, time-ordered; each step holds until the
    /// next one (or `end`).
    pub steps: Vec<(Time, usize)>,
    /// End of the profile.
    pub end: Time,
}

impl ParallelismProfile {
    /// The active-processor count at an instant.
    pub fn at(&self, t: Time) -> usize {
        let mut count = 0;
        for &(start, c) in &self.steps {
            if start > t {
                break;
            }
            count = c;
        }
        count
    }

    /// Time-weighted average parallelism over `[from, to)`.
    pub fn average(&self, from: Time, to: Time) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut acc: f64 = 0.0;
        for (i, &(start, count)) in self.steps.iter().enumerate() {
            let next = self.steps.get(i + 1).map(|&(s, _)| s).unwrap_or(self.end);
            let lo = start.max(from);
            let hi = next.min(to);
            if hi > lo {
                acc += count as f64 * (hi - lo).as_nanos() as f64;
            }
        }
        acc / (to - from).as_nanos() as f64
    }

    /// The peak parallelism.
    pub fn peak(&self) -> usize {
        self.steps.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Total span during which at least `k` processors were active.
    pub fn span_at_least(&self, k: usize) -> Span {
        let mut acc = Span::ZERO;
        for (i, &(start, count)) in self.steps.iter().enumerate() {
            let next = self.steps.get(i + 1).map(|&(s, _)| s).unwrap_or(self.end);
            if count >= k && next > start {
                acc += next - start;
            }
        }
        acc
    }
}

/// Builds the parallelism profile from a timeline.
pub fn parallelism_profile(timeline: &Timeline) -> ParallelismProfile {
    // Sweep over active-interval boundaries.
    let mut deltas: Vec<(Time, i64)> = Vec::new();
    for row in &timeline.rows {
        for iv in row {
            if iv.state == ProcState::Active && iv.end > iv.start {
                deltas.push((iv.start, 1));
                deltas.push((iv.end, -1));
            }
        }
    }
    deltas.sort();
    let mut steps = Vec::new();
    let mut count: i64 = 0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            count += deltas[i].1;
            i += 1;
        }
        steps.push((t, count.max(0) as usize));
    }
    if steps
        .first()
        .map(|&(t, _)| t > timeline.start)
        .unwrap_or(true)
    {
        steps.insert(0, (timeline.start, 0));
    }
    ParallelismProfile {
        steps,
        end: timeline.end,
    }
}

/// Renders the profile as an ASCII step chart (rows = parallelism levels
/// descending, columns = time buckets).
pub fn render_parallelism(profile: &ParallelismProfile, width: usize, max_level: usize) -> String {
    let width = width.max(10);
    let start = profile.steps.first().map(|&(t, _)| t).unwrap_or(Time::ZERO);
    let total = profile.end.saturating_since(start).as_nanos().max(1);
    // Sample the bucket midpoints.
    let samples: Vec<usize> = (0..width)
        .map(|c| {
            let t = Time::from_nanos(
                start.as_nanos()
                    + (total as u128 * (2 * c as u128 + 1) / (2 * width as u128)) as u64,
            );
            profile.at(t)
        })
        .collect();
    let peak = max_level.max(1);
    let mut out = String::new();
    for level in (1..=peak).rev() {
        let row: String = samples
            .iter()
            .map(|&s| if s >= level { '█' } else { ' ' })
            .collect();
        out.push_str(&format!("{level:>2} |{row}|\n"));
    }
    out.push_str(&format!(
        "    0{}{:>9.1}us\n",
        " ".repeat(width.saturating_sub(12)),
        profile.end.saturating_since(start).as_micros_f64()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Interval;

    fn two_proc_timeline() -> Timeline {
        // P0 active 0..100; P1 active 50..100, then both idle to 150.
        let t = |n: u64| Time::from_nanos(n);
        Timeline {
            rows: vec![
                vec![
                    Interval {
                        start: t(0),
                        end: t(100),
                        state: ProcState::Active,
                    },
                    Interval {
                        start: t(100),
                        end: t(150),
                        state: ProcState::Idle,
                    },
                ],
                vec![
                    Interval {
                        start: t(0),
                        end: t(50),
                        state: ProcState::Idle,
                    },
                    Interval {
                        start: t(50),
                        end: t(100),
                        state: ProcState::Active,
                    },
                    Interval {
                        start: t(100),
                        end: t(150),
                        state: ProcState::Idle,
                    },
                ],
            ],
            start: t(0),
            end: t(150),
        }
    }

    #[test]
    fn step_function_counts() {
        let p = parallelism_profile(&two_proc_timeline());
        assert_eq!(p.at(Time::from_nanos(10)), 1);
        assert_eq!(p.at(Time::from_nanos(60)), 2);
        assert_eq!(p.at(Time::from_nanos(120)), 0);
        assert_eq!(p.peak(), 2);
    }

    #[test]
    fn averages() {
        let p = parallelism_profile(&two_proc_timeline());
        // Over [0,100): (1*50 + 2*50)/100 = 1.5.
        let avg = p.average(Time::ZERO, Time::from_nanos(100));
        assert!((avg - 1.5).abs() < 1e-9, "avg {avg}");
        // Over everything: 150/150 = 1.0.
        let avg_all = p.average(Time::ZERO, Time::from_nanos(150));
        assert!((avg_all - 1.0).abs() < 1e-9);
        assert_eq!(p.average(Time::from_nanos(5), Time::from_nanos(5)), 0.0);
    }

    #[test]
    fn span_at_least_levels() {
        let p = parallelism_profile(&two_proc_timeline());
        assert_eq!(p.span_at_least(1), Span::from_nanos(100));
        assert_eq!(p.span_at_least(2), Span::from_nanos(50));
        assert_eq!(p.span_at_least(3), Span::ZERO);
    }

    #[test]
    fn render_has_levels_and_axis() {
        let p = parallelism_profile(&two_proc_timeline());
        let s = render_parallelism(&p, 30, 2);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with(" 2 |"));
        assert!(lines[1].starts_with(" 1 |"));
        assert!(lines[1].matches('█').count() >= lines[0].matches('█').count());
    }

    #[test]
    fn empty_timeline() {
        let tl = Timeline {
            rows: vec![],
            start: Time::ZERO,
            end: Time::ZERO,
        };
        let p = parallelism_profile(&tl);
        assert_eq!(p.peak(), 0);
        assert_eq!(p.at(Time::ZERO), 0);
    }
}
