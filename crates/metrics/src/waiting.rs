//! Per-processor waiting statistics (the paper's Table 3).
//!
//! "Event-based analysis can also generate statistics about loop execution
//! such as the amount of waiting on each processor" (§5.3). Waiting here
//! is approximated DOACROSS synchronization waiting, expressed as a
//! percentage of total execution time, computed entirely from the
//! approximated execution.

use ppa_core::EventBasedResult;
use ppa_trace::{ProcessorId, Span};
use serde::{Deserialize, Serialize};

/// One processor's waiting summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcWaiting {
    /// The processor.
    pub proc: u16,
    /// Approximated synchronization waiting.
    pub sync_wait_ns: u64,
    /// Approximated barrier waiting.
    pub barrier_wait_ns: u64,
    /// Synchronization waiting as a percentage of total execution time.
    pub sync_pct: f64,
}

/// Waiting summary across processors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaitingTable {
    /// Total execution time the percentages refer to.
    pub total_ns: u64,
    /// Per-processor rows, ascending by processor id.
    pub rows: Vec<ProcWaiting>,
}

impl WaitingTable {
    /// Aggregate DOACROSS waiting across all processors.
    pub fn total_sync_wait(&self) -> Span {
        Span::from_nanos(self.rows.iter().map(|r| r.sync_wait_ns).sum())
    }

    /// The mean waiting percentage.
    pub fn mean_pct(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.sync_pct).sum::<f64>() / self.rows.len() as f64
    }
}

/// Builds the Table-3 style waiting table from an event-based analysis
/// result, for the given number of processors.
pub fn waiting_table(result: &EventBasedResult, processors: usize) -> WaitingTable {
    let total = result.total_time();
    let rows = (0..processors)
        .map(|p| {
            let pid = ProcessorId(p as u16);
            let sync = result.sync_wait(pid);
            let barrier = result.barrier_wait(pid);
            ProcWaiting {
                proc: p as u16,
                sync_wait_ns: sync.as_nanos(),
                barrier_wait_ns: barrier.as_nanos(),
                sync_pct: if total.is_zero() {
                    0.0
                } else {
                    100.0 * sync.ratio(total)
                },
            }
        })
        .collect();
    WaitingTable {
        total_ns: total.as_nanos(),
        rows,
    }
}

/// Formats the table like the paper's Table 3 (one percentage column per
/// processor).
pub fn format_waiting_table(title: &str, table: &WaitingTable) -> String {
    let mut out = format!("{title}\n");
    out.push_str("processor:");
    for r in &table.rows {
        out.push_str(&format!(" {:>8}", r.proc));
    }
    out.push_str("\nwaiting %:");
    for r in &table.rows {
        out.push_str(&format!(" {:>7.2}%", r.sync_pct));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_core::event_based;
    use ppa_trace::{OverheadSpec, TraceBuilder};

    /// Two processors; P1 waits 100ns of a 400ns run = 25%.
    fn sample_result() -> EventBasedResult {
        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .program_begin()
            .at(200)
            .advance(0, 0)
            .at(400)
            .program_end()
            .on(1)
            .at(100)
            .await_begin(0, 0)
            .at(200)
            .await_end(0, 0)
            .build();
        event_based(&t, &OverheadSpec::ZERO).unwrap()
    }

    #[test]
    fn percentages_computed_against_total() {
        let table = waiting_table(&sample_result(), 2);
        assert_eq!(table.total_ns, 400);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].sync_wait_ns, 0);
        assert_eq!(table.rows[1].sync_wait_ns, 100);
        assert!((table.rows[1].sync_pct - 25.0).abs() < 1e-9);
        assert!((table.mean_pct() - 12.5).abs() < 1e-9);
        assert_eq!(table.total_sync_wait(), Span::from_nanos(100));
    }

    #[test]
    fn formatting_matches_shape() {
        let table = waiting_table(&sample_result(), 2);
        let s = format_waiting_table("Table 3", &table);
        assert!(s.contains("processor:"));
        assert!(s.contains("waiting %:"));
        assert!(s.contains("25.00%"));
    }

    #[test]
    fn empty_result_is_zeroes() {
        let t = TraceBuilder::measured().build();
        let r = event_based(&t, &OverheadSpec::ZERO).unwrap();
        let table = waiting_table(&r, 4);
        assert_eq!(table.total_ns, 0);
        assert!(table.rows.iter().all(|r| r.sync_pct == 0.0));
        assert_eq!(table.mean_pct(), 0.0);
    }
}
