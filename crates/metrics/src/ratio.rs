//! Execution-time ratios — the paper's reporting currency.
//!
//! Every evaluation artifact in the paper is a ratio against the actual
//! (uninstrumented) execution time: `Measured/Actual` for intrusion,
//! `Approximated/Actual` for analysis accuracy.

use ppa_trace::Span;
use serde::{Deserialize, Serialize};

/// One row of a Table 1/2-style ratio table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioRow {
    /// Workload label (e.g. `"lfk03"`).
    pub label: String,
    /// Reproduced measured/actual.
    pub measured_over_actual: f64,
    /// Reproduced approximated/actual.
    pub approx_over_actual: f64,
    /// The paper's measured/actual, if reported.
    pub paper_measured: Option<f64>,
    /// The paper's approximated/actual, if reported.
    pub paper_approx: Option<f64>,
}

impl RatioRow {
    /// Builds a row from the three absolute times.
    pub fn from_times(
        label: impl Into<String>,
        actual: Span,
        measured: Span,
        approximated: Span,
    ) -> Self {
        RatioRow {
            label: label.into(),
            measured_over_actual: measured.ratio(actual),
            approx_over_actual: approximated.ratio(actual),
            paper_measured: None,
            paper_approx: None,
        }
    }

    /// Attaches the paper's reported values for side-by-side printing.
    pub fn with_paper(mut self, measured: Option<f64>, approx: Option<f64>) -> Self {
        self.paper_measured = measured;
        self.paper_approx = approx;
        self
    }

    /// The approximation's signed error in percent (`-4.0` means the
    /// approximation is 4 % below actual — the paper's "-4 percent error").
    pub fn approx_error_pct(&self) -> f64 {
        (self.approx_over_actual - 1.0) * 100.0
    }

    /// True if the reproduced approximation errs in the same direction as
    /// the paper's (both under- or both over-approximate), or if the paper
    /// value is unknown.
    pub fn same_direction_as_paper(&self) -> bool {
        match self.paper_approx {
            Some(p) => (self.approx_over_actual - 1.0).signum() == (p - 1.0).signum(),
            None => true,
        }
    }
}

/// Signed error of a ratio in percent.
pub fn signed_error_pct(ratio: f64) -> f64 {
    (ratio - 1.0) * 100.0
}

/// Formats a ratio table with paper values beside reproduced ones.
pub fn format_ratio_table(title: &str, rows: &[RatioRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>9}\n",
        "loop", "meas/actual", "paper", "approx/act", "paper", "err%"
    ));
    for r in rows {
        let paper_m = r
            .paper_measured
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        let paper_a = r
            .paper_approx
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<10} {:>12.2} {:>12} {:>12.2} {:>12} {:>8.1}%\n",
            r.label,
            r.measured_over_actual,
            paper_m,
            r.approx_over_actual,
            paper_a,
            r.approx_error_pct()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_from_times() {
        let r = RatioRow::from_times(
            "x",
            Span::from_nanos(100),
            Span::from_nanos(456),
            Span::from_nanos(96),
        );
        assert!((r.measured_over_actual - 4.56).abs() < 1e-12);
        assert!((r.approx_over_actual - 0.96).abs() < 1e-12);
        assert!((r.approx_error_pct() + 4.0).abs() < 1e-9);
    }

    #[test]
    fn direction_check() {
        let under = RatioRow::from_times(
            "u",
            Span::from_nanos(100),
            Span::from_nanos(200),
            Span::from_nanos(40),
        )
        .with_paper(Some(2.48), Some(0.37));
        assert!(under.same_direction_as_paper());

        let wrong = RatioRow::from_times(
            "w",
            Span::from_nanos(100),
            Span::from_nanos(200),
            Span::from_nanos(140),
        )
        .with_paper(Some(2.48), Some(0.37));
        assert!(!wrong.same_direction_as_paper());
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            RatioRow::from_times(
                "lfk03",
                Span::from_nanos(100),
                Span::from_nanos(456),
                Span::from_nanos(96),
            )
            .with_paper(Some(4.56), Some(0.96)),
            RatioRow::from_times(
                "lfk04",
                Span::from_nanos(100),
                Span::from_nanos(338),
                Span::from_nanos(106),
            ),
        ];
        let t = format_ratio_table("Table 2", &rows);
        assert!(t.contains("lfk03"));
        assert!(t.contains("lfk04"));
        assert!(t.contains("4.56"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn signed_error() {
        assert!((signed_error_pct(0.96) + 4.0).abs() < 1e-9);
        assert!((signed_error_pct(1.06) - 6.0).abs() < 1e-9);
    }
}
