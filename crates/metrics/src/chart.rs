//! ASCII chart rendering for Figure-1-style grouped bars.

/// One labeled group of bars: `(group label, [(series label, value)])`.
pub type BarGroup = (String, Vec<(String, f64)>);

/// Renders horizontal grouped bars, scaled to the global maximum.
///
/// The paper's Figure 1 is a grouped bar chart of measured/actual and
/// approximated/actual ratios per loop; this renders the same data in a
/// terminal.
pub fn render_bars(title: &str, groups: &[BarGroup], width: usize) -> String {
    let width = width.max(10);
    let max = groups
        .iter()
        .flat_map(|(_, bars)| bars.iter().map(|&(_, v)| v))
        .fold(f64::EPSILON, f64::max);
    let mut out = format!("{title}\n");
    for (label, bars) in groups {
        out.push_str(&format!("{label}\n"));
        for (series, value) in bars {
            let filled = ((value / max) * width as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "  {:<12} |{}{}| {:.2}\n",
                series,
                "█".repeat(filled.min(width)),
                " ".repeat(width.saturating_sub(filled)),
                value
            ));
        }
    }
    out
}

/// Renders a compact single-series bar chart (one bar per label).
pub fn render_simple_bars(title: &str, bars: &[(String, f64)], width: usize) -> String {
    let groups: Vec<BarGroup> = bars
        .iter()
        .map(|(l, v)| (String::new(), vec![(l.clone(), *v)]))
        .collect();
    let mut s = render_bars(title, &groups, width);
    // Drop the empty group-label lines.
    s = s
        .lines()
        .filter(|l| !l.is_empty() || l.contains('|'))
        .collect::<Vec<_>>()
        .join("\n");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let groups = vec![
            (
                "loop 1".to_string(),
                vec![("measured".to_string(), 10.0), ("approx".to_string(), 1.0)],
            ),
            (
                "loop 19".to_string(),
                vec![("measured".to_string(), 20.0), ("approx".to_string(), 1.0)],
            ),
        ];
        let s = render_bars("Fig 1", &groups, 20);
        assert!(s.contains("loop 1"));
        assert!(s.contains("loop 19"));
        // The 20.0 bar is full width; the 10.0 bar is half.
        let full = s.lines().find(|l| l.contains("20.00")).unwrap();
        let half = s.lines().find(|l| l.contains("10.00")).unwrap();
        assert_eq!(full.matches('█').count(), 20);
        assert_eq!(half.matches('█').count(), 10);
    }

    #[test]
    fn zero_values_render() {
        let s = render_simple_bars("t", &[("a".into(), 0.0)], 10);
        assert!(s.contains("0.00"));
    }
}
