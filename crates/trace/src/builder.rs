//! Fluent trace construction, used heavily in tests and examples.
//!
//! The builder tracks one clock per processor; `at`/`after` position the
//! clock, each recording call emits an event at the current clock and
//! assigns a global emission sequence number.

use crate::event::{Event, EventKind};
use crate::ids::{
    BarrierId, LockId, LoopId, ProcessorId, SemId, StatementId, SyncTag, SyncVarId, TaskId,
};
use crate::time::{Span, Time};
use crate::trace::{Trace, TraceKind};
use std::collections::BTreeMap;

/// Fluent builder for hand-written traces.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    kind: TraceKind,
    clocks: BTreeMap<ProcessorId, Time>,
    current: ProcessorId,
    seq: u64,
    events: Vec<Event>,
}

impl TraceBuilder {
    /// Starts a builder producing a trace of the given provenance.
    pub fn new(kind: TraceKind) -> Self {
        TraceBuilder {
            kind,
            ..Default::default()
        }
    }

    /// Starts a builder for a measured trace (the common test case).
    pub fn measured() -> Self {
        Self::new(TraceKind::Measured)
    }

    /// Switches the builder's cursor to `proc` (clock state is kept per
    /// processor).
    pub fn on(mut self, proc: u16) -> Self {
        self.current = ProcessorId(proc);
        self
    }

    /// Sets the current processor's clock to an absolute time (ns).
    pub fn at(mut self, ns: u64) -> Self {
        self.clocks.insert(self.current, Time::from_nanos(ns));
        self
    }

    /// Advances the current processor's clock by `ns` nanoseconds.
    pub fn after(mut self, ns: u64) -> Self {
        let clock = self.clocks.entry(self.current).or_insert(Time::ZERO);
        *clock += Span::from_nanos(ns);
        self
    }

    fn emit(&mut self, kind: EventKind) {
        let time = *self.clocks.entry(self.current).or_insert(Time::ZERO);
        let event = Event::new(time, self.current, self.seq, kind);
        self.seq += 1;
        self.events.push(event);
    }

    /// Records a statement event at the current clock.
    pub fn stmt(mut self, id: u32) -> Self {
        self.emit(EventKind::Statement {
            stmt: StatementId(id),
        });
        self
    }

    /// Records an `advance` event.
    pub fn advance(mut self, var: u32, tag: i64) -> Self {
        self.emit(EventKind::Advance {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        });
        self
    }

    /// Records an `awaitB` event.
    pub fn await_begin(mut self, var: u32, tag: i64) -> Self {
        self.emit(EventKind::AwaitBegin {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        });
        self
    }

    /// Records an `awaitE` event.
    pub fn await_end(mut self, var: u32, tag: i64) -> Self {
        self.emit(EventKind::AwaitEnd {
            var: SyncVarId(var),
            tag: SyncTag(tag),
        });
        self
    }

    /// Records a barrier-enter event.
    pub fn barrier_enter(mut self, id: u32) -> Self {
        self.emit(EventKind::BarrierEnter {
            barrier: BarrierId(id),
        });
        self
    }

    /// Records a barrier-exit event.
    pub fn barrier_exit(mut self, id: u32) -> Self {
        self.emit(EventKind::BarrierExit {
            barrier: BarrierId(id),
        });
        self
    }

    /// Records a lock-acquire event.
    pub fn lock_acquire(mut self, lock: u32) -> Self {
        self.emit(EventKind::LockAcquire { lock: LockId(lock) });
        self
    }

    /// Records a lock-release event.
    pub fn lock_release(mut self, lock: u32) -> Self {
        self.emit(EventKind::LockRelease { lock: LockId(lock) });
        self
    }

    /// Records a semaphore-P (acquire) event.
    pub fn sem_acquire(mut self, sem: u32) -> Self {
        self.emit(EventKind::SemAcquire { sem: SemId(sem) });
        self
    }

    /// Records a semaphore-V (release) event.
    pub fn sem_release(mut self, sem: u32) -> Self {
        self.emit(EventKind::SemRelease { sem: SemId(sem) });
        self
    }

    /// Records a task-fork event.
    pub fn task_fork(mut self, task: u32) -> Self {
        self.emit(EventKind::TaskFork { task: TaskId(task) });
        self
    }

    /// Records a task-join event.
    pub fn task_join(mut self, task: u32) -> Self {
        self.emit(EventKind::TaskJoin { task: TaskId(task) });
        self
    }

    /// Records a program-begin marker.
    pub fn program_begin(mut self) -> Self {
        self.emit(EventKind::ProgramBegin);
        self
    }

    /// Records a program-end marker.
    pub fn program_end(mut self) -> Self {
        self.emit(EventKind::ProgramEnd);
        self
    }

    /// Records a loop-begin marker.
    pub fn loop_begin(mut self, id: u32) -> Self {
        self.emit(EventKind::LoopBegin {
            loop_id: LoopId(id),
        });
        self
    }

    /// Records a loop-end marker.
    pub fn loop_end(mut self, id: u32) -> Self {
        self.emit(EventKind::LoopEnd {
            loop_id: LoopId(id),
        });
        self
    }

    /// Records an iteration-begin marker.
    pub fn iter_begin(mut self, loop_id: u32, iter: u64) -> Self {
        self.emit(EventKind::IterationBegin {
            loop_id: LoopId(loop_id),
            iter,
        });
        self
    }

    /// Records an iteration-end marker.
    pub fn iter_end(mut self, loop_id: u32, iter: u64) -> Self {
        self.emit(EventKind::IterationEnd {
            loop_id: LoopId(loop_id),
            iter,
        });
        self
    }

    /// Finishes the trace (events are sorted into total order).
    pub fn build(self) -> Trace {
        Trace::from_events(self.kind, self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::pair_sync_events;

    #[test]
    fn builder_produces_ordered_trace() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(0)
            .stmt(1)
            .after(100)
            .advance(0, 0)
            .on(1)
            .at(50)
            .await_begin(0, 0)
            .after(80)
            .await_end(0, 0)
            .build();
        assert!(t.is_totally_ordered());
        assert_eq!(t.len(), 4);
        let idx = pair_sync_events(&t).unwrap();
        assert_eq!(idx.awaits.len(), 1);
    }

    #[test]
    fn per_processor_clocks_are_independent() {
        let t = TraceBuilder::measured()
            .on(0)
            .at(10)
            .stmt(0)
            .on(1)
            .at(5)
            .stmt(1)
            .on(0)
            .after(1)
            .stmt(2)
            .build();
        let times: Vec<u64> = t.iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![5, 10, 11]);
    }

    #[test]
    fn markers_and_barriers() {
        let t = TraceBuilder::new(TraceKind::Actual)
            .on(0)
            .at(0)
            .program_begin()
            .loop_begin(0)
            .iter_begin(0, 0)
            .after(10)
            .iter_end(0, 0)
            .after(1)
            .barrier_enter(0)
            .after(1)
            .barrier_exit(0)
            .after(1)
            .loop_end(0)
            .program_end()
            .build();
        assert_eq!(t.len(), 8);
        assert!(pair_sync_events(&t).is_ok());
    }
}
