//! Bounded trace buffers.
//!
//! The paper's instrumentation streamed events into a fixed trace memory;
//! real tracers have always had to pick a policy for the moment that
//! memory fills. [`BoundedBuffer`] models the three classic choices, and
//! its drop accounting lets experiments quantify what buffer exhaustion
//! does to perturbation analysis (a truncated trace loses sync pairings
//! and fails validation — loudly, which is the correct behaviour).

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What to do when a bounded buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Discard the incoming event (the trace keeps its oldest prefix).
    DropNewest,
    /// Discard the oldest buffered event (the trace keeps a sliding
    /// window of the most recent events).
    DropOldest,
}

/// A fixed-capacity event buffer with drop accounting.
#[derive(Debug, Clone)]
pub struct BoundedBuffer {
    capacity: usize,
    policy: OverflowPolicy,
    events: VecDeque<Event>,
    dropped: u64,
}

impl BoundedBuffer {
    /// Creates a buffer holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "a trace buffer needs capacity");
        BoundedBuffer {
            capacity,
            policy,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Records an event, applying the overflow policy when full. Returns
    /// whether the event was stored.
    pub fn record(&mut self, event: Event) -> bool {
        if self.events.len() < self.capacity {
            self.events.push_back(event);
            return true;
        }
        self.dropped += 1;
        match self.policy {
            OverflowPolicy::DropNewest => false,
            OverflowPolicy::DropOldest => {
                self.events.pop_front();
                self.events.push_back(event);
                true
            }
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drains the buffer into an event vector (oldest first).
    pub fn into_events(self) -> Vec<Event> {
        self.events.into()
    }
}

/// Applies a bounded buffer retroactively to a complete trace, as if each
/// processor had recorded through its own buffer of `capacity` events.
/// Returns the surviving events (ready for [`crate::Trace::from_events`])
/// and the total drop count — the cheap way to study buffer-size effects
/// without re-running an execution.
pub fn apply_buffers(
    trace: &crate::Trace,
    capacity: usize,
    policy: OverflowPolicy,
) -> (Vec<Event>, u64) {
    let mut buffers: std::collections::BTreeMap<crate::ProcessorId, BoundedBuffer> =
        Default::default();
    for e in trace.iter() {
        buffers
            .entry(e.proc)
            .or_insert_with(|| BoundedBuffer::new(capacity, policy))
            .record(*e);
    }
    let mut dropped = 0;
    let mut events = Vec::new();
    for (_, b) in buffers {
        dropped += b.dropped();
        events.extend(b.into_events());
    }
    (events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, ProcessorId, StatementId, Time, Trace, TraceKind};

    fn ev(ns: u64, seq: u64) -> Event {
        Event::new(
            Time::from_nanos(ns),
            ProcessorId(0),
            seq,
            EventKind::Statement {
                stmt: StatementId(seq as u32),
            },
        )
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedBuffer::new(0, OverflowPolicy::DropNewest);
    }

    #[test]
    fn drop_newest_keeps_the_prefix() {
        let mut b = BoundedBuffer::new(2, OverflowPolicy::DropNewest);
        assert!(b.record(ev(1, 0)));
        assert!(b.record(ev(2, 1)));
        assert!(!b.record(ev(3, 2)));
        assert_eq!(b.dropped(), 1);
        let kept: Vec<u64> = b.into_events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn drop_oldest_keeps_the_suffix() {
        let mut b = BoundedBuffer::new(2, OverflowPolicy::DropOldest);
        b.record(ev(1, 0));
        b.record(ev(2, 1));
        assert!(b.record(ev(3, 2)));
        assert_eq!(b.dropped(), 1);
        let kept: Vec<u64> = b.into_events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn apply_buffers_is_per_processor() {
        let events = vec![
            Event::new(
                Time::from_nanos(1),
                ProcessorId(0),
                0,
                EventKind::ProgramBegin,
            ),
            Event::new(
                Time::from_nanos(2),
                ProcessorId(1),
                1,
                EventKind::ProgramBegin,
            ),
            Event::new(
                Time::from_nanos(3),
                ProcessorId(0),
                2,
                EventKind::ProgramEnd,
            ),
            Event::new(
                Time::from_nanos(4),
                ProcessorId(1),
                3,
                EventKind::ProgramEnd,
            ),
        ];
        let trace = Trace::from_events(TraceKind::Measured, events);
        // Capacity 1 per processor: each keeps its first event only.
        let (kept, dropped) = apply_buffers(&trace, 1, OverflowPolicy::DropNewest);
        assert_eq!(kept.len(), 2);
        assert_eq!(dropped, 2);
        assert!(kept
            .iter()
            .all(|e| matches!(e.kind, EventKind::ProgramBegin)));
    }

    #[test]
    fn generous_capacity_drops_nothing() {
        let trace = Trace::from_events(TraceKind::Measured, (0..10).map(|i| ev(i, i)).collect());
        let (kept, dropped) = apply_buffers(&trace, 100, OverflowPolicy::DropOldest);
        assert_eq!(kept.len(), 10);
        assert_eq!(dropped, 0);
    }
}
